//! # bop-clc — an OpenCL C subset compiler front-end
//!
//! This crate stands in for Altera's OpenCL kernel compiler in the DATE 2014
//! reproduction: it turns OpenCL C kernel sources into the `bop-clir`
//! dataflow IR that the simulated devices (FPGA/GPU/CPU) consume. The
//! pipeline is classic:
//!
//! ```text
//! source --lex--> tokens --parse--> AST --lower--> IR --passes--> IR
//! ```
//!
//! The accepted language is the subset needed for high-throughput numeric
//! kernels (and a little more): scalar types (`bool`, `int`, `uint`,
//! `long`, `ulong`, `size_t`, `float`, `double`), pointers with OpenCL
//! address-space qualifiers, private fixed-size arrays, the full C
//! expression grammar (including `?:`, compound assignment, short-circuit
//! `&&`/`||` and `++`/`--`), `if`/`for`/`while`/`do-while`/`break`/
//! `continue`, `#pragma unroll`, work-item builtins, `barrier(...)` and
//! the math builtins `exp`, `log`, `pow`, `sqrt`, `fmax`, `fmin`, `fabs`,
//! `floor`, `min`, `max`. Optimisations: constant folding and DCE (always
//! on), local-value-numbering CSE + copy propagation (opt-in, see
//! [`Options::cse`]).
//!
//! Unsupported (diagnosed, not silently ignored): user-defined helper
//! functions, structs, vector types, `switch`, `goto`, and taking addresses
//! of locals.
//!
//! ## Example
//!
//! ```
//! use bop_clc::{compile, Options};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     __kernel void scale(__global const double* in, __global double* out, double k) {
//!         size_t gid = get_global_id(0);
//!         out[gid] = k * in[gid];
//!     }
//! "#;
//! let module = compile("scale.cl", src, &Options::default())?;
//! assert!(module.kernel("scale").is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod token;

pub use diag::{CompileError, Diag, Pos};

use bop_clir::ir::Module;

/// Front-end options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Options {
    /// If set, overrides the factor of every `#pragma unroll` loop in the
    /// source. This models re-compiling the same kernel with a different
    /// unroll directive, as the paper's design-space exploration does.
    pub unroll_override: Option<u32>,
    /// Skip the IR optimisation passes (constant folding, dead-code
    /// elimination). Useful for testing and for before/after comparisons.
    pub no_opt: bool,
    /// Enable common-subexpression elimination (local value numbering).
    /// Off by default: removing redundant operators changes the FPGA
    /// resource estimates, so it is exposed as an explicit design choice
    /// (and an ablation) rather than silently applied.
    pub cse: bool,
}

impl Options {
    /// Options with an unroll override.
    pub fn with_unroll(factor: u32) -> Options {
        Options { unroll_override: Some(factor), ..Options::default() }
    }
}

/// Compile OpenCL C source into an IR [`Module`].
///
/// # Errors
/// Returns a [`CompileError`] carrying one or more positioned diagnostics
/// if the source fails to lex, parse or type-check.
pub fn compile(source_name: &str, source: &str, options: &Options) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    let module = lower::lower_unit(source_name, &unit, options)?;
    let module = if options.no_opt {
        module
    } else {
        let mut m = module;
        for func in &mut m.functions {
            passes::fold_constants(func);
            if options.cse {
                passes::common_subexpression_elimination(func);
                passes::propagate_copies(func);
            }
            passes::eliminate_dead_code(func);
        }
        m
    };
    bop_clir::verify::verify_module(&module).map_err(|e| {
        CompileError::single(Pos::default(), format!("internal: verifier rejected lowered IR: {e}"))
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let m = compile(
            "t.cl",
            "__kernel void k(__global double* o) { o[get_global_id(0)] = 1.0; }",
            &Options::default(),
        )
        .expect("compiles");
        assert_eq!(m.kernels().count(), 1);
    }

    #[test]
    fn compile_error_carries_position() {
        let err = compile(
            "t.cl",
            "__kernel void k(__global double* o) { o[0] = ; }",
            &Options::default(),
        )
        .expect_err("syntax error");
        assert!(!err.diags().is_empty());
        assert!(err.diags()[0].pos.line > 0);
    }
}
