//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::diag::{CompileError, Pos};
use crate::token::{Keyword, Punct, Token, TokenKind};
use bop_clir::types::AddressSpace;

/// Parse a token stream into a [`Unit`].
///
/// # Errors
/// Returns a [`CompileError`] on the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut p = Parser { tokens, at: 0 };
    p.unit()
}

struct Parser<'t> {
    tokens: &'t [Token],
    at: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.at.min(self.tokens.len() - 1)];
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek_kind() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek_kind() == &TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found {}", p.spelling(), self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), CompileError> {
        let pos = self.pos();
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, pos))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::single(self.pos(), msg)
    }

    // ---- types -----------------------------------------------------------

    fn peek_type(&self) -> Option<CType> {
        match self.peek_kind() {
            TokenKind::Keyword(k) => keyword_type(*k),
            _ => None,
        }
    }

    fn parse_type(&mut self) -> Result<CType, CompileError> {
        match self.peek_type() {
            Some(t) => {
                self.bump();
                Ok(t)
            }
            None => Err(self.error(format!("expected a type, found {}", self.peek_kind()))),
        }
    }

    // ---- top level ---------------------------------------------------------

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut functions = Vec::new();
        loop {
            // Stray pragmas at top level are ignored.
            while matches!(self.peek_kind(), TokenKind::PragmaUnroll(_)) {
                self.bump();
            }
            if self.peek_kind() == &TokenKind::Eof {
                return Ok(Unit { functions });
            }
            functions.push(self.function()?);
        }
    }

    fn function(&mut self) -> Result<FunctionDef, CompileError> {
        let is_kernel = self.eat_keyword(Keyword::Kernel);
        let ret = self.parse_type()?;
        let (name, pos) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        Ok(FunctionDef { pos, is_kernel, ret, name, params, body })
    }

    fn param(&mut self) -> Result<ParamDecl, CompileError> {
        let mut space = None;
        // Leading qualifiers in any order.
        loop {
            match self.peek_kind() {
                TokenKind::Keyword(Keyword::Global) => {
                    space = Some(AddressSpace::Global);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Local) => {
                    space = Some(AddressSpace::Local);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Constant) => {
                    space = Some(AddressSpace::Constant);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Private) => {
                    space = Some(AddressSpace::Private);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Const)
                | TokenKind::Keyword(Keyword::Restrict)
                | TokenKind::Keyword(Keyword::ReadOnly)
                | TokenKind::Keyword(Keyword::WriteOnly) => {
                    self.bump();
                }
                _ => break,
            }
        }
        // `pipe T name`: an on-chip FIFO endpoint, not a pointer.
        if self.eat_keyword(Keyword::Pipe) {
            if space.is_some() {
                return Err(self.error("pipe parameters take no address-space qualifier"));
            }
            let base = self.parse_type()?;
            if self.eat_punct(Punct::Star) {
                return Err(self.error("pipe parameters are not pointers; write `pipe T name`"));
            }
            let (name, pos) = self.expect_ident()?;
            return Ok(ParamDecl { pos, space: None, base, is_ptr: false, is_pipe: true, name });
        }
        let base = self.parse_type()?;
        let is_ptr = self.eat_punct(Punct::Star);
        // Trailing qualifiers after `*`.
        while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Restrict) {}
        let (name, pos) = self.expect_ident()?;
        Ok(ParamDecl { pos, space, base, is_ptr, is_pipe: false, name })
    }

    // ---- statements --------------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block (missing `}`?)"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        // `#pragma unroll` binds to the following `for`.
        if let TokenKind::PragmaUnroll(factor) = self.peek_kind().clone() {
            self.bump();
            let next = self.stmt()?;
            return match next.kind {
                StmtKind::For { init, cond, step, body, .. } => Ok(Stmt {
                    pos,
                    kind: StmtKind::For { init, cond, step, body, unroll: Some(factor) },
                }),
                _ => Err(CompileError::single(pos, "#pragma unroll must precede a `for` loop")),
            };
        }
        match self.peek_kind().clone() {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                Ok(Stmt { pos, kind: StmtKind::Block(self.block_body()?) })
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt { pos, kind: StmtKind::Empty })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt { pos, kind: StmtKind::If { cond, then, els } })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt { pos, kind: StmtKind::While { cond, body } })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.error("expected `while` after `do` body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { pos, kind: StmtKind::DoWhile { body, cond } })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.peek_type().is_some()
                    || self.peek_kind() == &TokenKind::Keyword(Keyword::Const)
                {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt { pos, kind: StmtKind::Expr(e) }))
                };
                let cond = if self.peek_kind() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek_kind() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt { pos, kind: StmtKind::For { init, cond, step, body, unroll: None } })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek_kind() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { pos, kind: StmtKind::Return(value) })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { pos, kind: StmtKind::Break })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { pos, kind: StmtKind::Continue })
            }
            TokenKind::Keyword(k) if keyword_type(k).is_some() || k == Keyword::Const => {
                self.decl_stmt()
            }
            _ => {
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt { pos, kind: StmtKind::Expr(e) })
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        while self.eat_keyword(Keyword::Const) {}
        let ty = self.parse_type()?;
        if ty == CType::Void {
            return Err(CompileError::single(pos, "cannot declare a variable of type `void`"));
        }
        let mut items = Vec::new();
        loop {
            let (name, ipos) = self.expect_ident()?;
            let array = if self.eat_punct(Punct::LBracket) {
                let n = match self.peek_kind().clone() {
                    TokenKind::IntLit(n) if n > 0 => {
                        self.bump();
                        n as usize
                    }
                    other => {
                        return Err(self.error(format!(
                            "array size must be a positive integer literal, found {other}"
                        )))
                    }
                };
                self.expect_punct(Punct::RBracket)?;
                Some(n)
            } else {
                None
            };
            let init = if self.eat_punct(Punct::Assign) {
                if array.is_some() {
                    return Err(self.error("array initialisers are not supported"));
                }
                Some(self.assignment()?)
            } else {
                None
            };
            items.push(DeclItem { name, array, init, pos: ipos });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt { pos, kind: StmtKind::Decl { ty, items } })
    }

    // ---- expressions --------------------------------------------------------
    // C precedence ladder, from the top.

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Punct(Punct::Assign) => AssignOp::Assign,
            TokenKind::Punct(Punct::PlusAssign) => AssignOp::Add,
            TokenKind::Punct(Punct::MinusAssign) => AssignOp::Sub,
            TokenKind::Punct(Punct::StarAssign) => AssignOp::Mul,
            TokenKind::Punct(Punct::SlashAssign) => AssignOp::Div,
            TokenKind::Punct(Punct::PercentAssign) => AssignOp::Rem,
            _ => return Ok(lhs),
        };
        let pos = self.pos();
        self.bump();
        let rhs = self.assignment()?; // right-associative
        Ok(Expr { pos, kind: ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) } })
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let pos = cond.pos;
        let then = self.expr()?;
        self.expect_punct(Punct::Colon)?;
        let els = self.ternary()?;
        Ok(Expr {
            pos,
            kind: ExprKind::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
        })
    }

    /// Binary operators by precedence-climbing. `min_prec` is the minimum
    /// precedence accepted at this level.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = binary_op(self.peek_kind()) {
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs =
                Expr { pos, kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) } };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek_kind().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnaryOp::Neg, expr: Box::new(e) } })
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnaryOp::Plus, expr: Box::new(e) } })
            }
            TokenKind::Punct(Punct::Not) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnaryOp::Not, expr: Box::new(e) } })
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::Unary { op: UnaryOp::BitNot, expr: Box::new(e) } })
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::PreIncDec { expr: Box::new(e), inc: true } })
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::PreIncDec { expr: Box::new(e), inc: false } })
            }
            // Cast: `(` type `)` unary — distinguished from parenthesised
            // expressions by the type keyword.
            TokenKind::Punct(Punct::LParen)
                if matches!(
                    self.tokens.get(self.at + 1).map(|t| &t.kind),
                    Some(TokenKind::Keyword(k)) if keyword_type(*k).is_some()
                ) =>
            {
                self.bump();
                let ty = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                let e = self.unary()?;
                Ok(Expr { pos, kind: ExprKind::Cast { ty, expr: Box::new(e) } })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            match self.peek_kind().clone() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr {
                        pos,
                        kind: ExprKind::Index { base: Box::new(e), index: Box::new(index) },
                    };
                }
                TokenKind::Punct(Punct::LParen) => {
                    let ExprKind::Ident(name) = e.kind.clone() else {
                        return Err(self.error("only named functions can be called"));
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    e = Expr { pos: e.pos, kind: ExprKind::Call { name, args } };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr { pos, kind: ExprKind::PostIncDec { expr: Box::new(e), inc: true } };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr { pos, kind: ExprKind::PostIncDec { expr: Box::new(e), inc: false } };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::IntLit(v) })
            }
            TokenKind::FloatLit(v, f32_suffix) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::FloatLit(v, f32_suffix) })
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::BoolLit(true) })
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::BoolLit(false) })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr { pos, kind: ExprKind::Ident(name) })
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

fn keyword_type(k: Keyword) -> Option<CType> {
    Some(match k {
        Keyword::Void => CType::Void,
        Keyword::Bool => CType::Bool,
        Keyword::Int => CType::Int,
        Keyword::Uint => CType::Uint,
        Keyword::Long => CType::Long,
        Keyword::Ulong => CType::Ulong,
        Keyword::SizeT => CType::SizeT,
        Keyword::Float => CType::Float,
        Keyword::Double => CType::Double,
        _ => return None,
    })
}

/// Binary operator and its precedence (higher binds tighter).
fn binary_op(kind: &TokenKind) -> Option<(BinaryOp, u8)> {
    let TokenKind::Punct(p) = kind else { return None };
    Some(match p {
        Punct::OrOr => (BinaryOp::LogOr, 1),
        Punct::AndAnd => (BinaryOp::LogAnd, 2),
        Punct::Pipe => (BinaryOp::BitOr, 3),
        Punct::Caret => (BinaryOp::BitXor, 4),
        Punct::Amp => (BinaryOp::BitAnd, 5),
        Punct::Eq => (BinaryOp::Eq, 6),
        Punct::Ne => (BinaryOp::Ne, 6),
        Punct::Lt => (BinaryOp::Lt, 7),
        Punct::Le => (BinaryOp::Le, 7),
        Punct::Gt => (BinaryOp::Gt, 7),
        Punct::Ge => (BinaryOp::Ge, 7),
        Punct::Shl => (BinaryOp::Shl, 8),
        Punct::Shr => (BinaryOp::Shr, 8),
        Punct::Plus => (BinaryOp::Add, 9),
        Punct::Minus => (BinaryOp::Sub, 9),
        Punct::Star => (BinaryOp::Mul, 10),
        Punct::Slash => (BinaryOp::Div, 10),
        Punct::Percent => (BinaryOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).expect("lexes")).expect("parses")
    }

    fn parse_expr(src: &str) -> Expr {
        let unit = parse_src(&format!("__kernel void k(__global double* o) {{ o[0] = {src}; }}"));
        match &unit.functions[0].body[0].kind {
            StmtKind::Expr(Expr { kind: ExprKind::Assign { rhs, .. }, .. }) => (**rhs).clone(),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn kernel_signature() {
        let u = parse_src(
            "__kernel void k(__global const double* restrict in, __local double* v, int n) {}",
        );
        let f = &u.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.name, "k");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].space, Some(AddressSpace::Global));
        assert!(f.params[0].is_ptr);
        assert_eq!(f.params[1].space, Some(AddressSpace::Local));
        assert_eq!(f.params[2].space, None);
        assert!(!f.params[2].is_ptr);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        let ExprKind::Binary { op: BinaryOp::Add, rhs, .. } = e.kind else {
            panic!("expected add at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn precedence_shift_vs_relational() {
        // C: `a < b << c` parses as `a < (b << c)`.
        let e = parse_expr("1 < 2 << 3");
        let ExprKind::Binary { op: BinaryOp::Lt, rhs, .. } = e.kind else { panic!("{e:?}") };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinaryOp::Shl, .. }));
    }

    #[test]
    fn ternary_and_assignment_are_right_associative() {
        let u =
            parse_src("__kernel void k(__global double* o) { double a; double b; a = b = 1.0; }");
        let StmtKind::Expr(e) = &u.functions[0].body[2].kind else { panic!() };
        let ExprKind::Assign { rhs, .. } = &e.kind else { panic!() };
        assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
        let e = parse_expr("1 ? 2.0 : 0 ? 3.0 : 4.0");
        let ExprKind::Ternary { els, .. } = e.kind else { panic!() };
        assert!(matches!(els.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn cast_vs_parenthesised_expression() {
        let e = parse_expr("(double)(1 + 2)");
        assert!(matches!(e.kind, ExprKind::Cast { ty: CType::Double, .. }));
        let e = parse_expr("(1 + 2) * 3");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn for_loop_with_pragma() {
        let u = parse_src(
            "__kernel void k(__global double* o) {
                #pragma unroll 2
                for (int t = 0; t < 10; t++) { o[t] = 0.0; }
            }",
        );
        let StmtKind::For { unroll, init, cond, step, .. } = &u.functions[0].body[0].kind else {
            panic!()
        };
        assert_eq!(*unroll, Some(Some(2)));
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn pragma_must_precede_for() {
        let toks = lex("__kernel void k(__global double* o) { #pragma unroll 2\n o[0] = 1.0; }")
            .expect("lexes");
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn declarations_with_arrays_and_multiple_items() {
        let u = parse_src("__kernel void k(__global double* o) { double a = 1.0, b, tmp[4]; }");
        let StmtKind::Decl { ty, items } = &u.functions[0].body[0].kind else { panic!() };
        assert_eq!(*ty, CType::Double);
        assert_eq!(items.len(), 3);
        assert!(items[0].init.is_some());
        assert_eq!(items[2].array, Some(4));
    }

    #[test]
    fn array_initialiser_rejected() {
        let toks =
            lex("__kernel void k(__global double* o) { double t[2] = 0.0; }").expect("lexes");
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn if_else_binds_to_nearest() {
        let u = parse_src(
            "__kernel void k(__global double* o) { if (1) if (0) o[0] = 1.0; else o[0] = 2.0; }",
        );
        let StmtKind::If { els, then, .. } = &u.functions[0].body[0].kind else { panic!() };
        assert!(els.is_none(), "outer if has no else");
        let StmtKind::If { els, .. } = &then.kind else { panic!() };
        assert!(els.is_some(), "inner if owns the else");
    }

    #[test]
    fn calls_and_indexing_chain() {
        let e = parse_expr("pow(u, (double)(2 * 3))");
        let ExprKind::Call { name, args } = e.kind else { panic!() };
        assert_eq!(name, "pow");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn inc_dec_forms() {
        let u = parse_src("__kernel void k(__global double* o) { int i = 0; i++; ++i; i--; --i; }");
        assert!(matches!(
            &u.functions[0].body[1].kind,
            StmtKind::Expr(Expr { kind: ExprKind::PostIncDec { inc: true, .. }, .. })
        ));
        assert!(matches!(
            &u.functions[0].body[2].kind,
            StmtKind::Expr(Expr { kind: ExprKind::PreIncDec { inc: true, .. }, .. })
        ));
    }

    #[test]
    fn missing_semicolon_reports_position() {
        let toks = lex("__kernel void k(__global double* o) { o[0] = 1.0 }").expect("lexes");
        let err = parse(&toks).expect_err("parse error");
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn empty_for_clauses() {
        let u = parse_src("__kernel void k(__global double* o) { for (;;) { break; } }");
        let StmtKind::For { init, cond, step, .. } = &u.functions[0].body[0].kind else { panic!() };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }
}
