//! Positioned diagnostics for the front-end.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// Line, starting at 1 (0 means unknown).
    pub line: u32,
    /// Column, starting at 1 (0 means unknown).
    pub col: u32,
}

impl Pos {
    /// A position at `line`:`col`.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Where the problem was detected.
    pub pos: Pos,
    /// What the problem is.
    pub message: String,
}

impl Diag {
    /// Create a diagnostic.
    pub fn new(pos: Pos, message: impl Into<String>) -> Diag {
        Diag { pos, message: message.into() }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

/// Compilation failure: one or more diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    diags: Vec<Diag>,
}

impl CompileError {
    /// An error with a single diagnostic.
    pub fn single(pos: Pos, message: impl Into<String>) -> CompileError {
        CompileError { diags: vec![Diag::new(pos, message)] }
    }

    /// An error from a list of diagnostics.
    ///
    /// # Panics
    /// Panics if `diags` is empty — an error must explain itself.
    pub fn from_diags(diags: Vec<Diag>) -> CompileError {
        assert!(!diags.is_empty(), "CompileError requires at least one diagnostic");
        CompileError { diags }
    }

    /// The diagnostics.
    pub fn diags(&self) -> &[Diag] {
        &self.diags
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CompileError::single(Pos::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
        assert_eq!(e.diags().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one diagnostic")]
    fn empty_diags_rejected() {
        let _ = CompileError::from_diags(vec![]);
    }
}
