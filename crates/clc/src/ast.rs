//! Abstract syntax tree for the OpenCL C subset.

use crate::diag::Pos;
use bop_clir::types::AddressSpace;

/// Source-level scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` (function return type only).
    Void,
    /// `bool`.
    Bool,
    /// `int`.
    Int,
    /// `uint`.
    Uint,
    /// `long`.
    Long,
    /// `ulong`.
    Ulong,
    /// `size_t`.
    SizeT,
    /// `float`.
    Float,
    /// `double`.
    Double,
}

impl CType {
    /// The source spelling.
    pub fn name(self) -> &'static str {
        match self {
            CType::Void => "void",
            CType::Bool => "bool",
            CType::Int => "int",
            CType::Uint => "uint",
            CType::Long => "long",
            CType::Ulong => "ulong",
            CType::SizeT => "size_t",
            CType::Float => "float",
            CType::Double => "double",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`.
    Neg,
    /// `+x` (no-op).
    Plus,
    /// `!x`.
    Not,
    /// `~x`.
    BitNot,
}

/// Binary operators (excluding assignment and `?:`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // spellings are self-describing
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// The source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitXor => "^",
            BinaryOp::BitOr => "|",
            BinaryOp::LogAnd => "&&",
            BinaryOp::LogOr => "||",
        }
    }

    /// True for `<`, `<=`, `>`, `>=`, `==`, `!=` (result type `bool`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// True for `&&` and `||` (short-circuiting).
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::LogAnd | BinaryOp::LogOr)
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`.
    Assign,
    /// `+=`.
    Add,
    /// `-=`.
    Sub,
    /// `*=`.
    Mul,
    /// `/=`.
    Div,
    /// `%=`.
    Rem,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn binary(self) -> Option<BinaryOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::Add => Some(BinaryOp::Add),
            AssignOp::Sub => Some(BinaryOp::Sub),
            AssignOp::Mul => Some(BinaryOp::Mul),
            AssignOp::Div => Some(BinaryOp::Div),
            AssignOp::Rem => Some(BinaryOp::Rem),
        }
    }
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Position of the expression's first token.
    pub pos: Pos,
    /// Payload.
    pub kind: ExprKind,
}

/// Expression payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal; the flag is the `f` (binary32) suffix.
    FloatLit(f64, bool),
    /// `true` / `false`.
    BoolLit(bool),
    /// A name.
    Ident(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment (simple or compound); an expression in C.
    Assign {
        /// Operator.
        op: AssignOp,
        /// Assignable target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then: Box<Expr>,
        /// Value if false.
        els: Box<Expr>,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`.
    Index {
        /// Pointer or array expression.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
    },
    /// `(type) expr`.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `x++` / `x--` (value is the *old* x).
    PostIncDec {
        /// Target lvalue.
        expr: Box<Expr>,
        /// True for `++`.
        inc: bool,
    },
    /// `++x` / `--x` (value is the *new* x).
    PreIncDec {
        /// Target lvalue.
        expr: Box<Expr>,
        /// True for `++`.
        inc: bool,
    },
}

/// One declarator in a declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclItem {
    /// Variable name.
    pub name: String,
    /// `Some(n)` for a private array `T name[n]`.
    pub array: Option<usize>,
    /// Optional initialiser.
    pub init: Option<Expr>,
    /// Position of the name.
    pub pos: Pos,
}

/// A statement with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Position of the statement's first token.
    pub pos: Pos,
    /// Payload.
    pub kind: StmtKind,
}

/// Statement payload.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Variable declaration(s).
    Decl {
        /// Declared base type.
        ty: CType,
        /// Declarators.
        items: Vec<DeclItem>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `for` loop, optionally annotated with `#pragma unroll`.
    For {
        /// Init clause (declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Condition (absent means `true`).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
        /// `#pragma unroll` factor: `None` = no pragma; `Some(None)` =
        /// pragma without a factor (filled from [`crate::Options`]);
        /// `Some(Some(n))` = explicit factor.
        unroll: Option<Option<u32>>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do ... while` loop (body runs at least once).
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition, checked after each iteration.
        cond: Expr,
    },
    /// `return;` (kernels return void).
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Position of the parameter name.
    pub pos: Pos,
    /// Address-space qualifier for pointer parameters.
    pub space: Option<AddressSpace>,
    /// Base scalar type.
    pub base: CType,
    /// True if declared with `*`.
    pub is_ptr: bool,
    /// True if declared `pipe T name` (on-chip FIFO endpoint).
    pub is_pipe: bool,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Position of the function name.
    pub pos: Pos,
    /// True if declared `__kernel`.
    pub is_kernel: bool,
    /// Return type (must be `void` for kernels).
    pub ret: CType,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// All function definitions.
    pub functions: Vec<FunctionDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_op_desugaring() {
        assert_eq!(AssignOp::Assign.binary(), None);
        assert_eq!(AssignOp::Add.binary(), Some(BinaryOp::Add));
        assert_eq!(AssignOp::Rem.binary(), Some(BinaryOp::Rem));
    }

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::LogAnd.is_logical());
        assert!(!BinaryOp::BitAnd.is_logical());
    }

    #[test]
    fn ctype_names() {
        assert_eq!(CType::SizeT.name(), "size_t");
        assert_eq!(CType::Double.name(), "double");
    }
}
