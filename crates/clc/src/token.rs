//! Tokens of the OpenCL C subset.

use crate::diag::Pos;
use std::fmt;

/// Keywords recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `__kernel` / `kernel`.
    Kernel,
    /// `__global` / `global`.
    Global,
    /// `__local` / `local`.
    Local,
    /// `__private` / `private`.
    Private,
    /// `__constant` / `constant`.
    Constant,
    /// `pipe`.
    Pipe,
    /// `__read_only` / `read_only`.
    ReadOnly,
    /// `__write_only` / `write_only`.
    WriteOnly,
    /// `const`.
    Const,
    /// `restrict`.
    Restrict,
    /// `void`.
    Void,
    /// `bool`.
    Bool,
    /// `int`.
    Int,
    /// `uint`.
    Uint,
    /// `long`.
    Long,
    /// `ulong`.
    Ulong,
    /// `size_t`.
    SizeT,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `for`.
    For,
    /// `while`.
    While,
    /// `do`.
    Do,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `true`.
    True,
    /// `false`.
    False,
}

impl Keyword {
    /// Look up a keyword by spelling.
    pub fn from_spelling(s: &str) -> Option<Keyword> {
        Some(match s {
            "__kernel" | "kernel" => Keyword::Kernel,
            "__global" | "global" => Keyword::Global,
            "__local" | "local" => Keyword::Local,
            "__private" | "private" => Keyword::Private,
            "__constant" | "constant" => Keyword::Constant,
            "pipe" => Keyword::Pipe,
            "__read_only" | "read_only" => Keyword::ReadOnly,
            "__write_only" | "write_only" => Keyword::WriteOnly,
            "const" => Keyword::Const,
            "restrict" => Keyword::Restrict,
            "void" => Keyword::Void,
            "bool" => Keyword::Bool,
            "int" => Keyword::Int,
            "uint" => Keyword::Uint,
            "long" => Keyword::Long,
            "ulong" => Keyword::Ulong,
            "size_t" => Keyword::SizeT,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // spellings are self-describing
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Tilde,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Question,
    Colon,
}

impl Punct {
    /// The source spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Comma => ",",
            Punct::Semi => ";",
            Punct::Star => "*",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Assign => "=",
            Punct::PlusAssign => "+=",
            Punct::MinusAssign => "-=",
            Punct::StarAssign => "*=",
            Punct::SlashAssign => "/=",
            Punct::PercentAssign => "%=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
            Punct::Eq => "==",
            Punct::Ne => "!=",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Not => "!",
            Punct::Tilde => "~",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Question => "?",
            Punct::Colon => ":",
        }
    }
}

/// Token payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier.
    Ident(String),
    /// An integer literal (value, and whether it was suffixed `u`/`l`).
    IntLit(i64),
    /// A floating literal (`1.5`, `2e-3`, `1.0f`); bool is the `f` suffix.
    FloatLit(f64, bool),
    /// Punctuation.
    Punct(Punct),
    /// `#pragma unroll [N]`.
    PragmaUnroll(Option<u32>),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Position of the first character.
    pub pos: Pos,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v, true) => write!(f, "float literal `{v}f`"),
            TokenKind::FloatLit(v, false) => write!(f, "float literal `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.spelling()),
            TokenKind::PragmaUnroll(Some(n)) => write!(f, "#pragma unroll {n}"),
            TokenKind::PragmaUnroll(None) => write!(f, "#pragma unroll"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_handles_both_spellings() {
        assert_eq!(Keyword::from_spelling("__kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_spelling("kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_spelling("__global"), Some(Keyword::Global));
        assert_eq!(Keyword::from_spelling("size_t"), Some(Keyword::SizeT));
        assert_eq!(Keyword::from_spelling("banana"), None);
    }

    #[test]
    fn punct_spellings() {
        assert_eq!(Punct::Shl.spelling(), "<<");
        assert_eq!(Punct::PlusAssign.spelling(), "+=");
    }
}
