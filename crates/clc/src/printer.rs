//! Pretty-printer: AST back to OpenCL C source.
//!
//! Used by tests (parse/print/re-parse round trips) and handy when
//! debugging generated or transformed kernels. The printer emits fully
//! parenthesised expressions, so the round trip is exact up to parentheses.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole translation unit.
pub fn print_unit(unit: &Unit) -> String {
    let mut out = String::new();
    for f in &unit.functions {
        print_function(&mut out, f);
        out.push('\n');
    }
    out
}

fn print_function(out: &mut String, f: &FunctionDef) {
    if f.is_kernel {
        out.push_str("__kernel ");
    }
    let _ = write!(out, "{} {}(", f.ret.name(), f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let Some(space) = p.space {
            let _ = write!(out, "{} ", space.qualifier());
        }
        if p.is_pipe {
            out.push_str("pipe ");
        }
        let _ = write!(out, "{}{} {}", p.base.name(), if p.is_ptr { "*" } else { "" }, p.name);
    }
    out.push_str(") {\n");
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match &s.kind {
        StmtKind::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
        StmtKind::Block(stmts) => {
            indent(out, level);
            out.push_str("{\n");
            for st in stmts {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Decl { ty, items } => {
            indent(out, level);
            let _ = write!(out, "{} ", ty.name());
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&item.name);
                if let Some(n) = item.array {
                    let _ = write!(out, "[{n}]");
                }
                if let Some(init) = &item.init {
                    out.push_str(" = ");
                    print_expr(out, init);
                }
            }
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            indent(out, level);
            print_expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::If { cond, then, els } => {
            indent(out, level);
            out.push_str("if (");
            print_expr(out, cond);
            out.push_str(")\n");
            print_stmt(out, then, level + 1);
            if let Some(e) = els {
                indent(out, level);
                out.push_str("else\n");
                print_stmt(out, e, level + 1);
            }
        }
        StmtKind::While { cond, body } => {
            indent(out, level);
            out.push_str("while (");
            print_expr(out, cond);
            out.push_str(")\n");
            print_stmt(out, body, level + 1);
        }
        StmtKind::DoWhile { body, cond } => {
            indent(out, level);
            out.push_str("do\n");
            print_stmt(out, body, level + 1);
            indent(out, level);
            out.push_str("while (");
            print_expr(out, cond);
            out.push_str(");\n");
        }
        StmtKind::For { init, cond, step, body, unroll } => {
            if let Some(factor) = unroll {
                indent(out, level);
                match factor {
                    Some(n) => {
                        let _ = writeln!(out, "#pragma unroll {n}");
                    }
                    None => out.push_str("#pragma unroll\n"),
                }
            }
            indent(out, level);
            out.push_str("for (");
            match init {
                Some(stmt) => match &stmt.kind {
                    StmtKind::Decl { ty, items } => {
                        let _ = write!(out, "{} ", ty.name());
                        for (i, item) in items.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&item.name);
                            if let Some(init) = &item.init {
                                out.push_str(" = ");
                                print_expr(out, init);
                            }
                        }
                        out.push_str("; ");
                    }
                    StmtKind::Expr(e) => {
                        print_expr(out, e);
                        out.push_str("; ");
                    }
                    other => unreachable!("for-init is decl or expr: {other:?}"),
                },
                None => out.push_str("; "),
            }
            if let Some(c) = cond {
                print_expr(out, c);
            }
            out.push_str("; ");
            if let Some(st) = step {
                print_expr(out, st);
            }
            out.push_str(")\n");
            print_stmt(out, body, level + 1);
        }
        StmtKind::Return(Some(e)) => {
            indent(out, level);
            out.push_str("return ");
            print_expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::Return(None) => {
            indent(out, level);
            out.push_str("return;\n");
        }
        StmtKind::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
    }
}

fn print_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v, f32_suffix) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
            if *f32_suffix {
                out.push('f');
            }
        }
        ExprKind::BoolLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Ident(name) => out.push_str(name),
        ExprKind::Unary { op, expr } => {
            out.push_str(match op {
                UnaryOp::Neg => "-",
                UnaryOp::Plus => "+",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
            });
            out.push('(');
            print_expr(out, expr);
            out.push(')');
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs);
            let _ = write!(out, " {} ", op.spelling());
            print_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Assign { op, lhs, rhs } => {
            print_expr(out, lhs);
            out.push_str(match op {
                AssignOp::Assign => " = ",
                AssignOp::Add => " += ",
                AssignOp::Sub => " -= ",
                AssignOp::Mul => " *= ",
                AssignOp::Div => " /= ",
                AssignOp::Rem => " %= ",
            });
            print_expr(out, rhs);
        }
        ExprKind::Ternary { cond, then, els } => {
            out.push('(');
            print_expr(out, cond);
            out.push_str(" ? ");
            print_expr(out, then);
            out.push_str(" : ");
            print_expr(out, els);
            out.push(')');
        }
        ExprKind::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Index { base, index } => {
            print_expr(out, base);
            out.push('[');
            print_expr(out, index);
            out.push(']');
        }
        ExprKind::Cast { ty, expr } => {
            let _ = write!(out, "({})", ty.name());
            out.push('(');
            print_expr(out, expr);
            out.push(')');
        }
        ExprKind::PostIncDec { expr, inc } => {
            print_expr(out, expr);
            out.push_str(if *inc { "++" } else { "--" });
        }
        ExprKind::PreIncDec { expr, inc } => {
            out.push_str(if *inc { "++" } else { "--" });
            out.push('(');
            print_expr(out, expr);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    /// Strip positions so reparsed ASTs compare equal.
    fn normalise(mut unit: Unit) -> Unit {
        fn fix_expr(e: &mut Expr) {
            e.pos = Default::default();
            match &mut e.kind {
                ExprKind::Unary { expr, .. }
                | ExprKind::Cast { expr, .. }
                | ExprKind::PostIncDec { expr, .. }
                | ExprKind::PreIncDec { expr, .. } => fix_expr(expr),
                ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                    fix_expr(lhs);
                    fix_expr(rhs);
                }
                ExprKind::Ternary { cond, then, els } => {
                    fix_expr(cond);
                    fix_expr(then);
                    fix_expr(els);
                }
                ExprKind::Call { args, .. } => args.iter_mut().for_each(fix_expr),
                ExprKind::Index { base, index } => {
                    fix_expr(base);
                    fix_expr(index);
                }
                _ => {}
            }
        }
        fn fix_stmt(s: &mut Stmt) {
            s.pos = Default::default();
            match &mut s.kind {
                StmtKind::Block(stmts) => stmts.iter_mut().for_each(fix_stmt),
                StmtKind::Decl { items, .. } => {
                    for item in items {
                        item.pos = Default::default();
                        if let Some(e) = &mut item.init {
                            fix_expr(e);
                        }
                    }
                }
                StmtKind::Expr(e) => fix_expr(e),
                StmtKind::If { cond, then, els } => {
                    fix_expr(cond);
                    fix_stmt(then);
                    if let Some(e) = els {
                        fix_stmt(e);
                    }
                }
                StmtKind::While { cond, body } => {
                    fix_expr(cond);
                    fix_stmt(body);
                }
                StmtKind::DoWhile { body, cond } => {
                    fix_stmt(body);
                    fix_expr(cond);
                }
                StmtKind::For { init, cond, step, body, .. } => {
                    if let Some(i) = init {
                        fix_stmt(i);
                    }
                    if let Some(c) = cond {
                        fix_expr(c);
                    }
                    if let Some(st) = step {
                        fix_expr(st);
                    }
                    fix_stmt(body);
                }
                StmtKind::Return(Some(e)) => fix_expr(e),
                _ => {}
            }
        }
        for f in &mut unit.functions {
            f.pos = Default::default();
            for p in &mut f.params {
                p.pos = Default::default();
            }
            f.body.iter_mut().for_each(fix_stmt);
        }
        unit
    }

    fn round_trip(src: &str) {
        let unit = normalise(parse(&lex(src).expect("lex")).expect("parse"));
        let printed = print_unit(&unit);
        let reparsed = normalise(parse(&lex(&printed).expect("re-lex")).expect("re-parse"));
        assert_eq!(unit, reparsed, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trip_expressions() {
        round_trip(
            "__kernel void k(__global double* o, int n) {
                o[0] = 1 + 2 * 3 - n / 4 % 5;
                o[1] = (double)(n << 2) + (n & 7 | 1 ^ 3);
                o[2] = n > 0 && n < 10 || !(n == 5) ? 1.0 : 2.0;
                o[3] = pow(2.0, fmax(1.0f, 2.0));
            }",
        );
    }

    #[test]
    fn round_trip_statements() {
        round_trip(
            "__kernel void k(__global double* o, __local double* l, __constant double* c) {
                double acc = 0.0, tmp[8];
                #pragma unroll 2
                for (int i = 0; i < 16; i++) {
                    if (i % 2 == 0) { acc += c[i]; } else { continue; }
                    while (acc > 100.0) { acc /= 2.0; break; }
                }
                barrier(0);
                l[0] = acc;
                o[0] = l[0];
                return;
            }",
        );
    }

    #[test]
    fn round_trip_pipe_params() {
        round_trip(
            "__kernel void k(__global double* o, pipe double p) {
                write_pipe(p, o[0]);
                o[1] = read_pipe(p);
            }",
        );
    }

    #[test]
    fn round_trip_do_while() {
        round_trip(
            "__kernel void k(__global double* o) {
                int i = 0;
                do { i++; } while (i < 4);
                o[0] = (double)i;
            }",
        );
    }

    #[test]
    fn round_trip_inc_dec_and_compound() {
        round_trip(
            "__kernel void k(__global double* o) {
                int i = 0;
                i++; --i; i += 3; i *= 2; i %= 5;
                o[0] = (double)i;
            }",
        );
    }
}
