//! Hand-written lexer for the OpenCL C subset.
//!
//! Handles line (`//`) and block (`/* */`) comments, decimal and hex
//! integer literals with `u`/`U`/`l`/`L` suffixes, floating literals with
//! exponents and `f`/`F` suffixes, and the `#pragma unroll [N]` directive
//! (any other `#pragma` is ignored, any other `#` directive is an error —
//! the front-end has no preprocessor; simple textual substitution is done
//! by callers where needed, as `bop-core` does for the `double`/`float`
//! precision variants).

use crate::diag::{CompileError, Pos};
use crate::token::{Keyword, Punct, Token, TokenKind};

struct Lexer<'s> {
    src: &'s [u8],
    at: usize,
    line: u32,
    col: u32,
}

/// Lex `source` into tokens (terminated by an `Eof` token).
///
/// # Errors
/// Returns a [`CompileError`] on unknown characters, malformed literals,
/// unterminated comments or unsupported preprocessor directives.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut lx = Lexer { src: source.as_bytes(), at: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        tokens.push(tok);
        if done {
            return Ok(tokens);
        }
    }
}

impl<'s> Lexer<'s> {
    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.at += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError::single(pos, msg)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if (c as char).is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err(start, "unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, pos });
        };
        if c == b'#' {
            return self.pragma(pos);
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident_or_keyword(pos));
        }
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.number(pos);
        }
        self.punct(pos)
    }

    fn pragma(&mut self, pos: Pos) -> Result<Token, CompileError> {
        // Consume to end of line; recognise `#pragma unroll [N]`.
        let mut line = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            line.push(self.bump().expect("peeked") as char);
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["#pragma", "unroll"] => Ok(Token { kind: TokenKind::PragmaUnroll(None), pos }),
            ["#pragma", "unroll", n] => {
                let factor: u32 =
                    n.parse().map_err(|_| self.err(pos, format!("invalid unroll factor `{n}`")))?;
                if factor == 0 {
                    return Err(self.err(pos, "unroll factor must be at least 1"));
                }
                Ok(Token { kind: TokenKind::PragmaUnroll(Some(factor)), pos })
            }
            ["#pragma", ..] => {
                // Other pragmas are ignored: lex the next token instead.
                self.next_token()
            }
            _ => Err(self.err(
                pos,
                format!("unsupported preprocessor directive `{}` (no preprocessor)", line.trim()),
            )),
        }
    }

    fn ident_or_keyword(&mut self, pos: Pos) -> Token {
        let start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("ascii ident");
        let kind = match Keyword::from_spelling(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text.to_owned()),
        };
        Token { kind, pos }
    }

    fn number(&mut self, pos: Pos) -> Result<Token, CompileError> {
        let start = self.at;
        // Hex integer?
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.at;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.at == hstart {
                return Err(self.err(pos, "hex literal needs at least one digit"));
            }
            let text = std::str::from_utf8(&self.src[hstart..self.at]).expect("hex digits");
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| self.err(pos, format!("hex literal `0x{text}` overflows")))?;
            self.int_suffix();
            return Ok(Token { kind: TokenKind::IntLit(value), pos });
        }
        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.at, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent (e.g. `1e` followed by ident char).
                (self.at, self.line, self.col) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.at]).expect("digits");
        if is_float {
            let f32_suffix = matches!(self.peek(), Some(b'f') | Some(b'F'));
            if f32_suffix {
                self.bump();
            }
            let value: f64 =
                text.parse().map_err(|_| self.err(pos, format!("bad float literal `{text}`")))?;
            Ok(Token { kind: TokenKind::FloatLit(value, f32_suffix), pos })
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.err(pos, format!("integer literal `{text}` overflows")))?;
            self.int_suffix();
            Ok(Token { kind: TokenKind::IntLit(value), pos })
        }
    }

    fn int_suffix(&mut self) {
        while matches!(self.peek(), Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')) {
            self.bump();
        }
    }

    fn punct(&mut self, pos: Pos) -> Result<Token, CompileError> {
        use Punct::*;
        let c = self.bump().expect("peeked");
        let two = |lx: &mut Self, next: u8, yes: Punct, no: Punct| {
            if lx.peek() == Some(next) {
                lx.bump();
                yes
            } else {
                no
            }
        };
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semi,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'^' => Caret,
            b'*' => two(self, b'=', StarAssign, Star),
            b'/' => two(self, b'=', SlashAssign, Slash),
            b'%' => two(self, b'=', PercentAssign, Percent),
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, b'=', PlusAssign, Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    MinusMinus
                } else {
                    two(self, b'=', MinusAssign, Minus)
                }
            }
            b'=' => two(self, b'=', Eq, Assign),
            b'!' => two(self, b'=', Ne, Not),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    Shl
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    Shr
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            b'&' => two(self, b'&', AndAnd, Amp),
            b'|' => two(self, b'|', OrOr, Pipe),
            other => return Err(self.err(pos, format!("unexpected character `{}`", other as char))),
        };
        Ok(Token { kind: TokenKind::Punct(p), pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lexes").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_declaration() {
        let k = kinds("double x = 1.5;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Double),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Assign),
                TokenKind::FloatLit(1.5, false),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators_greedily() {
        let k = kinds("a<<=b"); // no <<= token: lexes as << =
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Shl),
                TokenKind::Punct(Punct::Assign),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("i++")[1], TokenKind::Punct(Punct::PlusPlus));
        assert_eq!(kinds("i--")[1], TokenKind::Punct(Punct::MinusMinus));
        assert_eq!(kinds("a!=b")[1], TokenKind::Punct(Punct::Ne));
    }

    #[test]
    fn lex_numeric_forms() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("0x1F")[0], TokenKind::IntLit(31));
        assert_eq!(kinds("7u")[0], TokenKind::IntLit(7));
        assert_eq!(kinds("1.0f")[0], TokenKind::FloatLit(1.0, true));
        assert_eq!(kinds("2e-3")[0], TokenKind::FloatLit(2e-3, false));
        assert_eq!(kinds(".5")[0], TokenKind::FloatLit(0.5, false));
        assert_eq!(kinds("1.")[0], TokenKind::FloatLit(1.0, false));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // line\n b /* block\n over lines */ c");
        assert_eq!(k.len(), 4); // a b c eof
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("a /* oops").is_err());
    }

    #[test]
    fn pragma_unroll_forms() {
        assert_eq!(kinds("#pragma unroll\nfor")[0], TokenKind::PragmaUnroll(None));
        assert_eq!(kinds("#pragma unroll 4\nfor")[0], TokenKind::PragmaUnroll(Some(4)));
        assert!(lex("#pragma unroll 0\n").is_err());
        assert!(lex("#include <foo>\n").is_err());
        // Unknown pragmas are skipped entirely.
        assert_eq!(
            kinds("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nx")[0],
            TokenKind::Ident("x".into())
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("a\n  bb").expect("lexes");
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("a @ b").expect_err("error");
        assert!(err.to_string().contains('@'));
    }
}
