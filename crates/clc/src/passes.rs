//! IR optimisation passes: constant folding, DCE, CSE, copy propagation.
//!
//! These mirror the scalar optimisations an HLS compiler applies before
//! scheduling; they matter for the FPGA resource estimates (a folded
//! constant costs no DSPs) and keep the dynamic op counts honest.
//!
//! The implementations live in [`bop_clir::passes`] — the same code backs
//! both this front-end (cleaning up freshly-lowered IR) and the runtime's
//! named pass pipeline (re-optimising modules before bytecode emission and
//! running the SSA construction in [`bop_clir::passes::Pipeline::ssa`]).
//! This module is a pure re-export layer keeping the front-end's
//! historical names; the tests below pin the semantics of the shared
//! implementations through [`crate::compile`].
//!
//! - [`fold_constants`]: per-block forward scan folding instructions whose
//!   operands are provably constant into [`bop_clir::ir::Inst::Const`].
//! - [`eliminate_dead_code`]: whole-function liveness; removes pure
//!   instructions (loads included) whose results are never read, keeping
//!   stores and barriers.
//! - [`common_subexpression_elimination`]: local value numbering. Off by
//!   default (see [`crate::Options::cse`]) — the FPGA resource model
//!   charges hardware per instruction, so CSE changes Table-I-style
//!   resource estimates; the ablation benches quantify by how much.
//! - [`propagate_copies`]: rewrite uses of `Mov` destinations to the
//!   original register so DCE can drop the copy; runs after CSE (which
//!   introduces the copies).

#[cfg(test)]
use bop_clir::ir::Inst;

pub use bop_clir::passes::{
    eliminate_dead_code_in as eliminate_dead_code, fold_constants_in as fold_constants,
    local_cse_in as common_subexpression_elimination, propagate_copies_in as propagate_copies,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;

    fn compile_opts(src: &str, no_opt: bool) -> bop_clir::ir::Function {
        let m = compile("t.cl", src, &Options { no_opt, ..Options::default() }).expect("compiles");
        m.kernel("k").expect("kernel k").clone()
    }

    fn run_one(func: &bop_clir::ir::Function) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut wg =
            WorkGroupRun::new(func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    #[test]
    fn constant_expressions_fold_to_single_const() {
        let src = "__kernel void k(__global double* o) { o[0] = (1.0 + 2.0) * 4.0 - 2.0; }";
        let opt = compile_opts(src, false);
        let unopt = compile_opts(src, true);
        assert!(opt.inst_count() < unopt.inst_count(), "folding should shrink the kernel");
        assert_eq!(run_one(&opt), 10.0);
        assert_eq!(run_one(&unopt), 10.0);
    }

    #[test]
    fn folding_preserves_integer_semantics() {
        let src = "__kernel void k(__global double* o) { o[0] = (double)(7 / 2 + 7 % 2); }";
        assert_eq!(run_one(&compile_opts(src, false)), 4.0);
    }

    #[test]
    fn division_by_zero_not_folded_into_panic() {
        // The fold must leave the trapping instruction in place, not crash
        // the compiler.
        let src = "__kernel void k(__global double* o) { int z = 0; if (false) { int q = 1 / z; o[0] = (double)q; } o[0] = 1.0; }";
        let f = compile_opts(src, false);
        assert_eq!(run_one(&f), 1.0);
    }

    #[test]
    fn dead_code_removed_but_stores_kept() {
        let src = "__kernel void k(__global double* o) {
            double unused = exp(123.0);   // pure, dead
            o[0] = 5.0;                    // store, live
        }";
        let opt = compile_opts(src, false);
        let unopt = compile_opts(src, true);
        assert!(opt.inst_count() < unopt.inst_count());
        // exp must be gone entirely.
        let has_call =
            opt.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
        assert!(!has_call, "dead exp call should be eliminated");
        assert_eq!(run_one(&opt), 5.0);
    }

    #[test]
    fn loads_are_removable_but_live_loads_stay() {
        let src = "__kernel void k(__global double* o) {
            double dead = o[0];
            o[0] = 2.0;
            double live = o[0];
            o[0] = live + 1.0;
        }";
        let f = compile_opts(src, false);
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1, "dead load removed, live load kept");
        assert_eq!(run_one(&f), 3.0);
    }

    #[test]
    fn cross_block_liveness_respected() {
        // `x` is written in the entry block and read after the branch; DCE
        // must not remove the write.
        let src = "__kernel void k(__global double* o) {
            double x = 4.0;
            if (o[0] == 0.0) { x = x + 1.0; }
            o[0] = x;
        }";
        assert_eq!(run_one(&compile_opts(src, false)), 5.0);
    }
}

#[cfg(test)]
mod cse_tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;
    use bop_clir::value::Value as V;

    fn compile_cse(src: &str, cse: bool) -> bop_clir::ir::Function {
        let m = compile("t.cl", src, &Options { cse, ..Options::default() }).expect("compiles");
        m.kernel("k").expect("kernel k").clone()
    }

    fn run_xy(func: &bop_clir::ir::Function, x: f64, y: f64) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16);
        let mut wg = WorkGroupRun::new(
            func,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(x)),
                KernelArgValue::Scalar(V::F64(y)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    const REDUNDANT: &str = "__kernel void k(__global double* o, double x, double y) {
        o[0] = (x * y + 1.0) + (x * y + 1.0) + exp(x) * exp(x);
    }";

    #[test]
    fn cse_removes_duplicate_expressions() {
        let plain = compile_cse(REDUNDANT, false);
        let cse = compile_cse(REDUNDANT, true);
        let count = |f: &bop_clir::ir::Function, pred: &dyn Fn(&Inst) -> bool| {
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(i)).count()
        };
        let muls = |f: &bop_clir::ir::Function| {
            count(
                f,
                &|i| matches!(i, Inst::Bin { op: bop_clir::ir::BinOp::Mul, ty, .. } if ty.is_float()),
            )
        };
        let exps = |f: &bop_clir::ir::Function| count(f, &|i| matches!(i, Inst::Call { .. }));
        assert_eq!(muls(&plain), 3, "x*y twice + exp*exp");
        assert_eq!(muls(&cse), 2, "one x*y eliminated");
        assert_eq!(exps(&plain), 2);
        assert_eq!(exps(&cse), 1, "pure exp() deduplicated");
        // Semantics unchanged.
        for (x, y) in [(0.5, 2.0), (-1.5, 3.0), (0.0, 0.0)] {
            assert_eq!(run_xy(&plain, x, y).to_bits(), run_xy(&cse, x, y).to_bits());
        }
    }

    #[test]
    fn cse_respects_mutation_between_uses() {
        // `a` changes between the two uses of `a * 2.0`: must NOT merge.
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = x;
            double first = a * 2.0;
            a = a + y;
            double second = a * 2.0;
            o[0] = first + second;
        }";
        let plain = compile_cse(src, false);
        let cse = compile_cse(src, true);
        for (x, y) in [(1.0, 2.0), (3.0, -1.0)] {
            let want = x * 2.0 + (x + y) * 2.0;
            assert_eq!(run_xy(&plain, x, y), want);
            assert_eq!(run_xy(&cse, x, y), want, "CSE must respect redefinition");
        }
    }

    #[test]
    fn cse_does_not_merge_loads_across_stores() {
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = o[1];
            o[1] = a + x;
            double b = o[1];
            o[0] = a + b;
        }";
        let cse = compile_cse(src, true);
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16);
        mem.write_f64(buf, 1, 10.0);
        let mut wg = WorkGroupRun::new(
            &cse,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(5.0)),
                KernelArgValue::Scalar(V::F64(0.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 10.0 + 15.0, "second load must see the store");
    }

    #[test]
    fn cse_shrinks_the_straightforward_kernel() {
        // The paper kernel recomputes `t * 5` for each parameter load; CSE
        // should shrink it measurably (the ablation benches quantify the
        // resource effect).
        let src = include_str!("../../core/kernels/straightforward.cl").replace("REAL", "double");
        let m_plain = compile("k.cl", &src, &Options::default()).expect("compiles");
        let m_cse =
            compile("k.cl", &src, &Options { cse: true, ..Options::default() }).expect("compiles");
        let plain = m_plain.kernel("binomial_node").expect("k").inst_count();
        let cse = m_cse.kernel("binomial_node").expect("k").inst_count();
        assert!(cse < plain, "CSE should shrink the kernel: {cse} vs {plain}");
    }
}

#[cfg(test)]
mod copy_prop_tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;
    use bop_clir::value::Value as V;

    const REDUNDANT: &str = "__kernel void k(__global double* o, double x, double y) {
        o[0] = (x * y) + (x * y) * (x * y);
    }";

    fn movs(f: &bop_clir::ir::Function) -> usize {
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Mov { .. })).count()
    }

    #[test]
    fn copy_propagation_lets_dce_remove_cse_movs() {
        let m = compile("t.cl", REDUNDANT, &Options { cse: true, ..Options::default() })
            .expect("compiles");
        let f = m.kernel("k").expect("k");
        // With CSE + copy propagation + DCE, the duplicated x*y collapses
        // to one Mul and no surviving copies of it.
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: bop_clir::ir::BinOp::Mul, ty, .. } if ty.is_float()))
            .count();
        assert_eq!(muls, 2, "x*y shared; one product multiply remains");
        assert!(movs(f) <= 1, "copies should be propagated away: {}", movs(f));
        // Semantics check.
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut wg = WorkGroupRun::new(
            f,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(3.0)),
                KernelArgValue::Scalar(V::F64(2.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 6.0 + 36.0);
    }

    #[test]
    fn copies_invalidated_by_redefinition() {
        // `b = a; a = a + 1; o[0] = b;` — b must read the OLD a.
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = x;
            double b = a;
            a = a + 1.0;
            o[0] = b + a;
        }";
        let m =
            compile("t.cl", src, &Options { cse: true, ..Options::default() }).expect("compiles");
        let f = m.kernel("k").expect("k");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut wg = WorkGroupRun::new(
            f,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(5.0)),
                KernelArgValue::Scalar(V::F64(0.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 5.0 + 6.0);
    }
}
