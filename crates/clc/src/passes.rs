//! IR optimisation passes: constant folding and dead-code elimination.
//!
//! These mirror the scalar optimisations an HLS compiler applies before
//! scheduling; they matter for the FPGA resource estimates (a folded
//! constant costs no DSPs) and keep the dynamic op counts honest.

use bop_clir::eval;
use bop_clir::ir::{Function, Inst, RegId, Terminator};
use bop_clir::value::Value;
use std::collections::{HashMap, HashSet};

/// Fold instructions whose operands are compile-time constants.
///
/// Works per basic block with a forward scan: a register is "known" while
/// it provably holds a constant within the block; any other write
/// invalidates it. Folded instructions become [`Inst::Const`]; DCE cleans
/// up the now-unused inputs.
pub fn fold_constants(func: &mut Function) {
    for block in &mut func.blocks {
        let mut known: HashMap<RegId, Value> = HashMap::new();
        for inst in &mut block.insts {
            let folded: Option<Value> = match &*inst {
                Inst::Const { val, .. } => Some(*val),
                Inst::Mov { src, .. } => known.get(src).copied(),
                Inst::Bin { op, ty, a, b, .. } => match (known.get(a), known.get(b)) {
                    (Some(x), Some(y)) => eval::eval_bin(*op, *ty, *x, *y).ok(),
                    _ => None,
                },
                Inst::Un { op, ty, a, .. } => known.get(a).map(|x| eval::eval_un(*op, *ty, *x)),
                Inst::Cmp { op, ty, a, b, .. } => match (known.get(a), known.get(b)) {
                    (Some(x), Some(y)) => Some(Value::Bool(eval::eval_cmp(*op, *ty, *x, *y))),
                    _ => None,
                },
                Inst::Select { cond, a, b, .. } => match known.get(cond) {
                    Some(Value::Bool(true)) => known.get(a).copied(),
                    Some(Value::Bool(false)) => known.get(b).copied(),
                    _ => None,
                },
                Inst::Cast { a, from, to, .. } => {
                    known.get(a).map(|x| eval::eval_cast(*x, *from, *to))
                }
                // Calls, loads, queries, geps: not folded (queries vary per
                // item; calls depend on the device math library).
                _ => None,
            };
            if let Some(dst) = inst.dst() {
                match folded {
                    Some(val) if !matches!(inst, Inst::Const { .. }) => {
                        *inst = Inst::Const { dst, val };
                        known.insert(dst, val);
                    }
                    Some(val) => {
                        known.insert(dst, val);
                    }
                    None => {
                        known.remove(&dst);
                    }
                }
            }
        }
    }
}

/// Remove pure instructions whose results are never read.
///
/// "Never read" is a whole-function property (the IR is a register machine,
/// not SSA, so a register written in one block may be read in another).
/// Stores and barriers are never removed; loads are pure and removable.
pub fn eliminate_dead_code(func: &mut Function) {
    loop {
        let mut used: HashSet<RegId> = HashSet::new();
        for block in &func.blocks {
            for inst in &block.insts {
                for r in inst.sources() {
                    used.insert(r);
                }
            }
            if let Terminator::Branch { cond, .. } = &block.term {
                used.insert(*cond);
            }
        }
        let mut removed = false;
        for block in &mut func.blocks {
            let before = block.insts.len();
            block.insts.retain(|inst| match inst {
                Inst::Store { .. } | Inst::Barrier => true,
                other => match other.dst() {
                    Some(dst) => used.contains(&dst),
                    None => true,
                },
            });
            removed |= block.insts.len() != before;
        }
        if !removed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;

    fn compile_opts(src: &str, no_opt: bool) -> bop_clir::ir::Function {
        let m = compile("t.cl", src, &Options { no_opt, ..Options::default() }).expect("compiles");
        m.kernel("k").expect("kernel k").clone()
    }

    fn run_one(func: &bop_clir::ir::Function) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut wg =
            WorkGroupRun::new(func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    #[test]
    fn constant_expressions_fold_to_single_const() {
        let src = "__kernel void k(__global double* o) { o[0] = (1.0 + 2.0) * 4.0 - 2.0; }";
        let opt = compile_opts(src, false);
        let unopt = compile_opts(src, true);
        assert!(opt.inst_count() < unopt.inst_count(), "folding should shrink the kernel");
        assert_eq!(run_one(&opt), 10.0);
        assert_eq!(run_one(&unopt), 10.0);
    }

    #[test]
    fn folding_preserves_integer_semantics() {
        let src = "__kernel void k(__global double* o) { o[0] = (double)(7 / 2 + 7 % 2); }";
        assert_eq!(run_one(&compile_opts(src, false)), 4.0);
    }

    #[test]
    fn division_by_zero_not_folded_into_panic() {
        // The fold must leave the trapping instruction in place, not crash
        // the compiler.
        let src = "__kernel void k(__global double* o) { int z = 0; if (false) { int q = 1 / z; o[0] = (double)q; } o[0] = 1.0; }";
        let f = compile_opts(src, false);
        assert_eq!(run_one(&f), 1.0);
    }

    #[test]
    fn dead_code_removed_but_stores_kept() {
        let src = "__kernel void k(__global double* o) {
            double unused = exp(123.0);   // pure, dead
            o[0] = 5.0;                    // store, live
        }";
        let opt = compile_opts(src, false);
        let unopt = compile_opts(src, true);
        assert!(opt.inst_count() < unopt.inst_count());
        // exp must be gone entirely.
        let has_call =
            opt.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })));
        assert!(!has_call, "dead exp call should be eliminated");
        assert_eq!(run_one(&opt), 5.0);
    }

    #[test]
    fn loads_are_removable_but_live_loads_stay() {
        let src = "__kernel void k(__global double* o) {
            double dead = o[0];
            o[0] = 2.0;
            double live = o[0];
            o[0] = live + 1.0;
        }";
        let f = compile_opts(src, false);
        let loads = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(loads, 1, "dead load removed, live load kept");
        assert_eq!(run_one(&f), 3.0);
    }

    #[test]
    fn cross_block_liveness_respected() {
        // `x` is written in the entry block and read after the branch; DCE
        // must not remove the write.
        let src = "__kernel void k(__global double* o) {
            double x = 4.0;
            if (o[0] == 0.0) { x = x + 1.0; }
            o[0] = x;
        }";
        assert_eq!(run_one(&compile_opts(src, false)), 5.0);
    }
}

/// Local value numbering: eliminate redundant pure computations within
/// each basic block (common-subexpression elimination).
///
/// The IR is a mutable register machine, so classical CSE needs value
/// numbers: a replacement `dst = rep` is only valid while the
/// representative register still holds the value number the expression
/// produced. Loads are not eliminated (memory may change between them);
/// math builtins and work-item queries are pure and participate.
///
/// Off by default (see [`crate::Options::cse`]): the FPGA resource model
/// charges hardware per instruction, so enabling CSE changes Table-I-style
/// resource estimates — the ablation benches quantify by how much.
pub fn common_subexpression_elimination(func: &mut Function) {
    use bop_clir::ir::{Builtin, CmpOp, UnOp, WiQuery};
    use bop_clir::types::ScalarType;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Key {
        Const(u64, ScalarType),
        Bin(bop_clir::ir::BinOp, ScalarType, u32, u32),
        Un(UnOp, ScalarType, u32),
        Cmp(CmpOp, ScalarType, u32, u32),
        Select(ScalarType, u32, u32, u32),
        Cast(ScalarType, ScalarType, u32),
        Call(Builtin, ScalarType, Vec<u32>),
        WorkItem(WiQuery, u8),
        Gep(ScalarType, u32, u32),
    }

    for block in &mut func.blocks {
        let mut next_vn: u32 = 0;
        let mut vn_of: HashMap<RegId, u32> = HashMap::new();
        let mut table: HashMap<Key, (u32, RegId)> = HashMap::new();

        fn vn(vn_of: &mut HashMap<RegId, u32>, next_vn: &mut u32, r: RegId) -> u32 {
            *vn_of.entry(r).or_insert_with(|| {
                *next_vn += 1;
                *next_vn
            })
        }

        for inst in &mut block.insts {
            let key = match &*inst {
                Inst::Const { val, .. } => val.scalar_type().map(|ty| {
                    let bits = match val {
                        Value::Bool(b) => *b as u64,
                        Value::I32(x) => *x as u32 as u64,
                        Value::I64(x) => *x as u64,
                        Value::F32(x) => x.to_bits() as u64,
                        Value::F64(x) => x.to_bits(),
                        Value::Ptr(_) => unreachable!("filtered by scalar_type"),
                    };
                    Key::Const(bits, ty)
                }),
                Inst::Bin { op, ty, a, b, .. } => {
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Bin(*op, *ty, va, vb))
                }
                Inst::Un { op, ty, a, .. } => {
                    Some(Key::Un(*op, *ty, vn(&mut vn_of, &mut next_vn, *a)))
                }
                Inst::Cmp { op, ty, a, b, .. } => {
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Cmp(*op, *ty, va, vb))
                }
                Inst::Select { ty, cond, a, b, .. } => {
                    let vc = vn(&mut vn_of, &mut next_vn, *cond);
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Select(*ty, vc, va, vb))
                }
                Inst::Cast { a, from, to, .. } => {
                    Some(Key::Cast(*from, *to, vn(&mut vn_of, &mut next_vn, *a)))
                }
                Inst::Call { func: f, ty, args, .. } => {
                    let vargs = args.iter().map(|r| vn(&mut vn_of, &mut next_vn, *r)).collect();
                    Some(Key::Call(*f, *ty, vargs))
                }
                Inst::WorkItem { query, dim, .. } => Some(Key::WorkItem(*query, *dim)),
                Inst::Gep { base, index, elem, .. } => {
                    let (vb, vi) =
                        (vn(&mut vn_of, &mut next_vn, *base), vn(&mut vn_of, &mut next_vn, *index));
                    Some(Key::Gep(*elem, vb, vi))
                }
                // Loads, stores, movs and barriers are not value-numbered
                // expressions.
                Inst::Load { .. } | Inst::Store { .. } | Inst::Mov { .. } | Inst::Barrier => None,
            };

            match (key, inst.dst()) {
                (Some(key), Some(dst)) => {
                    if let Some(&(expr_vn, rep)) = table.get(&key) {
                        if rep != dst && vn_of.get(&rep) == Some(&expr_vn) {
                            // The representative still holds this value.
                            *inst = Inst::Mov { dst, src: rep };
                            vn_of.insert(dst, expr_vn);
                            continue;
                        }
                    }
                    next_vn += 1;
                    table.insert(key, (next_vn, dst));
                    vn_of.insert(dst, next_vn);
                }
                (None, Some(dst)) => {
                    // Unknown value (load, mov): give the destination a
                    // fresh number, invalidating stale representatives.
                    match inst {
                        Inst::Mov { src, .. } => {
                            let v = vn(&mut vn_of, &mut next_vn, *src);
                            vn_of.insert(dst, v);
                        }
                        _ => {
                            next_vn += 1;
                            vn_of.insert(dst, next_vn);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod cse_tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;
    use bop_clir::value::Value as V;

    fn compile_cse(src: &str, cse: bool) -> bop_clir::ir::Function {
        let m = compile("t.cl", src, &Options { cse, ..Options::default() }).expect("compiles");
        m.kernel("k").expect("kernel k").clone()
    }

    fn run_xy(func: &bop_clir::ir::Function, x: f64, y: f64) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16);
        let mut wg = WorkGroupRun::new(
            func,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(x)),
                KernelArgValue::Scalar(V::F64(y)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    const REDUNDANT: &str = "__kernel void k(__global double* o, double x, double y) {
        o[0] = (x * y + 1.0) + (x * y + 1.0) + exp(x) * exp(x);
    }";

    #[test]
    fn cse_removes_duplicate_expressions() {
        let plain = compile_cse(REDUNDANT, false);
        let cse = compile_cse(REDUNDANT, true);
        let count = |f: &bop_clir::ir::Function, pred: &dyn Fn(&Inst) -> bool| {
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(i)).count()
        };
        let muls = |f: &bop_clir::ir::Function| {
            count(
                f,
                &|i| matches!(i, Inst::Bin { op: bop_clir::ir::BinOp::Mul, ty, .. } if ty.is_float()),
            )
        };
        let exps = |f: &bop_clir::ir::Function| count(f, &|i| matches!(i, Inst::Call { .. }));
        assert_eq!(muls(&plain), 3, "x*y twice + exp*exp");
        assert_eq!(muls(&cse), 2, "one x*y eliminated");
        assert_eq!(exps(&plain), 2);
        assert_eq!(exps(&cse), 1, "pure exp() deduplicated");
        // Semantics unchanged.
        for (x, y) in [(0.5, 2.0), (-1.5, 3.0), (0.0, 0.0)] {
            assert_eq!(run_xy(&plain, x, y).to_bits(), run_xy(&cse, x, y).to_bits());
        }
    }

    #[test]
    fn cse_respects_mutation_between_uses() {
        // `a` changes between the two uses of `a * 2.0`: must NOT merge.
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = x;
            double first = a * 2.0;
            a = a + y;
            double second = a * 2.0;
            o[0] = first + second;
        }";
        let plain = compile_cse(src, false);
        let cse = compile_cse(src, true);
        for (x, y) in [(1.0, 2.0), (3.0, -1.0)] {
            let want = x * 2.0 + (x + y) * 2.0;
            assert_eq!(run_xy(&plain, x, y), want);
            assert_eq!(run_xy(&cse, x, y), want, "CSE must respect redefinition");
        }
    }

    #[test]
    fn cse_does_not_merge_loads_across_stores() {
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = o[1];
            o[1] = a + x;
            double b = o[1];
            o[0] = a + b;
        }";
        let cse = compile_cse(src, true);
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16);
        mem.write_f64(buf, 1, 10.0);
        let mut wg = WorkGroupRun::new(
            &cse,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(5.0)),
                KernelArgValue::Scalar(V::F64(0.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 10.0 + 15.0, "second load must see the store");
    }

    #[test]
    fn cse_shrinks_the_straightforward_kernel() {
        // The paper kernel recomputes `t * 5` for each parameter load; CSE
        // should shrink it measurably (the ablation benches quantify the
        // resource effect).
        let src = include_str!("../../core/kernels/straightforward.cl").replace("REAL", "double");
        let m_plain = compile("k.cl", &src, &Options::default()).expect("compiles");
        let m_cse =
            compile("k.cl", &src, &Options { cse: true, ..Options::default() }).expect("compiles");
        let plain = m_plain.kernel("binomial_node").expect("k").inst_count();
        let cse = m_cse.kernel("binomial_node").expect("k").inst_count();
        assert!(cse < plain, "CSE should shrink the kernel: {cse} vs {plain}");
    }
}

/// Copy propagation: rewrite uses of `Mov` destinations to read the
/// original register while the copy is still valid, so DCE can remove the
/// `Mov` itself. Runs after CSE (which introduces the copies).
pub fn propagate_copies(func: &mut Function) {
    for block in &mut func.blocks {
        // dst -> original source (fully resolved through chains).
        let mut copy_of: HashMap<RegId, RegId> = HashMap::new();
        for i in 0..block.insts.len() {
            // Rewrite sources first (uses see the state before this inst).
            let resolve =
                |copy_of: &HashMap<RegId, RegId>, r: RegId| copy_of.get(&r).copied().unwrap_or(r);
            let inst = &mut block.insts[i];
            match inst {
                Inst::Mov { src, .. } => *src = resolve(&copy_of, *src),
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    *a = resolve(&copy_of, *a);
                    *b = resolve(&copy_of, *b);
                }
                Inst::Un { a, .. } => *a = resolve(&copy_of, *a),
                Inst::Select { cond, a, b, .. } => {
                    *cond = resolve(&copy_of, *cond);
                    *a = resolve(&copy_of, *a);
                    *b = resolve(&copy_of, *b);
                }
                Inst::Cast { a, .. } => *a = resolve(&copy_of, *a),
                Inst::Call { args, .. } => {
                    for r in args.iter_mut() {
                        *r = resolve(&copy_of, *r);
                    }
                }
                Inst::Gep { base, index, .. } => {
                    *base = resolve(&copy_of, *base);
                    *index = resolve(&copy_of, *index);
                }
                Inst::Load { ptr, .. } => *ptr = resolve(&copy_of, *ptr),
                Inst::Store { ptr, val, .. } => {
                    *ptr = resolve(&copy_of, *ptr);
                    *val = resolve(&copy_of, *val);
                }
                Inst::Const { .. } | Inst::WorkItem { .. } | Inst::Barrier => {}
            }
            // Then update the copy map with this instruction's effect.
            if let Some(dst) = block.insts[i].dst() {
                // Any write invalidates copies *of* dst and copies *from*
                // dst (its old value is gone).
                copy_of.remove(&dst);
                copy_of.retain(|_, src| *src != dst);
                if let Inst::Mov { dst, src } = &block.insts[i] {
                    if dst != src {
                        copy_of.insert(*dst, *src);
                    }
                }
            }
        }
        // Rewrite the terminator condition too.
        if let Terminator::Branch { cond, .. } = &mut block.term {
            if let Some(src) = copy_of.get(cond) {
                *cond = *src;
            }
        }
    }
}

#[cfg(test)]
mod copy_prop_tests {
    use super::*;
    use crate::{compile, Options};
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;
    use bop_clir::value::Value as V;

    const REDUNDANT: &str = "__kernel void k(__global double* o, double x, double y) {
        o[0] = (x * y) + (x * y) * (x * y);
    }";

    fn movs(f: &bop_clir::ir::Function) -> usize {
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Mov { .. })).count()
    }

    #[test]
    fn copy_propagation_lets_dce_remove_cse_movs() {
        let m = compile("t.cl", REDUNDANT, &Options { cse: true, ..Options::default() })
            .expect("compiles");
        let f = m.kernel("k").expect("k");
        // With CSE + copy propagation + DCE, the duplicated x*y collapses
        // to one Mul and no surviving copies of it.
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: bop_clir::ir::BinOp::Mul, ty, .. } if ty.is_float()))
            .count();
        assert_eq!(muls, 2, "x*y shared; one product multiply remains");
        assert!(movs(f) <= 1, "copies should be propagated away: {}", movs(f));
        // Semantics check.
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut wg = WorkGroupRun::new(
            f,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(3.0)),
                KernelArgValue::Scalar(V::F64(2.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 6.0 + 36.0);
    }

    #[test]
    fn copies_invalidated_by_redefinition() {
        // `b = a; a = a + 1; o[0] = b;` — b must read the OLD a.
        let src = "__kernel void k(__global double* o, double x, double y) {
            double a = x;
            double b = a;
            a = a + 1.0;
            o[0] = b + a;
        }";
        let m =
            compile("t.cl", src, &Options { cse: true, ..Options::default() }).expect("compiles");
        let f = m.kernel("k").expect("k");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut wg = WorkGroupRun::new(
            f,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(V::F64(5.0)),
                KernelArgValue::Scalar(V::F64(0.0)),
            ],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        assert_eq!(mem.read_f64(buf, 0), 5.0 + 6.0);
    }
}
