//! Typed lowering from the AST to `bop-clir` IR.
//!
//! This stage does semantic analysis (scopes, types, implicit conversions,
//! lvalue checking) and code generation in one walk. Loops annotated with
//! `#pragma unroll N` are unrolled here by duplicating the body `N` times
//! with a guard branch between copies — the transformation Altera's
//! compiler applies when building deeper pipelines, and the one behind the
//! paper's kernel IV.B configuration (unroll 2 x vectorization 4).

use crate::ast::*;
use crate::diag::{CompileError, Pos};
use crate::Options;
use bop_clir::builder::FunctionBuilder;
use bop_clir::ir::{BinOp, BlockId, Builtin, CmpOp, Module, RegId, UnOp, WiQuery};
use bop_clir::types::{AddressSpace, ScalarType, Type};
use std::collections::HashMap;

/// Lower a parsed [`Unit`] to an IR [`Module`].
///
/// # Errors
/// Returns the first semantic error encountered (unknown names, type
/// errors, unsupported constructs).
pub fn lower_unit(
    source_name: &str,
    unit: &Unit,
    options: &Options,
) -> Result<Module, CompileError> {
    let mut functions = Vec::with_capacity(unit.functions.len());
    for f in &unit.functions {
        functions.push(lower_function(f, options)?);
    }
    Ok(Module::from_functions(source_name, functions))
}

fn lower_function(
    def: &FunctionDef,
    options: &Options,
) -> Result<bop_clir::ir::Function, CompileError> {
    if !def.is_kernel {
        return Err(CompileError::single(
            def.pos,
            format!("function `{}`: only __kernel functions are supported (no helpers)", def.name),
        ));
    }
    if def.ret != CType::Void {
        return Err(CompileError::single(
            def.pos,
            format!("kernel `{}` must return void", def.name),
        ));
    }
    let mut lw = Lowerer {
        b: FunctionBuilder::new(&def.name, true),
        scopes: vec![HashMap::new()],
        loops: Vec::new(),
        options: options.clone(),
    };
    for p in &def.params {
        lw.bind_param(p)?;
    }
    for stmt in &def.body {
        lw.stmt(stmt)?;
    }
    if !lw.b.current_terminated() {
        lw.b.ret();
    }
    lw.b.finish().map_err(|e| {
        CompileError::single(def.pos, format!("internal error while lowering `{}`: {e}", def.name))
    })
}

/// A value produced by expression lowering: a register plus its scalar type.
#[derive(Debug, Clone, Copy)]
struct Typed {
    reg: RegId,
    ty: ScalarType,
}

/// What a name is bound to.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// A scalar variable living in a register.
    Scalar { reg: RegId, ty: ScalarType },
    /// A pointer parameter.
    Ptr { reg: RegId, elem: ScalarType },
    /// A pipe parameter (on-chip FIFO endpoint); only `read_pipe` /
    /// `write_pipe` can touch it.
    Pipe { reg: RegId, elem: ScalarType },
    /// A private fixed-size array.
    PrivArray { base: RegId, elem: ScalarType, len: usize },
}

/// An assignable place.
#[derive(Debug, Clone, Copy)]
enum Place {
    Reg { reg: RegId, ty: ScalarType },
    Mem { ptr: RegId, ty: ScalarType },
}

impl Place {
    fn ty(&self) -> ScalarType {
        match self {
            Place::Reg { ty, .. } | Place::Mem { ty, .. } => *ty,
        }
    }
}

struct LoopCtx {
    break_bb: BlockId,
    continue_bb: BlockId,
}

struct Lowerer {
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<LoopCtx>,
    options: Options,
}

fn scalar_of(ty: CType) -> ScalarType {
    match ty {
        CType::Bool => ScalarType::Bool,
        CType::Int | CType::Uint => ScalarType::I32,
        CType::Long | CType::Ulong | CType::SizeT => ScalarType::I64,
        CType::Float => ScalarType::F32,
        CType::Double => ScalarType::F64,
        CType::Void => unreachable!("void has no scalar type"),
    }
}

fn rank(ty: ScalarType) -> u8 {
    match ty {
        ScalarType::Bool => 0,
        ScalarType::I32 => 1,
        ScalarType::I64 => 2,
        ScalarType::F32 => 3,
        ScalarType::F64 => 4,
    }
}

/// The usual arithmetic conversions, simplified: promote to the higher
/// rank, with `int` as the minimum arithmetic type.
fn common_type(a: ScalarType, b: ScalarType) -> ScalarType {
    let hi = if rank(a) >= rank(b) { a } else { b };
    if rank(hi) < rank(ScalarType::I32) {
        ScalarType::I32
    } else {
        hi
    }
}

impl Lowerer {
    fn err(&self, pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError::single(pos, msg)
    }

    fn bind_param(&mut self, p: &ParamDecl) -> Result<(), CompileError> {
        if p.base == CType::Void {
            return Err(self.err(p.pos, format!("parameter `{}` cannot be void", p.name)));
        }
        let elem = scalar_of(p.base);
        let binding = if p.is_pipe {
            let reg = self.b.param(&p.name, Type::ptr(AddressSpace::Pipe, elem));
            Binding::Pipe { reg, elem }
        } else if p.is_ptr {
            let space = p.space.unwrap_or(AddressSpace::Private);
            if space == AddressSpace::Private {
                return Err(self.err(
                    p.pos,
                    format!(
                        "pointer parameter `{}` needs an address-space qualifier (__global/__local/__constant)",
                        p.name
                    ),
                ));
            }
            let reg = self.b.param(&p.name, Type::ptr(space, elem));
            Binding::Ptr { reg, elem }
        } else {
            if p.space.is_some() {
                return Err(self.err(
                    p.pos,
                    format!("scalar parameter `{}` cannot have an address-space qualifier", p.name),
                ));
            }
            let reg = self.b.param(&p.name, Type::Scalar(elem));
            Binding::Scalar { reg, ty: elem }
        };
        self.declare(&p.name, binding, p.pos)
    }

    fn declare(&mut self, name: &str, binding: Binding, pos: Pos) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_owned(), binding).is_some() {
            return Err(CompileError::single(
                pos,
                format!("`{name}` is already defined in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(*b);
            }
        }
        Err(self.err(pos, format!("unknown identifier `{name}`")))
    }

    // ---- conversions -------------------------------------------------------

    fn convert(&mut self, v: Typed, to: ScalarType) -> Typed {
        if v.ty == to {
            return v;
        }
        if v.ty == ScalarType::Bool {
            // bool -> number via cast (false=0, true=1).
            let reg = self.b.cast(v.reg, ScalarType::Bool, to);
            return Typed { reg, ty: to };
        }
        if to == ScalarType::Bool {
            // number -> bool is a != 0 comparison.
            let zero = self.zero(v.ty);
            let reg = self.b.cmp(CmpOp::Ne, v.ty, v.reg, zero);
            return Typed { reg, ty: ScalarType::Bool };
        }
        let reg = self.b.cast(v.reg, v.ty, to);
        Typed { reg, ty: to }
    }

    fn zero(&mut self, ty: ScalarType) -> RegId {
        match ty {
            ScalarType::Bool => self.b.const_bool(false),
            ScalarType::I32 => self.b.const_i32(0),
            ScalarType::I64 => self.b.const_i64(0),
            ScalarType::F32 => self.b.const_f32(0.0),
            ScalarType::F64 => self.b.const_f64(0.0),
        }
    }

    fn one(&mut self, ty: ScalarType) -> RegId {
        match ty {
            ScalarType::Bool => self.b.const_bool(true),
            ScalarType::I32 => self.b.const_i32(1),
            ScalarType::I64 => self.b.const_i64(1),
            ScalarType::F32 => self.b.const_f32(1.0),
            ScalarType::F64 => self.b.const_f64(1.0),
        }
    }

    fn bool_reg(&mut self, v: Typed) -> RegId {
        self.convert(v, ScalarType::Bool).reg
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        if self.b.current_terminated() {
            // Unreachable code after return/break/continue: park it in a
            // fresh dead block so lowering stays well-formed.
            let dead = self.b.create_block();
            self.b.switch_to(dead);
        }
        match &s.kind {
            StmtKind::Empty => Ok(()),
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for st in stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Decl { ty, items } => self.decl(*ty, items),
            StmtKind::Expr(e) => {
                self.expr_opt(e)?;
                Ok(())
            }
            StmtKind::Return(value) => {
                if value.is_some() {
                    return Err(self.err(s.pos, "kernels return void; `return <expr>` is invalid"));
                }
                self.b.ret();
                Ok(())
            }
            StmtKind::Break => {
                let Some(ctx) = self.loops.last() else {
                    return Err(self.err(s.pos, "`break` outside of a loop"));
                };
                let target = ctx.break_bb;
                self.b.jump(target);
                Ok(())
            }
            StmtKind::Continue => {
                let Some(ctx) = self.loops.last() else {
                    return Err(self.err(s.pos, "`continue` outside of a loop"));
                };
                let target = ctx.continue_bb;
                self.b.jump(target);
                Ok(())
            }
            StmtKind::If { cond, then, els } => self.if_stmt(cond, then, els.as_deref()),
            StmtKind::While { cond, body } => self.while_stmt(cond, body),
            StmtKind::DoWhile { body, cond } => self.do_while_stmt(body, cond),
            StmtKind::For { init, cond, step, body, unroll } => {
                self.for_stmt(s.pos, init.as_deref(), cond.as_ref(), step.as_ref(), body, *unroll)
            }
        }
    }

    fn decl(&mut self, ty: CType, items: &[DeclItem]) -> Result<(), CompileError> {
        if ty == CType::Void {
            return Err(self.err(items[0].pos, "cannot declare void variables"));
        }
        let elem = scalar_of(ty);
        for item in items {
            if let Some(len) = item.array {
                let base = self.b.alloc_private(len * elem.size_bytes(), elem);
                self.declare(&item.name, Binding::PrivArray { base, elem, len }, item.pos)?;
            } else {
                let reg = self.b.fresh(Type::Scalar(elem));
                self.declare(&item.name, Binding::Scalar { reg, ty: elem }, item.pos)?;
                if let Some(init) = &item.init {
                    let v = self.expr(init)?;
                    let v = self.convert(v, elem);
                    self.b.mov_into(reg, v.reg);
                } else {
                    // Deterministic zero-initialisation (stricter than C,
                    // kinder than UB).
                    let z = self.zero(elem);
                    self.b.mov_into(reg, z);
                }
            }
        }
        Ok(())
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then: &Stmt,
        els: Option<&Stmt>,
    ) -> Result<(), CompileError> {
        let c = self.expr(cond)?;
        let c = self.bool_reg(Typed { reg: c.reg, ty: c.ty });
        let then_bb = self.b.create_block();
        let join_bb = self.b.create_block();
        let else_bb = if els.is_some() { self.b.create_block() } else { join_bb };
        self.b.branch(c, then_bb, else_bb);
        self.b.switch_to(then_bb);
        self.stmt(then)?;
        if !self.b.current_terminated() {
            self.b.jump(join_bb);
        }
        if let Some(e) = els {
            self.b.switch_to(else_bb);
            self.stmt(e)?;
            if !self.b.current_terminated() {
                self.b.jump(join_bb);
            }
        }
        self.b.switch_to(join_bb);
        Ok(())
    }

    fn while_stmt(&mut self, cond: &Expr, body: &Stmt) -> Result<(), CompileError> {
        let header = self.b.create_block();
        let body_bb = self.b.create_block();
        let exit = self.b.create_block();
        self.b.jump(header);
        self.b.switch_to(header);
        let c = self.expr(cond)?;
        let c = self.bool_reg(c);
        self.b.branch(c, body_bb, exit);
        self.b.switch_to(body_bb);
        self.loops.push(LoopCtx { break_bb: exit, continue_bb: header });
        self.stmt(body)?;
        self.loops.pop();
        if !self.b.current_terminated() {
            self.b.jump(header);
        }
        self.b.switch_to(exit);
        Ok(())
    }

    fn do_while_stmt(&mut self, body: &Stmt, cond: &Expr) -> Result<(), CompileError> {
        let body_bb = self.b.create_block();
        let check_bb = self.b.create_block();
        let exit = self.b.create_block();
        self.b.jump(body_bb);
        self.b.switch_to(body_bb);
        self.loops.push(LoopCtx { break_bb: exit, continue_bb: check_bb });
        self.stmt(body)?;
        self.loops.pop();
        if !self.b.current_terminated() {
            self.b.jump(check_bb);
        }
        self.b.switch_to(check_bb);
        let c = self.expr(cond)?;
        let c = self.bool_reg(c);
        self.b.branch(c, body_bb, exit);
        self.b.switch_to(exit);
        Ok(())
    }

    fn for_stmt(
        &mut self,
        pos: Pos,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Stmt,
        unroll: Option<Option<u32>>,
    ) -> Result<(), CompileError> {
        let factor = match unroll {
            None => 1,
            Some(explicit) => match (self.options.unroll_override, explicit) {
                (Some(k), _) => k.max(1),
                (None, Some(k)) => k,
                (None, None) => {
                    return Err(self.err(
                        pos,
                        "#pragma unroll without a factor requires Options::unroll_override",
                    ))
                }
            },
        };

        // The init clause scopes its declarations over the whole loop.
        self.scopes.push(HashMap::new());
        if let Some(init) = init {
            self.stmt(init)?;
        }
        let header = self.b.create_block();
        let exit = self.b.create_block();
        self.b.jump(header);
        self.b.switch_to(header);
        if let Some(c) = cond {
            let body_bb = self.b.create_block();
            let v = self.expr(c)?;
            let v = self.bool_reg(v);
            self.b.branch(v, body_bb, exit);
            self.b.switch_to(body_bb);
        }
        // Unrolled copies: body_i ; step_i ; (cond check unless last copy).
        for copy in 0..factor {
            let step_bb = self.b.create_block();
            self.loops.push(LoopCtx { break_bb: exit, continue_bb: step_bb });
            self.scopes.push(HashMap::new());
            self.stmt(body)?;
            self.scopes.pop();
            self.loops.pop();
            if !self.b.current_terminated() {
                self.b.jump(step_bb);
            }
            self.b.switch_to(step_bb);
            if let Some(st) = step {
                self.expr_opt(st)?;
            }
            let last = copy == factor - 1;
            if last {
                self.b.jump(header);
            } else if let Some(c) = cond {
                let next_bb = self.b.create_block();
                let v = self.expr(c)?;
                let v = self.bool_reg(v);
                self.b.branch(v, next_bb, exit);
                self.b.switch_to(next_bb);
            }
        }
        self.b.switch_to(exit);
        self.scopes.pop();
        Ok(())
    }

    // ---- expressions --------------------------------------------------------

    /// Lower an expression that may be void (a `barrier(...)` or
    /// `write_pipe(...)` call).
    fn expr_opt(&mut self, e: &Expr) -> Result<Option<Typed>, CompileError> {
        if let ExprKind::Call { name, args } = &e.kind {
            if name == "barrier" || name == "mem_fence" {
                self.b.barrier();
                return Ok(None);
            }
            if name == "write_pipe" {
                self.write_pipe(e.pos, args)?;
                return Ok(None);
            }
        }
        self.expr(e).map(Some)
    }

    /// Lower a `write_pipe(p, v)` statement: a blocking push of `v` into
    /// the FIFO bound to pipe parameter `p`.
    fn write_pipe(&mut self, pos: Pos, args: &[Expr]) -> Result<(), CompileError> {
        let [p, v] = args else {
            return Err(self.err(pos, "write_pipe takes two arguments: write_pipe(pipe, value)"));
        };
        let (reg, elem) = self.pipe_arg(p)?;
        let val = self.expr(v)?;
        let val = self.convert(val, elem);
        self.b.pipe_write(reg, val.reg, elem);
        Ok(())
    }

    /// Resolve a builtin argument that must name a pipe parameter.
    fn pipe_arg(&mut self, e: &Expr) -> Result<(RegId, ScalarType), CompileError> {
        let ExprKind::Ident(name) = &e.kind else {
            return Err(self.err(e.pos, "the pipe argument must name a pipe parameter"));
        };
        match self.lookup(name, e.pos)? {
            Binding::Pipe { reg, elem } => Ok((reg, elem)),
            _ => Err(self.err(e.pos, format!("`{name}` is not a pipe parameter"))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Typed, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                if i32::try_from(*v).is_ok() {
                    Ok(Typed { reg: self.b.const_i32(*v as i32), ty: ScalarType::I32 })
                } else {
                    Ok(Typed { reg: self.b.const_i64(*v), ty: ScalarType::I64 })
                }
            }
            ExprKind::FloatLit(v, true) => {
                Ok(Typed { reg: self.b.const_f32(*v as f32), ty: ScalarType::F32 })
            }
            ExprKind::FloatLit(v, false) => {
                Ok(Typed { reg: self.b.const_f64(*v), ty: ScalarType::F64 })
            }
            ExprKind::BoolLit(v) => Ok(Typed { reg: self.b.const_bool(*v), ty: ScalarType::Bool }),
            ExprKind::Ident(name) => match self.lookup(name, e.pos)? {
                Binding::Scalar { reg, ty } => Ok(Typed { reg, ty }),
                Binding::Ptr { .. } | Binding::PrivArray { .. } => Err(self.err(
                    e.pos,
                    format!(
                        "`{name}` is a pointer/array; only indexing (`{name}[i]`) is supported"
                    ),
                )),
                Binding::Pipe { .. } => Err(self.err(
                    e.pos,
                    format!("`{name}` is a pipe; use read_pipe({name}) or write_pipe({name}, v)"),
                )),
            },
            ExprKind::Unary { op, expr } => self.unary(e.pos, *op, expr),
            ExprKind::Binary { op, lhs, rhs } => self.binary(e.pos, *op, lhs, rhs),
            ExprKind::Assign { op, lhs, rhs } => self.assign(e.pos, *op, lhs, rhs),
            ExprKind::Ternary { cond, then, els } => self.ternary(cond, then, els),
            ExprKind::Call { name, args } => self.call(e.pos, name, args),
            ExprKind::Index { .. } => {
                let place = self.lvalue(e)?;
                let Place::Mem { ptr, ty } = place else {
                    unreachable!("index lvalue is always a memory place")
                };
                Ok(Typed { reg: self.b.load(ptr, ty), ty })
            }
            ExprKind::Cast { ty, expr } => {
                if *ty == CType::Void {
                    return Err(self.err(e.pos, "cannot cast to void"));
                }
                let v = self.expr(expr)?;
                Ok(self.convert(v, scalar_of(*ty)))
            }
            ExprKind::PostIncDec { expr, inc } => self.inc_dec(expr, *inc, false),
            ExprKind::PreIncDec { expr, inc } => self.inc_dec(expr, *inc, true),
        }
    }

    fn inc_dec(&mut self, target: &Expr, inc: bool, pre: bool) -> Result<Typed, CompileError> {
        let place = self.lvalue(target)?;
        let ty = place.ty();
        if ty == ScalarType::Bool {
            return Err(self.err(target.pos, "cannot increment a bool"));
        }
        let old = self.read_place(place);
        // Snapshot the old value: for a register place, `old` aliases the
        // variable itself and would observe the write below.
        let snapshot = self.b.fresh(Type::Scalar(ty));
        self.b.mov_into(snapshot, old);
        let one = self.one(ty);
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        let new = self.b.bin(op, ty, snapshot, one);
        self.write_place(place, new);
        Ok(Typed { reg: if pre { new } else { snapshot }, ty })
    }

    fn unary(&mut self, pos: Pos, op: UnaryOp, operand: &Expr) -> Result<Typed, CompileError> {
        let v = self.expr(operand)?;
        match op {
            UnaryOp::Plus => Ok(v),
            UnaryOp::Neg => {
                let ty = if rank(v.ty) < rank(ScalarType::I32) { ScalarType::I32 } else { v.ty };
                let v = self.convert(v, ty);
                Ok(Typed { reg: self.b.un(UnOp::Neg, ty, v.reg), ty })
            }
            UnaryOp::Not => {
                let b = self.bool_reg(v);
                Ok(Typed { reg: self.b.un(UnOp::Not, ScalarType::Bool, b), ty: ScalarType::Bool })
            }
            UnaryOp::BitNot => {
                if !v.ty.is_int() {
                    return Err(self.err(pos, "`~` requires an integer operand"));
                }
                Ok(Typed { reg: self.b.un(UnOp::Not, v.ty, v.reg), ty: v.ty })
            }
        }
    }

    fn binary(
        &mut self,
        pos: Pos,
        op: BinaryOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Typed, CompileError> {
        if op.is_logical() {
            return self.logical(op, lhs, rhs);
        }
        let a = self.expr(lhs)?;
        let b = self.expr(rhs)?;
        let ty = common_type(a.ty, b.ty);
        let a = self.convert(a, ty);
        let b = self.convert(b, ty);
        if op.is_comparison() {
            let cmp = match op {
                BinaryOp::Lt => CmpOp::Lt,
                BinaryOp::Le => CmpOp::Le,
                BinaryOp::Gt => CmpOp::Gt,
                BinaryOp::Ge => CmpOp::Ge,
                BinaryOp::Eq => CmpOp::Eq,
                BinaryOp::Ne => CmpOp::Ne,
                _ => unreachable!(),
            };
            return Ok(Typed { reg: self.b.cmp(cmp, ty, a.reg, b.reg), ty: ScalarType::Bool });
        }
        let bin = match op {
            BinaryOp::Add => BinOp::Add,
            BinaryOp::Sub => BinOp::Sub,
            BinaryOp::Mul => BinOp::Mul,
            BinaryOp::Div => BinOp::Div,
            BinaryOp::Rem => BinOp::Rem,
            BinaryOp::Shl => BinOp::Shl,
            BinaryOp::Shr => BinOp::Shr,
            BinaryOp::BitAnd => BinOp::And,
            BinaryOp::BitXor => BinOp::Xor,
            BinaryOp::BitOr => BinOp::Or,
            _ => unreachable!(),
        };
        if matches!(bin, BinOp::Shl | BinOp::Shr | BinOp::And | BinOp::Or | BinOp::Xor)
            && !ty.is_int()
        {
            return Err(self.err(pos, format!("`{}` requires integer operands", op.spelling())));
        }
        Ok(Typed { reg: self.b.bin(bin, ty, a.reg, b.reg), ty })
    }

    /// Short-circuit `&&` / `||`.
    fn logical(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> Result<Typed, CompileError> {
        let a = self.expr(lhs)?;
        let a = self.bool_reg(a);
        let result = self.b.fresh(Type::Scalar(ScalarType::Bool));
        self.b.mov_into(result, a);
        let rhs_bb = self.b.create_block();
        let done_bb = self.b.create_block();
        match op {
            BinaryOp::LogAnd => self.b.branch(a, rhs_bb, done_bb),
            BinaryOp::LogOr => self.b.branch(a, done_bb, rhs_bb),
            _ => unreachable!(),
        }
        self.b.switch_to(rhs_bb);
        let b = self.expr(rhs)?;
        let b = self.bool_reg(b);
        self.b.mov_into(result, b);
        self.b.jump(done_bb);
        self.b.switch_to(done_bb);
        Ok(Typed { reg: result, ty: ScalarType::Bool })
    }

    fn ternary(&mut self, cond: &Expr, then: &Expr, els: &Expr) -> Result<Typed, CompileError> {
        let c = self.expr(cond)?;
        let c = self.bool_reg(c);
        let then_bb = self.b.create_block();
        let else_bb = self.b.create_block();
        let done_bb = self.b.create_block();
        self.b.branch(c, then_bb, else_bb);

        // Lower the THEN arm first to learn the types involved; the common
        // type is known only after both arms, so lower into temporaries and
        // convert at the joins.
        self.b.switch_to(then_bb);
        let tv = self.expr(then)?;
        let then_end = self.b.current_block();
        self.b.switch_to(else_bb);
        let ev = self.expr(els)?;
        let else_end = self.b.current_block();

        let ty = common_type(tv.ty, ev.ty);
        let result = self.b.fresh(Type::Scalar(ty));
        self.b.switch_to(then_end);
        let tv = self.convert(tv, ty);
        self.b.mov_into(result, tv.reg);
        self.b.jump(done_bb);
        self.b.switch_to(else_end);
        let ev = self.convert(ev, ty);
        self.b.mov_into(result, ev.reg);
        self.b.jump(done_bb);
        self.b.switch_to(done_bb);
        Ok(Typed { reg: result, ty })
    }

    fn assign(
        &mut self,
        _pos: Pos,
        op: AssignOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Typed, CompileError> {
        let place = self.lvalue(lhs)?;
        let ty = place.ty();
        let value = match op.binary() {
            None => {
                let v = self.expr(rhs)?;
                self.convert(v, ty)
            }
            Some(binop) => {
                let cur = self.read_place(place);
                let r = self.expr(rhs)?;
                let cty = common_type(ty, r.ty);
                let a = self.convert(Typed { reg: cur, ty }, cty);
                let b = self.convert(r, cty);
                let bin = match binop {
                    BinaryOp::Add => BinOp::Add,
                    BinaryOp::Sub => BinOp::Sub,
                    BinaryOp::Mul => BinOp::Mul,
                    BinaryOp::Div => BinOp::Div,
                    BinaryOp::Rem => BinOp::Rem,
                    _ => unreachable!("compound assign ops are arithmetic"),
                };
                let out = self.b.bin(bin, cty, a.reg, b.reg);
                self.convert(Typed { reg: out, ty: cty }, ty)
            }
        };
        self.write_place(place, value.reg);
        Ok(Typed { reg: value.reg, ty })
    }

    fn read_place(&mut self, place: Place) -> RegId {
        match place {
            Place::Reg { reg, .. } => reg,
            Place::Mem { ptr, ty } => self.b.load(ptr, ty),
        }
    }

    fn write_place(&mut self, place: Place, value: RegId) {
        match place {
            Place::Reg { reg, .. } => self.b.mov_into(reg, value),
            Place::Mem { ptr, ty } => self.b.store(ptr, value, ty),
        }
    }

    fn lvalue(&mut self, e: &Expr) -> Result<Place, CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name, e.pos)? {
                Binding::Scalar { reg, ty } => Ok(Place::Reg { reg, ty }),
                Binding::Ptr { .. } | Binding::PrivArray { .. } => {
                    Err(self.err(e.pos, format!("cannot assign to pointer/array `{name}` itself")))
                }
                Binding::Pipe { .. } => {
                    Err(self.err(e.pos, format!("cannot assign to pipe `{name}`; use write_pipe")))
                }
            },
            ExprKind::Index { base, index } => {
                let ExprKind::Ident(name) = &base.kind else {
                    return Err(self.err(base.pos, "only named pointers/arrays can be indexed"));
                };
                let idx = self.expr(index)?;
                if !idx.ty.is_int() {
                    return Err(self.err(index.pos, "array index must be an integer"));
                }
                match self.lookup(name, base.pos)? {
                    Binding::Ptr { reg, elem } => {
                        let ptr = self.b.gep(reg, idx.reg, elem);
                        Ok(Place::Mem { ptr, ty: elem })
                    }
                    Binding::PrivArray { base, elem, len } => {
                        // Compile-time bounds check for literal indices.
                        if let ExprKind::IntLit(i) = index.kind {
                            if i < 0 || i as usize >= len {
                                return Err(self.err(
                                    index.pos,
                                    format!("index {i} out of bounds for `{name}[{len}]`"),
                                ));
                            }
                        }
                        let ptr = self.b.gep(base, idx.reg, elem);
                        Ok(Place::Mem { ptr, ty: elem })
                    }
                    Binding::Scalar { .. } => {
                        Err(self
                            .err(base.pos, format!("`{name}` is a scalar and cannot be indexed")))
                    }
                    Binding::Pipe { .. } => Err(self.err(
                        base.pos,
                        format!("pipe `{name}` cannot be indexed; use read_pipe/write_pipe"),
                    )),
                }
            }
            _ => Err(self.err(e.pos, "expression is not assignable")),
        }
    }

    fn call(&mut self, pos: Pos, name: &str, args: &[Expr]) -> Result<Typed, CompileError> {
        // Work-item geometry queries.
        let query = match name {
            "get_global_id" => Some(WiQuery::GlobalId),
            "get_local_id" => Some(WiQuery::LocalId),
            "get_group_id" => Some(WiQuery::GroupId),
            "get_global_size" => Some(WiQuery::GlobalSize),
            "get_local_size" => Some(WiQuery::LocalSize),
            "get_num_groups" => Some(WiQuery::NumGroups),
            _ => None,
        };
        if let Some(q) = query {
            let [arg] = args else {
                return Err(self.err(pos, format!("{name} takes exactly one argument")));
            };
            let ExprKind::IntLit(dim) = arg.kind else {
                return Err(self.err(arg.pos, format!("{name} requires a literal dimension")));
            };
            if !(0..3).contains(&dim) {
                return Err(self.err(arg.pos, "dimension must be 0, 1 or 2"));
            }
            return Ok(Typed { reg: self.b.wi_query(q, dim as u8), ty: ScalarType::I64 });
        }

        if name == "barrier" || name == "mem_fence" {
            return Err(self.err(pos, "barrier() is a statement; its value cannot be used"));
        }
        if name == "write_pipe" {
            return Err(self.err(pos, "write_pipe() is a statement; its value cannot be used"));
        }

        // Blocking pipe read: `x = read_pipe(p)` yields the pipe's element
        // type. (OpenCL's reservation/status flavours are not modelled.)
        if name == "read_pipe" {
            let [p] = args else {
                return Err(self.err(pos, "read_pipe takes one argument: read_pipe(pipe)"));
            };
            let (reg, elem) = self.pipe_arg(p)?;
            return Ok(Typed { reg: self.b.pipe_read(reg, elem), ty: elem });
        }

        // Math builtins through the device math library.
        let builtin = match name {
            "exp" | "native_exp" => Some(Builtin::Exp),
            "log" | "native_log" => Some(Builtin::Log),
            "pow" | "powr" => Some(Builtin::Pow),
            "sqrt" | "native_sqrt" => Some(Builtin::Sqrt),
            _ => None,
        };
        if let Some(bi) = builtin {
            if args.len() != bi.arity() {
                return Err(self.err(pos, format!("{name} takes {} argument(s)", bi.arity())));
            }
            let vals: Vec<Typed> = args.iter().map(|a| self.expr(a)).collect::<Result<_, _>>()?;
            let mut ty = ScalarType::F64;
            if vals.iter().all(|v| v.ty == ScalarType::F32) {
                ty = ScalarType::F32;
            }
            let regs: Vec<RegId> = vals.into_iter().map(|v| self.convert(v, ty).reg).collect();
            return Ok(Typed { reg: self.b.call(bi, ty, &regs), ty });
        }
        if name == "pown" {
            // pow with an integer exponent.
            let [x, n] = args else {
                return Err(self.err(pos, "pown takes two arguments"));
            };
            let xv = self.expr(x)?;
            let ty = if xv.ty == ScalarType::F32 { ScalarType::F32 } else { ScalarType::F64 };
            let xv = self.convert(xv, ty);
            let nv = self.expr(n)?;
            let nv = self.convert(nv, ty);
            return Ok(Typed { reg: self.b.call(Builtin::Pow, ty, &[xv.reg, nv.reg]), ty });
        }

        // Two-argument min/max family.
        if matches!(name, "fmax" | "fmin" | "max" | "min") {
            let [a, b] = args else {
                return Err(self.err(pos, format!("{name} takes two arguments")));
            };
            let av = self.expr(a)?;
            let bv = self.expr(b)?;
            let mut ty = common_type(av.ty, bv.ty);
            if name.starts_with('f') && !ty.is_float() {
                ty = ScalarType::F64;
            }
            let av = self.convert(av, ty);
            let bv = self.convert(bv, ty);
            let op = if name.ends_with("max") { BinOp::Max } else { BinOp::Min };
            return Ok(Typed { reg: self.b.bin(op, ty, av.reg, bv.reg), ty });
        }

        // One-argument float family.
        if matches!(name, "fabs" | "abs" | "floor") {
            let [a] = args else {
                return Err(self.err(pos, format!("{name} takes one argument")));
            };
            let av = self.expr(a)?;
            let ty = match name {
                "abs" => {
                    if !av.ty.is_int() {
                        return Err(self.err(pos, "abs requires an integer (use fabs)"));
                    }
                    av.ty
                }
                _ => {
                    if av.ty.is_float() {
                        av.ty
                    } else {
                        ScalarType::F64
                    }
                }
            };
            let av = self.convert(av, ty);
            let op = if name == "floor" { UnOp::Floor } else { UnOp::Abs };
            return Ok(Typed { reg: self.b.un(op, ty, av.reg), ty });
        }

        Err(self.err(pos, format!("unknown function `{name}` (user functions are not supported)")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;
    use bop_clir::value::Value;

    fn compile_fn(src: &str) -> bop_clir::ir::Module {
        let unit = parse(&lex(src).expect("lex")).expect("parse");
        lower_unit("test.cl", &unit, &Options::default()).expect("lower")
    }

    fn compile_err(src: &str) -> CompileError {
        let unit = parse(&lex(src).expect("lex")).expect("parse");
        lower_unit("test.cl", &unit, &Options::default()).expect_err("expected error")
    }

    /// Run a 1-arg (out buffer) kernel with `n` items in one group plus the
    /// given extra scalar args; return the out buffer contents.
    fn run(src: &str, kernel: &str, n: usize, extra: &[KernelArgValue]) -> Vec<f64> {
        let m = compile_fn(src);
        let f = m.kernel(kernel).expect("kernel");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(n.max(1) * 8);
        let mut args = vec![KernelArgValue::GlobalBuffer(buf)];
        args.extend_from_slice(extra);
        let shape = GroupShape::linear(n, n, 0);
        let mut wg = WorkGroupRun::new(f, shape, &args, 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("run");
        (0..n).map(|i| mem.read_f64(buf, i)).collect()
    }

    #[test]
    fn arithmetic_and_conversions() {
        let out = run(
            "__kernel void k(__global double* o) {
                int i = 3;
                double x = i / 2;      // integer division, then convert
                double y = i / 2.0;    // float division
                o[0] = x + y * 10.0;
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 1.0 + 15.0);
    }

    #[test]
    fn for_loop_with_compound_assign() {
        let out = run(
            "__kernel void k(__global double* o) {
                double acc = 0.0;
                for (int i = 1; i <= 10; i++) { acc += (double)i; }
                o[0] = acc;
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 55.0);
    }

    #[test]
    fn unrolled_loop_matches_rolled() {
        let src = |pragma: &str| {
            format!(
                "__kernel void k(__global double* o) {{
                    double acc = 0.0;
                    {pragma}
                    for (int i = 0; i < 7; i++) {{ acc += (double)(i * i); }}
                    o[0] = acc;
                }}"
            )
        };
        let rolled = run(&src(""), "k", 1, &[]);
        let unrolled = run(&src("#pragma unroll 3"), "k", 1, &[]);
        assert_eq!(rolled[0], 91.0);
        assert_eq!(unrolled[0], 91.0, "unrolling must preserve semantics (7 % 3 != 0)");
    }

    #[test]
    fn while_with_break_continue() {
        let out = run(
            "__kernel void k(__global double* o) {
                int i = 0; double acc = 0.0;
                while (true) {
                    i++;
                    if (i > 10) break;
                    if (i % 2 == 0) continue;
                    acc += (double)i;   // 1+3+5+7+9
                }
                o[0] = acc;
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 25.0);
    }

    #[test]
    fn ternary_and_logical_short_circuit() {
        let out = run(
            "__kernel void k(__global double* o) {
                int divisor = 0;
                // Division by zero would trap; short-circuit must protect it.
                bool safe = (divisor != 0) && (10 / divisor > 1);
                o[0] = safe ? 1.0 : 2.0;
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 2.0);
    }

    #[test]
    fn private_array_round_trip() {
        let out = run(
            "__kernel void k(__global double* o) {
                double tmp[4];
                for (int i = 0; i < 4; i++) { tmp[i] = (double)(i * 10); }
                o[0] = tmp[0] + tmp[1] + tmp[2] + tmp[3];
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 60.0);
    }

    #[test]
    fn math_builtins() {
        let out = run(
            "__kernel void k(__global double* o) {
                o[0] = pow(2.0, 10.0) + sqrt(16.0) + fmax(1.0, 2.0) + fabs(-3.0) + floor(2.7);
            }",
            "k",
            1,
            &[],
        );
        assert!((out[0] - (1024.0 + 4.0 + 2.0 + 3.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn exp_log_on_device() {
        let out = run("__kernel void k(__global double* o) { o[0] = log(exp(1.0)); }", "k", 1, &[]);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_kernel_arguments() {
        let out = run(
            "__kernel void k(__global double* o, double scale, int n) {
                o[0] = scale * (double)n;
            }",
            "k",
            1,
            &[KernelArgValue::Scalar(Value::F64(2.5)), KernelArgValue::Scalar(Value::I32(4))],
        );
        assert_eq!(out[0], 10.0);
    }

    #[test]
    fn work_item_ids_per_item() {
        let out = run(
            "__kernel void k(__global double* o) {
                size_t gid = get_global_id(0);
                o[gid] = (double)(gid * 2);
            }",
            "k",
            4,
            &[],
        );
        assert_eq!(out, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn post_and_pre_increment_values() {
        let out = run(
            "__kernel void k(__global double* o) {
                int i = 5;
                int a = i++;   // a=5, i=6
                int b = ++i;   // b=7, i=7
                o[0] = (double)(a * 100 + b * 10 + i);
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 577.0);
    }

    // ---- diagnostics ----

    #[test]
    fn unknown_identifier_diagnosed() {
        let e = compile_err("__kernel void k(__global double* o) { o[0] = nope; }");
        assert!(e.to_string().contains("unknown identifier"));
    }

    #[test]
    fn helper_functions_rejected() {
        let e = compile_err("double f(double x) { return x; }");
        assert!(e.to_string().contains("__kernel"));
    }

    #[test]
    fn kernel_returning_value_rejected() {
        let e = compile_err("__kernel void k(__global double* o) { return 1.0; }");
        assert!(e.to_string().contains("void"));
    }

    #[test]
    fn pointer_param_without_space_rejected() {
        let e = compile_err("__kernel void k(double* o) { }");
        assert!(e.to_string().contains("address-space"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let e = compile_err("__kernel void k(__global double* o) { break; }");
        assert!(e.to_string().contains("break"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed_but_same_scope_rejected() {
        // Same scope: error.
        let e = compile_err("__kernel void k(__global double* o) { int x; double x; }");
        assert!(e.to_string().contains("already defined"));
        // Inner scope shadowing: fine.
        let out = run(
            "__kernel void k(__global double* o) {
                double x = 1.0;
                { double x = 2.0; o[0] = x; }
                o[0] += x;
            }",
            "k",
            1,
            &[],
        );
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn bitops_on_floats_rejected() {
        let e =
            compile_err("__kernel void k(__global double* o) { o[0] = 1.0; double x = 2.0 << 1; }");
        assert!(e.to_string().contains("integer"));
    }

    #[test]
    fn assigning_to_rvalue_rejected() {
        let e = compile_err("__kernel void k(__global double* o) { (1 + 2) = 3; }");
        assert!(e.to_string().contains("not assignable"));
    }

    #[test]
    fn barrier_value_rejected() {
        let e = compile_err("__kernel void k(__global double* o) { o[0] = barrier(0); }");
        assert!(e.to_string().contains("statement"));
    }

    #[test]
    fn get_global_id_requires_literal_dim() {
        let e = compile_err(
            "__kernel void k(__global double* o) { int d = 0; o[get_global_id(d)] = 1.0; }",
        );
        assert!(e.to_string().contains("literal"));
    }

    // ---- pipes ----

    #[test]
    fn pipe_params_lower_to_pipe_pointers() {
        let m = compile_fn(
            "__kernel void p(__global const double* in, pipe double out) {
                write_pipe(out, in[0] * 2.0);
            }",
        );
        let f = m.kernel("p").expect("kernel");
        assert_eq!(f.params[1].ty, Type::ptr(AddressSpace::Pipe, ScalarType::F64));
    }

    #[test]
    fn read_pipe_yields_element_type() {
        // A producer/consumer pair over one pipe; checked end-to-end in the
        // clir and ocl crates, so here only the lowering is exercised.
        let m = compile_fn(
            "__kernel void c(__global double* o, pipe double in) {
                double x = read_pipe(in);
                o[0] = x + 1.0;
            }",
        );
        assert!(m.kernel("c").is_some());
    }

    #[test]
    fn write_pipe_value_rejected() {
        let e = compile_err(
            "__kernel void k(__global double* o, pipe double p) { o[0] = write_pipe(p, 1.0); }",
        );
        assert!(e.to_string().contains("statement"));
    }

    #[test]
    fn read_pipe_requires_pipe_argument() {
        let e = compile_err("__kernel void k(__global double* o) { o[0] = read_pipe(o); }");
        assert!(e.to_string().contains("not a pipe"));
    }

    #[test]
    fn pipes_cannot_be_indexed_or_assigned() {
        let e = compile_err("__kernel void k(pipe double p) { p[0] = 1.0; }");
        assert!(e.to_string().contains("read_pipe/write_pipe"));
        let e = compile_err("__kernel void k(pipe double p) { p = 1.0; }");
        assert!(e.to_string().contains("write_pipe"));
    }

    #[test]
    fn pipe_used_as_value_rejected() {
        let e = compile_err("__kernel void k(__global double* o, pipe double p) { o[0] = p; }");
        assert!(e.to_string().contains("read_pipe"));
    }
}

#[cfg(test)]
mod do_while_tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use bop_clir::mathlib::ExactMath;

    fn run_one(src: &str) -> f64 {
        let unit = parse(&lex(src).expect("lex")).expect("parse");
        let m = lower_unit("t.cl", &unit, &Options::default()).expect("lower");
        let f = m.kernel("k").expect("kernel");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut wg = WorkGroupRun::new(
            f,
            GroupShape::linear(1, 1, 0),
            &[KernelArgValue::GlobalBuffer(buf)],
            0,
        )
        .expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    #[test]
    fn do_while_runs_body_at_least_once() {
        let out = run_one(
            "__kernel void k(__global double* o) {
                double acc = 0.0;
                int i = 100;
                do { acc += 1.0; i++; } while (i < 100);
                o[0] = acc;
            }",
        );
        assert_eq!(out, 1.0, "body executes once even with a false condition");
    }

    #[test]
    fn do_while_loops_until_condition_fails() {
        let out = run_one(
            "__kernel void k(__global double* o) {
                double acc = 0.0;
                int i = 0;
                do { acc += (double)i; i++; } while (i < 5);
                o[0] = acc;
            }",
        );
        assert_eq!(out, 10.0); // 0+1+2+3+4
    }

    #[test]
    fn do_while_supports_break_and_continue() {
        let out = run_one(
            "__kernel void k(__global double* o) {
                double acc = 0.0;
                int i = 0;
                do {
                    i++;
                    if (i % 2 == 0) { continue; }
                    if (i > 7) { break; }
                    acc += (double)i;    // 1+3+5+7
                } while (i < 100);
                o[0] = acc;
            }",
        );
        assert_eq!(out, 16.0);
    }
}
