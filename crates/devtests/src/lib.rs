//! Host crate for the network-dependent dev suites (see `Cargo.toml`).
//!
//! The library itself is empty: the value is in `tests/` (proptest
//! property suites for the compiler front-end, interpreter and finance
//! maths) and `benches/` (criterion benchmarks of the simulator).
