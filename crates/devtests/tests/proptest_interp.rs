//! Property tests on the IR substrate: value encodings, constant
//! evaluation, quantisation and the softmath routines.

use bop_clir::eval::{eval_bin, eval_cast, eval_cmp};
use bop_clir::ir::{BinOp, CmpOp};
use bop_clir::softmath;
use bop_clir::types::ScalarType;
use bop_clir::value::Value;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte encode/decode round-trips every scalar value.
    #[test]
    fn value_bytes_round_trip(x in any::<f64>(), i in any::<i64>(), j in any::<i32>()) {
        for v in [Value::F64(x), Value::I64(i), Value::I32(j), Value::F32(x as f32)] {
            let ty = v.scalar_type().expect("scalar");
            let decoded = Value::from_le_bytes(ty, &v.to_le_bytes());
            // NaNs compare unequal; compare bit patterns through re-encoding.
            prop_assert_eq!(decoded.to_le_bytes(), v.to_le_bytes());
        }
    }

    /// eval_bin on F64 agrees with native Rust operators.
    #[test]
    fn f64_eval_matches_native(a in -1e12..1e12f64, b in -1e12..1e12f64) {
        let cases = [
            (BinOp::Add, a + b),
            (BinOp::Sub, a - b),
            (BinOp::Mul, a * b),
            (BinOp::Min, a.min(b)),
            (BinOp::Max, a.max(b)),
        ];
        for (op, want) in cases {
            let got = eval_bin(op, ScalarType::F64, Value::F64(a), Value::F64(b))
                .expect("float ops cannot trap");
            prop_assert_eq!(got, Value::F64(want));
        }
    }

    /// Integer ops wrap exactly like two's-complement.
    #[test]
    fn i32_eval_wraps(a in any::<i32>(), b in any::<i32>()) {
        let cases = [
            (BinOp::Add, a.wrapping_add(b)),
            (BinOp::Sub, a.wrapping_sub(b)),
            (BinOp::Mul, a.wrapping_mul(b)),
            (BinOp::And, a & b),
            (BinOp::Or, a | b),
            (BinOp::Xor, a ^ b),
            (BinOp::Min, a.min(b)),
            (BinOp::Max, a.max(b)),
        ];
        for (op, want) in cases {
            let got = eval_bin(op, ScalarType::I32, Value::I32(a), Value::I32(b)).expect("no trap");
            prop_assert_eq!(got, Value::I32(want), "op {:?}", op);
        }
        if b != 0 {
            let got = eval_bin(BinOp::Div, ScalarType::I32, Value::I32(a), Value::I32(b))
                .expect("nonzero divisor");
            prop_assert_eq!(got, Value::I32(a.wrapping_div(b)));
        } else {
            prop_assert!(eval_bin(BinOp::Div, ScalarType::I32, Value::I32(a), Value::I32(b)).is_err());
        }
    }

    /// Comparisons are consistent with a total order on non-NaN floats.
    #[test]
    fn cmp_consistency(a in -1e9..1e9f64, b in -1e9..1e9f64) {
        let lt = eval_cmp(CmpOp::Lt, ScalarType::F64, Value::F64(a), Value::F64(b));
        let ge = eval_cmp(CmpOp::Ge, ScalarType::F64, Value::F64(a), Value::F64(b));
        prop_assert_ne!(lt, ge, "Lt and Ge partition non-NaN comparisons");
        let eq = eval_cmp(CmpOp::Eq, ScalarType::F64, Value::F64(a), Value::F64(b));
        prop_assert_eq!(eq, a == b);
    }

    /// Casting f64 -> i64 -> f64 is the identity on integral values.
    #[test]
    fn casts_round_trip_integrals(i in -1_000_000i64..1_000_000) {
        let f = eval_cast(Value::I64(i), ScalarType::I64, ScalarType::F64);
        let back = eval_cast(f, ScalarType::F64, ScalarType::I64);
        prop_assert_eq!(back, Value::I64(i));
    }

    /// Quantisation: idempotent, monotone in bits, and within a half-ulp
    /// of the requested precision.
    #[test]
    fn quantize_properties(x in -1e15..1e15f64, bits in 4u32..52) {
        prop_assume!(x != 0.0);
        let q = softmath::quantize(x, bits);
        prop_assert_eq!(softmath::quantize(q, bits), q, "idempotent");
        let rel = ((q - x) / x).abs();
        prop_assert!(rel <= 2f64.powi(-(bits as i32)), "bits={} rel={}", bits, rel);
        prop_assert_eq!(q.signum(), x.signum());
    }

    /// softmath exp/log/pow agree with libm to tight relative error on
    /// the ranges lattice pricing uses.
    #[test]
    fn softmath_tracks_libm(x in 0.2..5.0f64, y in -700.0..700.0f64) {
        let e = softmath::exp(y * 0.5);
        let e_ref = (y * 0.5).exp();
        if e_ref.is_finite() && e_ref > 0.0 {
            prop_assert!(((e - e_ref) / e_ref).abs() < 1e-13);
        }
        let l = softmath::log(x);
        prop_assert!((l - x.ln()).abs() <= 1e-13 * x.ln().abs().max(1.0));
        let p = softmath::pow(x, y * 0.01, None);
        let p_ref = x.powf(y * 0.01);
        prop_assert!(((p - p_ref) / p_ref).abs() < 1e-12);
    }

    /// pow with quantisation is exact for the special cases, regardless
    /// of the datapath width.
    #[test]
    fn quantized_pow_special_cases(bits in 4u32..52, x in 0.1..10.0f64) {
        prop_assert_eq!(softmath::pow(x, 0.0, Some(bits)), 1.0);
        prop_assert_eq!(softmath::pow(1.0, x, Some(bits)), 1.0);
        prop_assert_eq!(softmath::pow(0.0, x, Some(bits)), 0.0);
    }
}
