//! Property tests on the pricing mathematics: no-arbitrage bounds,
//! monotonicity, convergence and inversion invariants, over random market
//! parameters.

use bop_finance::binomial::{price_american_f32, price_american_f64};
use bop_finance::black_scholes::bs_price;
use bop_finance::implied_vol::implied_volatility;
use bop_finance::types::{ExerciseStyle, OptionKind, OptionParams};
use proptest::prelude::*;

fn option_strategy() -> impl Strategy<Value = OptionParams> {
    (
        20.0..300.0f64,  // spot
        20.0..300.0f64,  // strike
        0.08..0.8f64,    // volatility (bounded away from the CRR p>1 region)
        0.0..0.08f64,    // rate
        0.1..2.5f64,     // expiry
        0.0..0.04f64,    // dividend yield
        prop::bool::ANY, // call/put
        prop::bool::ANY, // european/american
    )
        .prop_map(
            |(spot, strike, volatility, rate, expiry, dividend_yield, call, american)| {
                OptionParams {
                    spot,
                    strike,
                    volatility,
                    rate,
                    expiry,
                    dividend_yield,
                    kind: if call { OptionKind::Call } else { OptionKind::Put },
                    style: if american { ExerciseStyle::American } else { ExerciseStyle::European },
                }
            },
        )
}

const N: usize = 96;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No-arbitrage bounds: intrinsic <= price <= spot (calls) or strike
    /// (puts), and prices are never negative.
    #[test]
    fn prices_respect_no_arbitrage_bounds(o in option_strategy()) {
        let p = price_american_f64(&o, N);
        prop_assert!(p >= -1e-12, "negative price {p}");
        if o.style == ExerciseStyle::American {
            prop_assert!(p + 1e-9 >= o.intrinsic(), "below intrinsic: {p} < {}", o.intrinsic());
        }
        match o.kind {
            OptionKind::Call => prop_assert!(p <= o.spot * (1.0 + 1e-12)),
            OptionKind::Put => prop_assert!(p <= o.strike * (1.0 + 1e-12)),
        }
    }

    /// American >= European, always.
    #[test]
    fn american_dominates_european(mut o in option_strategy()) {
        o.style = ExerciseStyle::American;
        let amer = price_american_f64(&o, N);
        o.style = ExerciseStyle::European;
        let euro = price_american_f64(&o, N);
        prop_assert!(amer + 1e-9 >= euro, "{amer} < {euro}");
    }

    /// Prices increase with volatility.
    #[test]
    fn vega_is_nonnegative(mut o in option_strategy(), bump in 0.01..0.3f64) {
        let p0 = price_american_f64(&o, N);
        o.volatility += bump;
        let p1 = price_american_f64(&o, N);
        prop_assert!(p1 + 1e-9 >= p0, "price fell with vol: {p0} -> {p1}");
    }

    /// Calls fall and puts rise with the strike.
    #[test]
    fn strike_monotonicity(mut o in option_strategy(), bump in 1.0..40.0f64) {
        let p0 = price_american_f64(&o, N);
        o.strike += bump;
        let p1 = price_american_f64(&o, N);
        match o.kind {
            OptionKind::Call => prop_assert!(p1 <= p0 + 1e-9),
            OptionKind::Put => prop_assert!(p1 + 1e-9 >= p0),
        }
    }

    /// The European lattice price converges to Black-Scholes.
    #[test]
    fn european_lattice_tracks_black_scholes(mut o in option_strategy()) {
        o.style = ExerciseStyle::European;
        let lattice = price_american_f64(&o, 512);
        let analytic = bs_price(&o);
        let tolerance = 0.01 * (analytic.abs() + o.spot * 0.01);
        prop_assert!(
            (lattice - analytic).abs() < tolerance,
            "lattice {lattice} vs BS {analytic}"
        );
    }

    /// Single precision stays close to double precision.
    #[test]
    fn f32_is_a_small_perturbation(o in option_strategy()) {
        let dbl = price_american_f64(&o, N);
        let sgl = price_american_f32(&o, N) as f64;
        prop_assert!((dbl - sgl).abs() < 0.05 + dbl.abs() * 1e-3, "{dbl} vs {sgl}");
    }

    /// Implied volatility inverts pricing (where vega is meaningful).
    #[test]
    fn implied_vol_round_trips(mut o in option_strategy()) {
        // Stay where the problem is well-conditioned: near-the-money
        // European options with visible time value.
        o.style = ExerciseStyle::European;
        o.strike = o.spot * (0.8 + (o.strike / 300.0) * 0.4);
        let price = bs_price(&o);
        prop_assume!(price > 0.05 && price < o.spot * 0.95);
        let recovered = implied_volatility(&o, price, bs_price);
        prop_assert!(recovered.is_ok(), "inversion failed: {recovered:?}");
        let vol = recovered.expect("checked");
        prop_assert!((vol - o.volatility).abs() < 1e-5, "{} vs {}", vol, o.volatility);
    }

    /// More lattice steps never blow up and stay in a tight band of the
    /// fine-lattice answer (Richardson-style sanity).
    #[test]
    fn refinement_is_stable(o in option_strategy()) {
        let coarse = price_american_f64(&o, 64);
        let fine = price_american_f64(&o, 256);
        prop_assert!((coarse - fine).abs() < 0.05 + fine.abs() * 0.02, "{coarse} vs {fine}");
    }
}
