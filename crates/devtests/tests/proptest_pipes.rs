//! Property tests: pipe (on-chip FIFO) semantics are deterministic and
//! engine-independent.
//!
//! Strategy: generate random producer/consumer task pairs — random FIFO
//! depth, mismatched read/write counts (an excess of reads can never be
//! satisfied and must hit the deadlock trap), bursty write patterns that
//! force depth-full stalls, optional tiny step budgets and optional
//! seeded fault plans — then run the pair as one launch graph on every
//! engine at several worker counts. Whatever happens — values, stall
//! counters, queue counters, the simulated clock, a deadlock trap, a
//! step-budget trip or an injected fault — must be bit-identical across
//! walk, bytecode and lanes, and no case may hang.

use bop_core::devices;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::QueueCounters;
use bop_ocl::{BuildOptions, CommandQueue, Context, Engine, FaultPlan, Program};
use proptest::prelude::*;

/// One randomly generated pipe pair + launch configuration.
#[derive(Debug, Clone)]
struct Case {
    /// FIFO depth (1..=8 keeps depth-full stalls frequent).
    depth: usize,
    /// Values the producer writes.
    writes: usize,
    /// Values the consumer reads; more reads than writes deadlocks.
    reads: usize,
    /// Writes per burst before the producer does filler arithmetic —
    /// varies the interleaving the round-robin scheduler sees.
    burst: usize,
    /// Arithmetic constant for the streamed values.
    c: f64,
    /// Consumer listed before producer in the graph.
    consumer_first: bool,
    /// Step budget for the whole graph (`None` = default 2e9).
    step_limit: Option<u64>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        1usize..=8,
        0usize..=24,
        0usize..=28,
        1usize..=5,
        -2.0..2.0f64,
        any::<bool>(),
        prop_oneof![3 => Just(None), 1 => Just(Some(150u64))],
    )
        .prop_map(|(depth, writes, reads, burst, c, consumer_first, step_limit)| Case {
            depth,
            writes,
            reads,
            burst,
            c,
            consumer_first,
            step_limit,
        })
}

impl Case {
    fn source(&self) -> String {
        let Case { writes, reads, burst, c, .. } = self;
        format!(
            "__kernel void produce(pipe double ch, __global double* side) {{
                double filler = 0.0;
                for (int i = 0; i < {writes}; i++) {{
                    write_pipe(ch, (double)i * {c:?} + 0.5);
                    if (i % {burst} == 0) {{
                        filler = filler + (double)i * 0.25;
                    }}
                }}
                side[0] = filler;
            }}
            __kernel void consume(pipe double ch, __global double* out) {{
                double acc = 0.0;
                for (int i = 0; i < {reads}; i++) {{
                    double v = read_pipe(ch);
                    acc = acc * 0.5 + v;
                    out[i] = v;
                }}
                out[{reads}] = acc;
            }}"
        )
    }

    /// More reads than writes can never be satisfied.
    fn deadlocks(&self) -> bool {
        self.reads > self.writes
    }
}

/// Everything one graph run observes.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    result: Result<Vec<u64>, String>,
    producer_stats: Option<bop_clir::stats::ExecStats>,
    consumer_stats: Option<bop_clir::stats::ExecStats>,
    counters: QueueCounters,
    sim_s: f64,
}

fn run_case(case: &Case, engine: Engine, workers: usize, plan: Option<&FaultPlan>) -> Outcome {
    let ctx = Context::new(devices::fpga());
    let queue = CommandQueue::new(&ctx);
    queue.set_engine(engine);
    queue.set_workers(workers);
    if let Some(limit) = case.step_limit {
        queue.set_step_limit(limit);
    }
    if let Some(p) = plan {
        queue.set_fault_plan(p.clone());
    }
    let program = Program::from_source(&ctx, "pair.cl", &case.source(), &BuildOptions::default())
        .expect("generated pair compiles");
    let pipe = ctx.create_pipe(bop_clir::types::ScalarType::F64, case.depth);
    let side = ctx.create_buffer(8);
    let out = ctx.create_buffer(8 * (case.reads + 1));

    let produce = program.kernel("produce").expect("kernel");
    produce.set_arg_pipe(0, &pipe);
    produce.set_arg_buffer(1, &side);
    let consume = program.kernel("consume").expect("kernel");
    consume.set_arg_pipe(0, &pipe);
    consume.set_arg_buffer(1, &out);

    let result = (|| -> Result<Vec<u64>, String> {
        let d = Dispatch::new(1, 1);
        let graph: [(&bop_ocl::Kernel, Dispatch); 2] = if case.consumer_first {
            [(&consume, d), (&produce, d)]
        } else {
            [(&produce, d), (&consume, d)]
        };
        queue.enqueue_launch_graph(&graph).map_err(|e| e.to_string())?;
        let mut values = vec![0.0f64; case.reads + 1];
        queue.enqueue_read_f64(&out, &mut values).map_err(|e| e.to_string())?;
        // Compare bit patterns so NaNs cannot mask a divergence.
        Ok(values.iter().map(|v| v.to_bits()).collect())
    })();
    queue.finish();
    Outcome {
        result,
        producer_stats: queue.kernel_stats("produce"),
        consumer_stats: queue.kernel_stats("consume"),
        counters: queue.counters(),
        sim_s: queue.elapsed_s(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pipe interleavings terminate on every engine with the
    /// identical outcome: values, per-kernel stats (stalls included),
    /// queue counters and the simulated clock — or the identical trap.
    #[test]
    fn engines_bit_identical_on_random_pipe_pairs(case in case_strategy()) {
        let reference = run_case(&case, Engine::Walk, 1, None);
        match &reference.result {
            Err(msg) => prop_assert!(
                msg.contains("pipe deadlock") || msg.contains("instruction budget exhausted"),
                "only a deadlock or budget trip may fail a fault-free case: `{}` for {:?}",
                msg,
                &case
            ),
            Ok(_) => prop_assert!(
                !case.deadlocks(),
                "an unsatisfiable read count must deadlock: {:?}",
                &case
            ),
        }
        if case.deadlocks() && case.step_limit.is_none() {
            let msg = reference.result.as_ref().unwrap_err();
            prop_assert!(msg.contains("pipe deadlock"), "unexpected payload `{}`", msg);
        }
        for engine in [Engine::Walk, Engine::Bytecode, Engine::Lanes] {
            for workers in [1usize, 3] {
                let got = run_case(&case, engine, workers, None);
                let what = format!("{engine} engine, {workers} worker(s), case {case:?}");
                prop_assert_eq!(&got, &reference, "outcome differs: {}", &what);
            }
        }
    }

    /// Under a seeded fault plan the faults are a deterministic function
    /// of the launch sequence, so the pipe pair still observes the
    /// identical outcome on every engine.
    #[test]
    fn pipe_pairs_bit_identical_under_seeded_faults(
        case in case_strategy(),
        seed in any::<u64>(),
        rate in 0.0..0.6f64,
    ) {
        let plan = FaultPlan::new(rate, seed);
        let reference = run_case(&case, Engine::Walk, 1, Some(&plan));
        for engine in [Engine::Bytecode, Engine::Lanes] {
            for workers in [1usize, 3] {
                let got = run_case(&case, engine, workers, Some(&plan));
                let what = format!("{engine} engine, {workers} worker(s), case {case:?}");
                prop_assert_eq!(&got, &reference, "faulty outcome differs: {}", &what);
            }
        }
    }
}
