//! Hardening: the compiler must reject garbage with diagnostics, never
//! panic, and its diagnostics must carry positions.

use bop_clc::{compile, Options};
use proptest::prelude::*;

/// A corpus of malformed programs that have each caught (or could catch) a
/// front-end crash.
const CORPUS: &[&str] = &[
    "",
    "{",
    "}}}}",
    "__kernel",
    "__kernel void",
    "__kernel void k",
    "__kernel void k(",
    "__kernel void k()",
    "__kernel void k() {",
    "__kernel void k(__global double* o) { o[ }",
    "__kernel void k(__global double* o) { o[0] = ; }",
    "__kernel void k(__global double* o) { for (;;) }",
    "__kernel void k(__global double* o) { if }",
    "__kernel void k(__global double* o) { double; }",
    "__kernel void k(__global double* o) { double x[0]; }",
    "__kernel void k(__global double* o) { double x[-1]; }",
    "__kernel void k(__global double* o) { return 5; }",
    "__kernel void k(__global double* o) { continue; }",
    "__kernel void k(void v) {}",
    "__kernel int k(__global double* o) { return 1; }",
    "kernel kernel kernel",
    "__kernel void k(__global double* o) { o[0] = pow(1.0); }",
    "__kernel void k(__global double* o) { o[0] = get_global_id(); }",
    "__kernel void k(__global double* o) { o[0] = get_global_id(9); }",
    "__kernel void k(__global double* o) { o[0] = unknown_fn(1.0); }",
    "__kernel void k(__global double* o) { double x = 1.0 <<< 2; }",
    "#pragma unroll\n__kernel void k(__global double* o) {}",
    "__kernel void k(__global double* o) { #pragma unroll 2\n o[0] = 1.0; }",
    "__kernel void k(__global double* o, __global double* o) {}",
    "__kernel void k(__global double* o) { x = 1.0; }",
    "__kernel void k(__global double* o) { o = 0; }",
    "__kernel void k(__local double s) {}",
    "void helper() {} __kernel void k(__global double* o) {}",
    "__kernel void k(__global double* o) { o[0] = 1.0e99999; }",
    "__kernel void k(__global double* o) { o[0] = 99999999999999999999999999; }",
    "__kernel void k(__global double* o) { /* unterminated",
    "__kernel void k(__global double* o) { o[0] = (double); }",
    "__kernel void k(__global double* o) { barrier(); o[0] = barrier(0); }",
];

#[test]
fn malformed_corpus_yields_diagnostics_not_panics() {
    for (i, src) in CORPUS.iter().enumerate() {
        let result = std::panic::catch_unwind(|| compile("fuzz.cl", src, &Options::default()));
        match result {
            Ok(Err(e)) => {
                assert!(!e.diags().is_empty(), "case {i}: error without diagnostics");
            }
            Ok(Ok(_)) => {
                // A few corpus entries are actually legal (e.g. barrier with
                // no args is rejected, but an empty kernel is fine); being
                // accepted is not a failure as long as nothing panicked.
            }
            Err(_) => panic!("case {i} panicked: `{src}`"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII input never panics the front-end.
    #[test]
    fn random_text_never_panics(src in "[ -~\\n]{0,200}") {
        let result = std::panic::catch_unwind(|| compile("fuzz.cl", &src, &Options::default()));
        prop_assert!(result.is_ok(), "panicked on: `{src}`");
    }

    /// Structured-ish garbage (keywords and punctuation soup) never panics
    /// either — this hits the parser far more often than raw ASCII.
    #[test]
    fn token_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "__kernel", "void", "k", "(", ")", "{", "}", "[", "]", ";", ",",
                "double", "int", "for", "if", "else", "while", "return", "break",
                "=", "+", "-", "*", "/", "<", ">", "==", "&&", "||", "?", ":",
                "1.0", "42", "x", "o", "__global", "__local", "barrier",
                "get_global_id", "pow", "#pragma unroll 2\n",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let result = std::panic::catch_unwind(|| compile("fuzz.cl", &src, &Options::default()));
        prop_assert!(result.is_ok(), "panicked on: `{src}`");
    }
}
