//! Property tests: the compiler + interpreter pipeline computes what C
//! says it should, and the optimisation passes never change results.
//!
//! Strategy: generate random expression trees, render them to OpenCL C,
//! compile and execute through the full stack, and compare against a
//! direct Rust evaluation of the same tree (differential testing).

use bop_clc::{compile, Options};
use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
use bop_clir::mathlib::ExactMath;
use bop_clir::value::Value;
use proptest::prelude::*;

/// A random floating-point expression over two variables.
#[derive(Debug, Clone)]
enum FExpr {
    Lit(f64),
    X,
    Y,
    Add(Box<FExpr>, Box<FExpr>),
    Sub(Box<FExpr>, Box<FExpr>),
    Mul(Box<FExpr>, Box<FExpr>),
    Max(Box<FExpr>, Box<FExpr>),
    Min(Box<FExpr>, Box<FExpr>),
    Abs(Box<FExpr>),
    Neg(Box<FExpr>),
    Ternary(Box<FExpr>, Box<FExpr>, Box<FExpr>),
}

impl FExpr {
    fn render(&self) -> String {
        match self {
            FExpr::Lit(v) => format!("({v:?})"),
            FExpr::X => "x".into(),
            FExpr::Y => "y".into(),
            FExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            FExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            FExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            FExpr::Max(a, b) => format!("fmax({}, {})", a.render(), b.render()),
            FExpr::Min(a, b) => format!("fmin({}, {})", a.render(), b.render()),
            FExpr::Abs(a) => format!("fabs({})", a.render()),
            FExpr::Neg(a) => format!("(-{})", a.render()),
            FExpr::Ternary(c, t, e) => {
                format!("(({} > 0.0) ? {} : {})", c.render(), t.render(), e.render())
            }
        }
    }

    fn eval(&self, x: f64, y: f64) -> f64 {
        match self {
            FExpr::Lit(v) => *v,
            FExpr::X => x,
            FExpr::Y => y,
            FExpr::Add(a, b) => a.eval(x, y) + b.eval(x, y),
            FExpr::Sub(a, b) => a.eval(x, y) - b.eval(x, y),
            FExpr::Mul(a, b) => a.eval(x, y) * b.eval(x, y),
            FExpr::Max(a, b) => a.eval(x, y).max(b.eval(x, y)),
            FExpr::Min(a, b) => a.eval(x, y).min(b.eval(x, y)),
            FExpr::Abs(a) => a.eval(x, y).abs(),
            FExpr::Neg(a) => -a.eval(x, y),
            FExpr::Ternary(c, t, e) => {
                if c.eval(x, y) > 0.0 {
                    t.eval(x, y)
                } else {
                    e.eval(x, y)
                }
            }
        }
    }
}

fn fexpr_strategy() -> impl Strategy<Value = FExpr> {
    let leaf = prop_oneof![(-8.0..8.0f64).prop_map(FExpr::Lit), Just(FExpr::X), Just(FExpr::Y),];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Max(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FExpr::Min(a.into(), b.into())),
            inner.clone().prop_map(|a| FExpr::Abs(a.into())),
            inner.clone().prop_map(|a| FExpr::Neg(a.into())),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| FExpr::Ternary(
                c.into(),
                t.into(),
                e.into()
            )),
        ]
    })
}

/// Compile a one-statement kernel and run a single work-item.
fn run_kernel(body: &str, x: f64, y: f64, no_opt: bool) -> f64 {
    let src =
        format!("__kernel void k(__global double* o, double x, double y) {{ o[0] = {body}; }}");
    let module = compile("prop.cl", &src, &Options { no_opt, ..Options::default() })
        .unwrap_or_else(|e| panic!("compile failed for `{body}`: {e}"));
    let func = module.kernel("k").expect("kernel");
    let mut mem = VecMemory::new();
    let buf = mem.alloc_global(8);
    let mut run = WorkGroupRun::new(
        func,
        GroupShape::linear(1, 1, 0),
        &[
            KernelArgValue::GlobalBuffer(buf),
            KernelArgValue::Scalar(Value::F64(x)),
            KernelArgValue::Scalar(Value::F64(y)),
        ],
        0,
    )
    .expect("args");
    run.run(&mut mem, &ExactMath).expect("runs");
    mem.read_f64(buf, 0)
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled kernel computes exactly what direct evaluation does
    /// (bit-for-bit — both sides are the same f64 operations).
    #[test]
    fn float_expressions_match_direct_evaluation(
        expr in fexpr_strategy(),
        x in -10.0..10.0f64,
        y in -10.0..10.0f64,
    ) {
        let want = expr.eval(x, y);
        let got = run_kernel(&expr.render(), x, y, true);
        prop_assert!(bits_eq(got, want), "expr `{}`: got {got}, want {want}", expr.render());
    }

    /// Constant folding and DCE never change results.
    #[test]
    fn optimisation_passes_preserve_semantics(
        expr in fexpr_strategy(),
        x in -10.0..10.0f64,
        y in -10.0..10.0f64,
    ) {
        let unopt = run_kernel(&expr.render(), x, y, true);
        let opt = run_kernel(&expr.render(), x, y, false);
        prop_assert!(bits_eq(opt, unopt), "expr `{}`: opt {opt} vs unopt {unopt}", expr.render());
    }

    /// Common-subexpression elimination never changes results either —
    /// random trees are full of genuinely shared subexpressions, which is
    /// exactly what CSE rewrites.
    #[test]
    fn cse_preserves_semantics(
        expr in fexpr_strategy(),
        x in -10.0..10.0f64,
        y in -10.0..10.0f64,
    ) {
        let plain = run_kernel(&expr.render(), x, y, false);
        let src = format!(
            "__kernel void k(__global double* o, double x, double y) {{ o[0] = {}; }}",
            expr.render()
        );
        let module = compile("prop.cl", &src, &Options { cse: true, ..Options::default() })
            .expect("compiles");
        let func = module.kernel("k").expect("kernel");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut run = WorkGroupRun::new(
            func,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(Value::F64(x)),
                KernelArgValue::Scalar(Value::F64(y)),
            ],
            0,
        ).expect("args");
        run.run(&mut mem, &ExactMath).expect("runs");
        let cse = mem.read_f64(buf, 0);
        prop_assert!(bits_eq(cse, plain), "expr `{}`: cse {cse} vs plain {plain}", expr.render());
    }

    /// Integer arithmetic follows two's-complement C semantics.
    #[test]
    fn integer_ops_match_wrapping_semantics(
        a in any::<i32>(),
        b in any::<i32>(),
        shift in 0u32..8,
    ) {
        let body = format!("(double)((x0 + x1) * (x0 - x1) + ((x0 << {shift}) ^ (x1 & x0)) % 97)");
        let src = format!(
            "__kernel void k(__global double* o, int x0, int x1) {{ o[0] = {body}; }}"
        );
        let module = compile("prop.cl", &src, &Options::default()).expect("compiles");
        let func = module.kernel("k").expect("kernel");
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut run = WorkGroupRun::new(
            func,
            GroupShape::linear(1, 1, 0),
            &[
                KernelArgValue::GlobalBuffer(buf),
                KernelArgValue::Scalar(Value::I32(a)),
                KernelArgValue::Scalar(Value::I32(b)),
            ],
            0,
        ).expect("args");
        run.run(&mut mem, &ExactMath).expect("runs");
        let got = mem.read_f64(buf, 0);

        // Reference: two's-complement C semantics at int width — every
        // intermediate wraps to i32, exactly as the IR truncates at the
        // `int` type boundary.
        let sum = a.wrapping_add(b);
        let diff = a.wrapping_sub(b);
        let shl = a.wrapping_shl(shift);
        let xor = shl ^ (b & a);
        let rem = xor.wrapping_rem(97);
        let want = sum.wrapping_mul(diff).wrapping_add(rem) as f64;
        prop_assert_eq!(got, want, "a={} b={} shift={}", a, b, shift);
    }

    /// Loop unrolling never changes the result, whatever the trip count
    /// and factor.
    #[test]
    fn unrolling_preserves_loop_semantics(
        trips in 0usize..20,
        factor in 1u32..6,
        start in -5.0..5.0f64,
    ) {
        let src = |pragma: &str| format!(
            "__kernel void k(__global double* o, double s) {{
                double acc = s;
                {pragma}
                for (int i = 0; i < {trips}; i++) {{
                    acc = acc * 1.25 + (double)i;
                    if (acc > 1e6) {{ break; }}
                }}
                o[0] = acc;
            }}"
        );
        let run_src = |src: String| {
            let module = compile("prop.cl", &src, &Options::default()).expect("compiles");
            let func = module.kernel("k").expect("kernel");
            let mut mem = VecMemory::new();
            let buf = mem.alloc_global(8);
            let mut r = WorkGroupRun::new(
                func,
                GroupShape::linear(1, 1, 0),
                &[KernelArgValue::GlobalBuffer(buf), KernelArgValue::Scalar(Value::F64(start))],
                0,
            ).expect("args");
            r.run(&mut mem, &ExactMath).expect("runs");
            mem.read_f64(buf, 0)
        };
        let rolled = run_src(src(""));
        let unrolled = run_src(src(&format!("#pragma unroll {factor}")));
        prop_assert!(bits_eq(rolled, unrolled), "trips={} factor={}: {} vs {}", trips, factor, rolled, unrolled);
    }
}
