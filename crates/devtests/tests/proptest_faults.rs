//! Property tests on the fault-injection layer: under *any* `(rate,
//! seed)` plan, pricing either returns the exact fault-free price or a
//! typed retryable [`Error::Fault`] — never a silently wrong number —
//! and a faulty service pool always drains (quarantine and redispatch
//! cannot deadlock a ticket).
//!
//! Needs the `proptest` registry crate, so it lives in the
//! network-gated devtests suite.

use bop_core::{Accelerator, Error, FaultPlan, KernelArch, Precision};
use bop_finance::workload;
use bop_finance::OptionParams;
use bop_serve::{PricingService, ServeConfig};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

const N_STEPS: usize = 16;

/// One fault-free accelerator, built once: clones with a fault plan are
/// cheap (the compiled program is shared) and each case gets a fresh
/// deterministic fault stream.
fn base() -> &'static Accelerator {
    static BASE: OnceLock<Accelerator> = OnceLock::new();
    BASE.get_or_init(|| {
        Accelerator::builder(bop_core::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(N_STEPS)
            .build()
            .expect("base accelerator builds")
    })
}

fn request(n: usize, seed: u64) -> Vec<OptionParams> {
    workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The detected-fault contract on the direct path: correct price or
    /// typed fault, nothing in between.
    #[test]
    fn faulty_pricing_is_exact_or_typed(
        rate in 0.0..=1.0f64,
        seed in any::<u64>(),
        batch_seed in 0u64..1000,
    ) {
        let options = request(5, batch_seed);
        let reference = base().price(&options).expect("fault-free").prices;
        let faulty = base().clone().with_fault_plan(FaultPlan::new(rate, seed));
        match faulty.price(&options) {
            Ok(run) => prop_assert_eq!(
                run.prices, reference,
                "a successful price under faults must be bit-identical"
            ),
            Err(e) => {
                prop_assert!(matches!(e, Error::Fault { .. }), "typed fault, got {}", e);
                prop_assert!(e.is_retryable());
            }
        }
    }

    /// A two-shard pool under arbitrary plans always drains: every
    /// ticket resolves — exact price or typed fault — and shutdown
    /// joins every thread. Proptest's timeout is the deadlock oracle.
    #[test]
    fn quarantine_never_deadlocks_the_drain(
        rate in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let shards: Vec<Accelerator> = (0..2u64)
            .map(|i| base().clone().with_fault_plan(FaultPlan::new(rate, seed ^ i)))
            .collect();
        let service = PricingService::start(
            shards,
            ServeConfig {
                max_batch: 4,
                max_linger: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .expect("starts");
        let requests: Vec<Vec<OptionParams>> = (0..6).map(|i| request(4, 300 + i)).collect();
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone(), None).expect("accepted"))
            .collect();
        for (ticket, req) in tickets.into_iter().zip(&requests) {
            match ticket.wait() {
                Ok(prices) => {
                    let reference = base().price(req).expect("fault-free").prices;
                    prop_assert_eq!(prices, reference);
                }
                Err(e) => {
                    prop_assert!(matches!(e, Error::Fault { .. }), "typed fault, got {}", e);
                }
            }
        }
        service.shutdown();
    }
}
