//! Property test: the runtime pass pipeline preserves semantics.
//!
//! Generates random straight-line CLIR kernels (no control flow, no
//! trapping integer ops), runs them through the `standard` and
//! `standard+cse` pipelines, and checks that the optimised module is
//! still verifier-clean and that the tree-walking interpreter on the
//! original, the tree-walker on the optimised IR and the bytecode
//! engine on the optimised IR all produce bit-identical output buffers.

use bop_clir::builder::FunctionBuilder;
use bop_clir::bytecode::{BytecodeRun, CompiledKernel};
use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
use bop_clir::ir::{BinOp, Builtin, Function, Module};
use bop_clir::mathlib::ExactMath;
use bop_clir::passes::Pipeline;
use bop_clir::types::{AddressSpace, ScalarType, Type};
use proptest::prelude::*;

/// One generated instruction; operand fields index into the live
/// register pools modulo their length, so any byte is a valid pick.
#[derive(Debug, Clone)]
enum OpDesc {
    ConstF(f64),
    ConstI(i64),
    /// Float binop: selector, lhs pick, rhs pick.
    FBin(u8, u8, u8),
    /// Integer binop (non-trapping subset): selector, lhs, rhs.
    IBin(u8, u8, u8),
    IntToFloat(u8),
    FloatToInt(u8),
    /// Unary math call: builtin selector, operand pick.
    Call(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = OpDesc> {
    prop_oneof![
        (-1e9f64..1e9).prop_map(OpDesc::ConstF),
        any::<i64>().prop_map(OpDesc::ConstI),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| OpDesc::FBin(o, a, b)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| OpDesc::IBin(o, a, b)),
        any::<u8>().prop_map(OpDesc::IntToFloat),
        any::<u8>().prop_map(OpDesc::FloatToInt),
        (any::<u8>(), any::<u8>()).prop_map(|(f, a)| OpDesc::Call(f, a)),
    ]
}

const FOPS: [BinOp; 6] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Min, BinOp::Max];
// Integer Div/Rem trap on zero divisors and are deliberately absent.
const IOPS: [BinOp; 8] =
    [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor, BinOp::Min, BinOp::Max];
const CALLS: [Builtin; 2] = [Builtin::Exp, Builtin::Sqrt];

fn pick(pool: &[bop_clir::ir::RegId], idx: u8) -> bop_clir::ir::RegId {
    pool[idx as usize % pool.len()]
}

/// Materialise the descriptor list as a single-block kernel that stores
/// a reduction of every live register to `out[gid]` (so dead-code
/// elimination cannot trivialise the test).
fn build_kernel(ops: &[OpDesc]) -> Function {
    let mut b = FunctionBuilder::new("randk", true);
    let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
    let gid = b.global_id(0);
    let lid = b.local_id(0);
    let gid_f = b.cast(gid, ScalarType::I64, ScalarType::F64);
    let seed = b.const_f64(1.5);
    let mut fregs = vec![gid_f, seed];
    let mut iregs = vec![gid, lid];
    for op in ops {
        match op {
            OpDesc::ConstF(x) => fregs.push(b.const_f64(*x)),
            OpDesc::ConstI(x) => iregs.push(b.const_i64(*x)),
            OpDesc::FBin(o, x, y) => {
                let (a, c) = (pick(&fregs, *x), pick(&fregs, *y));
                fregs.push(b.bin(FOPS[*o as usize % FOPS.len()], ScalarType::F64, a, c));
            }
            OpDesc::IBin(o, x, y) => {
                let (a, c) = (pick(&iregs, *x), pick(&iregs, *y));
                iregs.push(b.bin(IOPS[*o as usize % IOPS.len()], ScalarType::I64, a, c));
            }
            OpDesc::IntToFloat(x) => {
                let a = pick(&iregs, *x);
                fregs.push(b.cast(a, ScalarType::I64, ScalarType::F64));
            }
            OpDesc::FloatToInt(x) => {
                let a = pick(&fregs, *x);
                iregs.push(b.cast(a, ScalarType::F64, ScalarType::I64));
            }
            OpDesc::Call(f, x) => {
                let a = pick(&fregs, *x);
                fregs.push(b.call(CALLS[*f as usize % CALLS.len()], ScalarType::F64, &[a]));
            }
        }
    }
    let mut acc = fregs[0];
    for &r in &fregs[1..] {
        acc = b.fadd(acc, r, ScalarType::F64);
    }
    let tail = b.cast(*iregs.last().expect("seeded"), ScalarType::I64, ScalarType::F64);
    acc = b.fadd(acc, tail, ScalarType::F64);
    let slot = b.gep(out, gid, ScalarType::F64);
    b.store(slot, acc, ScalarType::F64);
    b.ret();
    b.finish().expect("generated straight-line IR is valid")
}

const GLOBAL: usize = 8;
const LOCAL: usize = 4;

/// Run `func` on the tree-walker over the full NDRange; return the
/// output buffer bytes.
fn run_walker(func: &Function) -> Vec<u8> {
    let mut mem = VecMemory::new();
    let buf = mem.alloc_global(GLOBAL * 8);
    let args = vec![KernelArgValue::GlobalBuffer(buf)];
    for group in 0..GLOBAL / LOCAL {
        let shape = GroupShape::linear(GLOBAL, LOCAL, group);
        let mut run = WorkGroupRun::new(func, shape, &args, 0).expect("args bind");
        run.run(&mut mem, &ExactMath).expect("straight-line kernels cannot trap");
    }
    mem.global_bytes(buf).to_vec()
}

/// Same NDRange on the bytecode engine.
fn run_bytecode(func: &Function) -> Vec<u8> {
    let compiled = CompiledKernel::compile(func);
    let mut mem = VecMemory::new();
    let buf = mem.alloc_global(GLOBAL * 8);
    let args = vec![KernelArgValue::GlobalBuffer(buf)];
    for group in 0..GLOBAL / LOCAL {
        let shape = GroupShape::linear(GLOBAL, LOCAL, group);
        let mut run = BytecodeRun::new(&compiled, shape, &args, 0).expect("args bind");
        run.run(&mut mem, &ExactMath).expect("straight-line kernels cannot trap");
    }
    mem.global_bytes(buf).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Optimised IR verifies, and all three execution paths agree bit
    /// for bit with the unoptimised reference.
    #[test]
    fn pipelines_preserve_straight_line_semantics(ops in prop::collection::vec(op_strategy(), 0..24)) {
        let func = build_kernel(&ops);
        let reference = run_walker(&func);

        for pipeline in [Pipeline::standard(), Pipeline::with_cse()] {
            let name = pipeline.name().to_owned();
            let module = Module::from_functions("randk.cl", vec![func.clone()]);
            let (optimized, report) = pipeline.run(module);
            bop_clir::verify::verify_module(&optimized)
                .unwrap_or_else(|e| panic!("pipeline `{name}` broke the IR: {e}"));
            let opt_func = optimized.kernel("randk").expect("kernel survives");
            prop_assert!(
                opt_func.inst_count() <= func.inst_count(),
                "pipeline `{}` must not grow the function", name
            );
            prop_assert!(!report.passes.is_empty(), "pipeline `{}` reports its passes", name);
            prop_assert_eq!(
                &run_walker(opt_func), &reference,
                "walker on `{}`-optimised IR diverges", name
            );
            prop_assert_eq!(
                &run_bytecode(opt_func), &reference,
                "bytecode on `{}`-optimised IR diverges", name
            );
        }
    }
}
