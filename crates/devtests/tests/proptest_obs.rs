//! Property tests on the observability layer: histogram quantile
//! invariants over random observation sets.
//!
//! The serve layer reports p50/p95/p99 from [`bop_obs::Histogram`]'s
//! log-bucketed counts, so the interpolation must never invent values
//! outside the observed range and must order percentiles correctly.

use bop_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Observations spanning the histogram's whole bucket range (1e-9 ..
/// 1e+9 with under/overflow), the regime latencies and byte counts
/// actually live in.
fn observations() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-10.0..10.0f64).prop_map(|e| 10f64.powf(e)), 1..200)
}

fn filled(values: &[f64]) -> Histogram {
    let registry = MetricsRegistry::new();
    for &v in values {
        registry.observe("q", &[], v);
    }
    registry.histogram("q", &[]).expect("observed histogram")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Quantiles are bracketed by the observed extremes, exact at the
    /// ends, and never NaN on a non-empty histogram.
    #[test]
    fn quantiles_are_bracketed_and_exact_at_the_ends(values in observations()) {
        let h = filled(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.quantile(0.0), lo);
        prop_assert_eq!(h.quantile(1.0), hi);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99] {
            let v = h.quantile(q);
            prop_assert!(v.is_finite(), "quantile({q}) must be finite, got {v}");
            prop_assert!(v >= lo && v <= hi, "quantile({q}) = {v} outside [{lo}, {hi}]");
        }
    }

    /// Quantile is monotone non-decreasing in q, including out-of-range
    /// q values (clamped to [0, 1]).
    #[test]
    fn quantile_is_monotone_in_q(values in observations(), mut qs in prop::collection::vec(-0.5..1.5f64, 2..20)) {
        let h = filled(&values);
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for q in qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < earlier quantile {prev}");
            prev = v;
        }
    }
}
