//! Property tests: the three execution engines (tree-walker, register
//! bytecode, lane-vectorized SIMT) are observationally identical.
//!
//! Strategy: generate random branchy work-group kernels — divergent
//! control flow keyed on the local id, multiply-assigned locals that
//! `mem2reg` promotes through phi nodes, barrier-separated local-memory
//! traffic, and an optional integer-division trap — then run them
//! through the full OpenCL-style runtime on every engine at several
//! worker counts and require bit-identical prices, merged `ExecStats`,
//! `QueueCounters` and the simulated clock (or the identical error, when
//! the kernel traps). A second property repeats the sweep under a seeded
//! `FaultPlan`: injected faults are deterministic in the launch
//! sequence, so they too must not depend on the engine.

use bop_core::devices;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::QueueCounters;
use bop_ocl::{BuildOptions, CommandQueue, Context, Engine, FaultPlan, Program};
use proptest::prelude::*;

/// One randomly generated kernel + launch configuration.
#[derive(Debug, Clone)]
struct Case {
    /// Work-group size (work-items per group).
    w: usize,
    /// Number of work-groups in the dispatch.
    groups: usize,
    /// Barrier-synchronised time steps.
    steps: usize,
    /// Branch divergence shape: lanes with `lid % m < r` take the
    /// then-side.
    m: usize,
    r: usize,
    /// Neighbour offset for the cross-lane local-memory read.
    shift: usize,
    /// Arithmetic constants.
    c1: f64,
    c2: f64,
    /// Lane that attempts the integer division (none if >= w).
    trap_lane: usize,
    /// Divisor for that division; zero traps.
    divisor: i32,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2usize..=8,
        1usize..=3,
        0usize..=5,
        1usize..=4,
        0usize..=3,
        0usize..=7,
        -2.0..2.0f64,
        -2.0..2.0f64,
        0usize..=12,
        0i32..=2,
    )
        .prop_map(|(w, groups, steps, m, r, shift, c1, c2, trap_lane, divisor)| Case {
            w,
            groups,
            steps,
            m,
            r,
            shift,
            c1,
            c2,
            trap_lane,
            divisor,
        })
}

impl Case {
    /// Render the kernel. `acc` and `j` are multiply-assigned locals
    /// (promoted by mem2reg, merged back through phis at the join
    /// points); the `if`/`else` diverges per lane; the local-memory
    /// round-trip is race-free because barriers separate the write from
    /// the cross-lane read.
    fn source(&self) -> String {
        let Case { w, steps, m, r, shift, c1, c2, trap_lane, .. } = self;
        format!(
            "__kernel void k(__global double* out, __global const double* in,
                             __local double* tmp, int divisor) {{
                int lid = get_local_id(0);
                int gid = get_global_id(0);
                double acc = in[gid];
                int j = 0;
                for (int t = 0; t < {steps}; t++) {{
                    if (lid % {m} < {r}) {{
                        acc = acc * {c1:?} + (double)t;
                        j = j + lid;
                    }} else {{
                        acc = acc - {c2:?};
                        j = j - 1;
                    }}
                    tmp[lid] = acc;
                    barrier(CLK_LOCAL_MEM_FENCE);
                    double nb = tmp[(lid + {shift}) % {w}];
                    barrier(CLK_LOCAL_MEM_FENCE);
                    acc = fmax(acc * 0.5, fmin(nb, acc));
                }}
                if (lid == {trap_lane}) {{
                    j = j / divisor;
                }}
                out[gid] = acc + (double)j;
            }}"
        )
    }

    /// Whether the integer division executes and traps.
    fn traps(&self) -> bool {
        self.trap_lane < self.w && self.divisor == 0
    }
}

/// Everything an engine run observes.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    result: Result<Vec<u64>, String>,
    stats: Option<bop_clir::stats::ExecStats>,
    counters: QueueCounters,
    sim_s: f64,
}

fn run_case(case: &Case, engine: Engine, workers: usize, plan: Option<&FaultPlan>) -> Outcome {
    let ctx = Context::new(devices::gpu());
    let queue = CommandQueue::new(&ctx);
    queue.set_workers(workers);
    queue.set_engine(engine);
    if let Some(p) = plan {
        queue.set_fault_plan(p.clone());
    }
    let program =
        Program::from_source(&ctx, "prop.cl", &case.source(), &BuildOptions::default())
            .expect("generated kernel compiles");
    let kernel = program.kernel("k").expect("kernel k");
    let n = case.w * case.groups;
    let out = ctx.create_buffer(8 * n);
    let input = ctx.create_buffer(8 * n);
    let init: Vec<f64> = (0..n).map(|i| 0.25 * i as f64 - 1.5).collect();
    let result = (|| -> Result<Vec<u64>, String> {
        queue.enqueue_write_f64(&input, &init).map_err(|e| e.to_string())?;
        kernel.set_arg_buffer(0, &out);
        kernel.set_arg_buffer(1, &input);
        kernel.set_arg_local(2, 8 * case.w);
        kernel.set_arg_i32(3, case.divisor);
        queue
            .enqueue_nd_range(&kernel, Dispatch::new(n, case.w))
            .map_err(|e| e.to_string())?;
        let mut prices = vec![0.0f64; n];
        queue.enqueue_read_f64(&out, &mut prices).map_err(|e| e.to_string())?;
        // Compare bit patterns so NaNs cannot mask a divergence.
        Ok(prices.iter().map(|p| p.to_bits()).collect())
    })();
    queue.finish();
    Outcome { result, stats: queue.kernel_stats("k"), counters: queue.counters(), sim_s: queue.elapsed_s() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Walk, bytecode and lanes agree bit-for-bit on random branchy
    /// kernels — prices, stats, counters, simulated time — and report
    /// the identical trap when the kernel divides by zero.
    #[test]
    fn engines_bit_identical_on_random_kernels(case in case_strategy()) {
        let reference = run_case(&case, Engine::Walk, 1, None);
        prop_assert_eq!(
            reference.result.is_err(),
            case.traps(),
            "trap prediction for {:?}",
            &case
        );
        if case.traps() {
            let msg = reference.result.as_ref().unwrap_err();
            prop_assert!(
                msg.contains("integer division by zero"),
                "unexpected trap payload `{}`",
                msg
            );
        }
        for engine in [Engine::Walk, Engine::Bytecode, Engine::Lanes] {
            for workers in [1usize, 3] {
                let got = run_case(&case, engine, workers, None);
                let what = format!("{engine} engine, {workers} worker(s), case {case:?}");
                prop_assert_eq!(&got.result, &reference.result, "result differs: {}", &what);
                prop_assert_eq!(&got.stats, &reference.stats, "stats differ: {}", &what);
                prop_assert_eq!(&got.counters, &reference.counters, "counters differ: {}", &what);
                prop_assert_eq!(got.sim_s, reference.sim_s, "sim clock differs: {}", &what);
            }
        }
    }

    /// Under a seeded fault plan the injected faults are a deterministic
    /// function of the launch sequence, so every engine still observes
    /// the identical outcome — same results or the same injected error.
    #[test]
    fn engines_bit_identical_under_seeded_faults(
        case in case_strategy(),
        seed in any::<u64>(),
        rate in 0.0..0.6f64,
    ) {
        let plan = FaultPlan::new(rate, seed);
        let reference = run_case(&case, Engine::Walk, 1, Some(&plan));
        for engine in [Engine::Bytecode, Engine::Lanes] {
            for workers in [1usize, 3] {
                let got = run_case(&case, engine, workers, Some(&plan));
                let what = format!("{engine} engine, {workers} worker(s), case {case:?}");
                prop_assert_eq!(&got.result, &reference.result, "result differs: {}", &what);
                prop_assert_eq!(&got.stats, &reference.stats, "stats differ: {}", &what);
                prop_assert_eq!(&got.counters, &reference.counters, "counters differ: {}", &what);
                prop_assert_eq!(got.sim_s, reference.sim_s, "sim clock differs: {}", &what);
            }
        }
    }
}
