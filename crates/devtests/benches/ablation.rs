//! Ablation-adjacent benches: the reference software at paper scale (the
//! actual wall-clock of the "reference software written in C", here Rust),
//! and the host-leaves fallback overhead.

use bop_core::{Accelerator, KernelArch, Precision};
use bop_cpu::{Precision as CpuPrecision, ReferenceSoftware};
use bop_finance::workload;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn reference_software(c: &mut Criterion) {
    let sw = ReferenceSoftware::new();
    let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 2, 3);
    let mut g = c.benchmark_group("reference_software_n1023");
    g.sample_size(10);
    g.throughput(Throughput::Elements(options.len() as u64));
    g.bench_function("double", |b| {
        b.iter(|| black_box(sw.price_batch(&options, 1023, CpuPrecision::Double)))
    });
    g.bench_function("single", |b| {
        b.iter(|| black_box(sw.price_batch(&options, 1023, CpuPrecision::Single)))
    });
    g.finish();
}

fn host_leaves_fallback(c: &mut Criterion) {
    let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 4);
    let mut g = c.benchmark_group("fallback_n64");
    g.sample_size(20);
    for (name, arch) in
        [("device_pow", KernelArch::Optimized), ("host_leaves", KernelArch::OptimizedHostLeaves)]
    {
        let acc = Accelerator::builder(bop_core::devices::fpga())
            .arch(arch)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        g.bench_function(name, |b| b.iter(|| black_box(acc.price(&options).expect("prices"))));
    }
    g.finish();
}

criterion_group!(benches, reference_software, host_leaves_fallback);
criterion_main!(benches);
