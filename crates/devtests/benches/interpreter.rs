//! Interpreter throughput: how fast the simulator itself runs (node
//! updates per second), and the native reference pricer for contrast.

use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
use bop_clir::mathlib::{DeviceMath, ExactMath};
use bop_clir::value::Value;
use bop_finance::binomial::{price_american_f64, tree_nodes};
use bop_finance::OptionParams;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn interp_optimized_kernel(c: &mut Criterion) {
    let n: usize = 64;
    let src = bop_core::KernelArch::Optimized.source(bop_core::Precision::Double);
    let module = bop_clc::compile("k.cl", &src, &bop_clc::Options::default()).expect("compiles");
    let func = module.kernel("binomial_option").expect("kernel");
    let option = OptionParams::example();
    let coeffs = {
        let c = bop_finance::CrrParams::from_option(&option, n);
        [option.spot, option.strike, c.u, c.pd, c.qd, 1.0]
    };

    let mut g = c.benchmark_group("interp");
    g.throughput(Throughput::Elements(tree_nodes(n)));
    g.bench_function("binomial_option_workgroup", |b| {
        b.iter(|| {
            let mut mem = VecMemory::new();
            let params = mem.alloc_global(6 * 8);
            for (i, v) in coeffs.iter().enumerate() {
                mem.write_f64(params, i, *v);
            }
            let results = mem.alloc_global(8);
            let local = mem.alloc_local((n + 1) * 8);
            let shape = GroupShape::linear(n + 1, n + 1, 0);
            let mut run = WorkGroupRun::new(
                func,
                shape,
                &[
                    KernelArgValue::GlobalBuffer(params),
                    KernelArgValue::GlobalBuffer(results),
                    KernelArgValue::LocalBuffer(local),
                    KernelArgValue::Scalar(Value::I32(n as i32)),
                ],
                0,
            )
            .expect("args");
            run.run(&mut mem, &DeviceMath::altera_13_0()).expect("runs");
            black_box(mem.read_f64(results, 0))
        })
    });
    g.finish();
}

fn native_reference(c: &mut Criterion) {
    let option = OptionParams::example();
    let mut g = c.benchmark_group("native");
    for n in [256usize, 1024] {
        g.throughput(Throughput::Elements(tree_nodes(n)));
        g.bench_function(format!("price_american_f64/{n}"), |b| {
            b.iter(|| black_box(price_american_f64(black_box(&option), n)))
        });
    }
    g.finish();
}

fn softmath(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmath");
    g.bench_function("pow_full", |b| {
        b.iter(|| black_box(bop_clir::softmath::pow(black_box(1.0065), black_box(512.0), None)))
    });
    g.bench_function("pow_quantized", |b| {
        b.iter(|| black_box(bop_clir::softmath::pow(black_box(1.0065), black_box(512.0), Some(16))))
    });
    use bop_clir::mathlib::MathLib;
    g.bench_function("libm_pow", |b| {
        b.iter(|| black_box(ExactMath.pow64(black_box(1.0065), black_box(512.0))))
    });
    g.finish();
}

criterion_group!(benches, interp_optimized_kernel, native_reference, softmath);
criterion_main!(benches);
