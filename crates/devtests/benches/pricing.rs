//! End-to-end accelerator benches: functional pricing and paper-scale
//! projection (Table II's machinery).

use bop_core::{Accelerator, KernelArch, Precision};
use bop_finance::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn functional_pricing(c: &mut Criterion) {
    let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 1);
    let mut g = c.benchmark_group("price_functional_n64");
    g.sample_size(20);
    for (name, device) in [
        ("fpga", bop_core::devices::fpga()),
        ("gpu", bop_core::devices::gpu()),
        ("cpu", bop_core::devices::cpu()),
    ] {
        let acc = Accelerator::builder(device)
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        g.bench_function(name, |b| b.iter(|| black_box(acc.price(&options).expect("prices"))));
    }
    g.finish();
}

fn projection(c: &mut Criterion) {
    let mut g = c.benchmark_group("project_paper_scale");
    g.sample_size(10);
    let acc = Accelerator::builder(bop_core::devices::fpga())
        .arch(KernelArch::Optimized)
        .precision(Precision::Double)
        .n_steps(1023)
        .build()
        .expect("builds");
    // Warm the calibration cache so the bench measures the replay.
    acc.calibrate().expect("calibrates");
    g.bench_function("fpga_iv_b_2000_options", |b| {
        b.iter(|| black_box(acc.project(2000).expect("projects")))
    });
    g.finish();
}

criterion_group!(benches, functional_pricing, projection);
criterion_main!(benches);
