//! Compiler-path benches: front-end, FPGA fit, full program build.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("clc");
    for arch in [bop_core::KernelArch::Straightforward, bop_core::KernelArch::Optimized] {
        let src = arch.source(bop_core::Precision::Double);
        g.bench_function(format!("compile/{}", arch.kernel_name()), |b| {
            b.iter(|| {
                bop_clc::compile("k.cl", black_box(&src), &bop_clc::Options::default())
                    .expect("compiles")
            })
        });
    }
    g.finish();
}

fn fpga_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpga");
    for arch in [bop_core::KernelArch::Straightforward, bop_core::KernelArch::Optimized] {
        let src = arch.source(bop_core::Precision::Double);
        let module = std::sync::Arc::new(
            bop_clc::compile("k.cl", &src, &bop_clc::Options::default()).expect("compiles"),
        );
        let device = bop_fpga::FpgaDevice::de4();
        let build = arch.paper_build_options();
        g.bench_function(format!("fit/{}", arch.kernel_name()), |b| {
            b.iter(|| {
                use bop_ocl::Device;
                device.compile(black_box(module.clone()), &build).expect("fits")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, frontend, fpga_fit);
criterion_main!(benches);
