//! # bop-gpu — a GTX660-class SIMT GPU device model
//!
//! The paper's development and comparison target: an NVIDIA GeForce GTX660
//! with (per the paper's Section V.A and its reference \[14\]) 960 streaming processors in
//! 5 compute units, one double-precision ALU per 8 single-precision cores
//! (120 DP ALUs), a 980 MHz core clock, 2 GB of GDDR5 at 144 GB/s, PCIe 3.0
//! x16, and a 140 W TDP.
//!
//! The timing model is a throughput (roofline) model over the dynamic
//! operation counts collected by the interpreter: simple FP operations cost
//! one ALU slot, hard operations (divide, transcendental, `pow`) cost a
//! documented multiple, integer/control traffic rides the SP cores, and
//! memory-bound kernels hit the GDDR5 roof. Two efficiency factors — the
//! achieved fraction of DP and SP peak — are the model's only fitted
//! constants, anchored on the paper's Table II kernel IV.B rows (8 900
//! options/s double, 47 000 single) and frozen.
//!
//! The GPU runs with exact math: the paper reports no accuracy issue on
//! this platform ("The same kernel implemented on GPU has no accuracy
//! issues", Section V.C).

use bop_clir::ir::Module;
use bop_clir::mathlib::{ExactMath, MathLib};
use bop_clir::stats::ExecStats;
use bop_ocl::{
    BuildError, BuildOptions, BuildReport, Device, DeviceKind, DeviceProgram, Dispatch, LinkModel,
};
use std::sync::Arc;

/// Fitted fraction of double-precision peak a real kernel sustains
/// (launches, local-memory traffic and barriers included). Anchored on
/// Table II: 8 900 options/s in double precision.
pub const DP_EFFICIENCY: f64 = 0.32;
/// Fitted fraction of single-precision peak. Anchored on Table II:
/// 47 000 options/s in single precision.
pub const SP_EFFICIENCY: f64 = 0.33;
/// ALU-slot cost of a hard FP operation (divide/sqrt/exp/log).
pub const HARD_OP_SLOTS: f64 = 20.0;
/// ALU-slot cost of `pow` (log + multiply + exp pipeline).
pub const POW_SLOTS: f64 = 44.0;
/// Kernel launch overhead, seconds.
pub const LAUNCH_OVERHEAD_S: f64 = 12e-6;

/// The GTX660 board model.
pub struct GpuDevice {
    info: bop_ocl::device::DeviceInfo,
    sp_cores: f64,
    dp_alus: f64,
    clock_hz: f64,
}

impl GpuDevice {
    /// The paper's NVIDIA GeForce GTX660.
    ///
    /// The PCIe effective bandwidth (4.5% of the x16 gen3 peak) is calibrated
    /// on the paper's transfer-bound kernel IV.A row (53 options/s with a
    /// full ping-pong buffer read per batch) — pageable-memory OpenCL
    /// transfers with per-batch synchronisation sit far below link peak.
    pub fn gtx660() -> Arc<GpuDevice> {
        Arc::new(GpuDevice {
            info: bop_ocl::device::DeviceInfo {
                name: "NVIDIA GeForce GTX660".into(),
                kind: DeviceKind::Gpu,
                compute_units: 5,
                global_mem_bytes: 2 << 30,
                local_mem_bytes: 48 << 10,
                max_work_group_size: 1024,
                global_bw_bytes_per_s: 144e9,
                link: LinkModel { peak_bytes_per_s: 15.75e9, efficiency: 0.045, latency_s: 8e-6 },
                command_overhead_s: 60e-6,
                session_setup_s: 3.0,
                power_watts: 140.0, // TDP, the paper's energy denominator
            },
            sp_cores: 960.0,
            dp_alus: 120.0,
            clock_hz: 980e6,
        })
    }
}

impl Device for GpuDevice {
    fn info(&self) -> &bop_ocl::device::DeviceInfo {
        &self.info
    }

    fn compile(
        &self,
        module: Arc<Module>,
        _options: &BuildOptions,
    ) -> Result<Arc<dyn DeviceProgram>, BuildError> {
        if module.kernels().next().is_none() {
            return Err(BuildError::new("module contains no kernels"));
        }
        // SIMD/replication directives are Altera-specific; the GPU JIT
        // ignores them (documented behaviour, matching the paper running
        // the same sources on both targets).
        Ok(Arc::new(GpuProgram {
            module,
            math: ExactMath,
            device_name: self.info.name.clone(),
            sp_peak: self.sp_cores * self.clock_hz,
            dp_peak: self.dp_alus * self.clock_hz,
            clock_hz: self.clock_hz,
            mem_bw: self.info.global_bw_bytes_per_s,
            tdp: self.info.power_watts,
        }))
    }
}

/// A JIT-compiled GPU program with its throughput model.
pub struct GpuProgram {
    module: Arc<Module>,
    math: ExactMath,
    device_name: String,
    sp_peak: f64,
    dp_peak: f64,
    clock_hz: f64,
    mem_bw: f64,
    tdp: f64,
}

impl DeviceProgram for GpuProgram {
    fn module(&self) -> &Arc<Module> {
        &self.module
    }

    fn math(&self) -> &dyn MathLib {
        &self.math
    }

    fn report(&self) -> BuildReport {
        BuildReport {
            device: self.device_name.clone(),
            kernels: self.module.kernels().map(|k| k.name.clone()).collect(),
            clock_hz: self.clock_hz,
            resources: None,
            logic_utilization: None,
            power_watts: self.tdp,
            passes: None,
        }
    }

    fn kernel_time(&self, _kernel: &str, _dispatch: &Dispatch, stats: &ExecStats) -> f64 {
        let ops = &stats.ops;
        let dp_slots = ops.simple_flops(true) as f64
            + HARD_OP_SLOTS * (ops.div64 + ops.transc64 + ops.sqrt64) as f64
            + POW_SLOTS * ops.pow64 as f64
            + ops.cmp as f64 * 0.5; // comparisons mostly pair with FP ops
        let sp_slots = ops.simple_flops(false) as f64
            + HARD_OP_SLOTS * (ops.div32 + ops.transc32 + ops.sqrt32) as f64
            + POW_SLOTS * ops.pow32 as f64
            + (ops.int_alu + ops.select + ops.cast + ops.mov + ops.wi_query) as f64 * 0.25;
        let t_dp = dp_slots / (self.dp_peak * DP_EFFICIENCY);
        let t_sp = sp_slots / (self.sp_peak * SP_EFFICIENCY);
        // Local memory rides the register/shared-memory path (folded into
        // the efficiency factors); global memory hits GDDR5.
        let t_mem = stats.mem.global_bytes() as f64 / self.mem_bw;
        LAUNCH_OVERHEAD_S + (t_dp + t_sp).max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_ocl::{CommandQueue, Context, Program};

    const KERNEL: &str = "__kernel void k(__global double* o) {
        size_t g = get_global_id(0);
        o[g] = o[g] * 1.5 + 2.0;
    }";

    #[test]
    fn device_info_matches_paper_section_5a() {
        let gpu = GpuDevice::gtx660();
        let info = gpu.info();
        assert_eq!(info.compute_units, 5);
        assert_eq!(info.power_watts, 140.0);
        assert_eq!(info.global_mem_bytes, 2 << 30);
        assert!((info.global_bw_bytes_per_s - 144e9).abs() < 1.0);
    }

    #[test]
    fn executes_kernels_with_exact_math() {
        let gpu = GpuDevice::gtx660();
        let ctx = Context::new(gpu);
        let q = CommandQueue::new(&ctx);
        let p =
            Program::from_source(&ctx, "t.cl", KERNEL, &BuildOptions::default()).expect("builds");
        let buf = ctx.create_buffer(4 * 8);
        q.enqueue_write_f64(&buf, &[1.0, 2.0, 3.0, 4.0]).expect("write");
        let k = p.kernel("k").expect("kernel");
        k.set_arg_buffer(0, &buf);
        q.enqueue_nd_range(&k, Dispatch::new(4, 4)).expect("launch");
        let mut out = [0.0; 4];
        q.enqueue_read_f64(&buf, &mut out).expect("read");
        assert_eq!(out, [3.5, 5.0, 6.5, 8.0]);
    }

    #[test]
    fn double_precision_is_modeled_slower_than_single() {
        let gpu = GpuDevice::gtx660();
        let module = Arc::new(
            bop_clc::compile("t.cl", KERNEL, &bop_clc::Options::default()).expect("compiles"),
        );
        let prog = gpu.compile(module, &BuildOptions::default()).expect("builds");
        let mut dp = ExecStats::with_blocks(1);
        dp.ops.mul64 = 1_000_000;
        dp.ops.add64 = 1_000_000;
        let mut sp = ExecStats::with_blocks(1);
        sp.ops.mul32 = 1_000_000;
        sp.ops.add32 = 1_000_000;
        let d = Dispatch::new(1024, 256);
        let t_dp = prog.kernel_time("k", &d, &dp);
        let t_sp = prog.kernel_time("k", &d, &sp);
        assert!(t_dp > t_sp * 3.0, "DP ALUs are 1:8 with lower efficiency gap: {t_dp} vs {t_sp}");
    }

    #[test]
    fn pow_costs_more_than_mul() {
        let gpu = GpuDevice::gtx660();
        let module = Arc::new(
            bop_clc::compile("t.cl", KERNEL, &bop_clc::Options::default()).expect("compiles"),
        );
        let prog = gpu.compile(module, &BuildOptions::default()).expect("builds");
        let mut muls = ExecStats::with_blocks(1);
        muls.ops.mul64 = 1_000_000;
        let mut pows = ExecStats::with_blocks(1);
        pows.ops.pow64 = 1_000_000;
        let d = Dispatch::new(1024, 256);
        assert!(prog.kernel_time("k", &d, &pows) > prog.kernel_time("k", &d, &muls) * 10.0);
    }

    #[test]
    fn memory_bound_kernels_hit_the_gddr_roof() {
        let gpu = GpuDevice::gtx660();
        let module = Arc::new(
            bop_clc::compile("t.cl", KERNEL, &bop_clc::Options::default()).expect("compiles"),
        );
        let prog = gpu.compile(module, &BuildOptions::default()).expect("builds");
        let mut s = ExecStats::with_blocks(1);
        s.ops.add64 = 100;
        s.mem.global_load_bytes = 144_000_000_000; // 1 second at peak
        let t = prog.kernel_time("k", &Dispatch::new(1024, 256), &s);
        assert!((t - 1.0).abs() < 0.01, "expected ~1 s, got {t}");
    }
}
