//! A minimal JSON value, writer and parser.
//!
//! The workspace has no registry dependencies (it must build offline), so
//! instead of `serde_json` this module provides the small subset the
//! observability layer needs: building values programmatically, emitting
//! them as compact standard JSON, and parsing JSON back (used by the test
//! suite to validate every emitted artifact round-trips).
//!
//! Numbers are kept as `f64`; non-finite values serialise as `null`,
//! matching what Chrome's trace viewer and most ingestion pipelines
//! expect from JSON (which has no NaN/Infinity literals).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the serialisation of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialised via the shortest `f64` round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key`, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers up to 2^53 print without an exponent or
                    // trailing `.0`, everything else via `{}` on f64.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict: exactly one value plus whitespace).
    ///
    /// # Errors
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    /// Compact JSON serialisation (`doc.to_string()` emits the document).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or_else(|| "empty".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Json::obj([
            ("name", Json::str("kernel IV.B")),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::str("two")])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).expect("parses"), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = Json::str("a\"b\\c\nd\u{1}");
        let text = s.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).expect("parses"), s);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"rows":[{"metric":"options/s","paper":2400,"measured":2210.5}]}"#)
            .expect("parses");
        let rows = v.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows[0].get("paper").and_then(Json::as_f64), Some(2400.0));
        assert_eq!(rows[0].get("metric").and_then(Json::as_str), Some("options/s"));
    }
}
