//! Machine-readable experiment reports.
//!
//! Every `bop-bench` binary emits, besides its human-readable table, one
//! [`ExperimentReport`] with a stable schema:
//!
//! ```json
//! {
//!   "experiment": "table2",
//!   "rows": [
//!     {"metric": "fpga_ivb_double.options_per_s",
//!      "paper": 2320.0, "measured": 2287.4, "unit": "options/s"}
//!   ],
//!   "counters": {"ocl.commands": 42},
//!   "wall_s": 1.73
//! }
//! ```
//!
//! `paper` is `null` for metrics with no published reference value (the
//! paper reports no RMSE for the CPU row, for example). Downstream
//! tooling diffs `measured` against `paper` without screen-scraping the
//! tables.

use crate::json::Json;
use std::collections::BTreeMap;

/// One metric row: a measured value and, when the paper publishes one,
/// the reference value to compare against.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Dotted metric path, e.g. `"fpga_ivb_double.options_per_s"`.
    pub metric: String,
    /// Published value from the paper, if any.
    pub paper: Option<f64>,
    /// Value this run produced.
    pub measured: f64,
    /// Unit string, e.g. `"options/s"`, `"W"`, `"USD"`.
    pub unit: String,
}

impl ReportRow {
    /// Relative deviation `(measured - paper) / paper`, when a paper
    /// value exists and is non-zero.
    pub fn rel_error(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some((self.measured - p) / p),
            _ => None,
        }
    }
}

/// A complete experiment report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentReport {
    /// Experiment name (matches the binary: `table1`, `table2`, ...).
    pub experiment: String,
    /// Metric rows in presentation order.
    pub rows: Vec<ReportRow>,
    /// Named counters captured during the run (queue command counts,
    /// transferred bytes, ...).
    pub counters: BTreeMap<String, u64>,
    /// Real wall-clock seconds the experiment took to simulate.
    pub wall_s: f64,
}

impl ExperimentReport {
    /// An empty report for `experiment`.
    pub fn new(experiment: &str) -> ExperimentReport {
        ExperimentReport { experiment: experiment.to_string(), ..Default::default() }
    }

    /// Append a row.
    pub fn push(
        &mut self,
        metric: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &str,
    ) {
        self.rows.push(ReportRow {
            metric: metric.into(),
            paper,
            measured,
            unit: unit.to_string(),
        });
    }

    /// Record a counter (last write wins).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Serialise to the stable JSON schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("experiment", Json::str(self.experiment.clone())),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("metric", Json::str(r.metric.clone())),
                                ("paper", r.paper.map_or(Json::Null, Json::Num)),
                                ("measured", Json::Num(r.measured)),
                                ("unit", Json::str(r.unit.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
                ),
            ),
            ("wall_s", Json::Num(self.wall_s)),
        ])
    }

    /// Parse a report back from its JSON form (used by tests and
    /// downstream tooling).
    ///
    /// # Errors
    /// Returns a message describing the first schema violation.
    pub fn from_json(text: &str) -> Result<ExperimentReport, String> {
        let doc = Json::parse(text)?;
        let experiment =
            doc.get("experiment").and_then(Json::as_str).ok_or("missing `experiment`")?.to_string();
        let rows_json = doc.get("rows").and_then(Json::as_arr).ok_or("missing `rows`")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            let metric = row
                .get("metric")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i}: missing `metric`"))?
                .to_string();
            let paper = match row.get("paper") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| format!("row {i}: bad `paper`"))?),
            };
            let measured = row
                .get("measured")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing `measured`"))?;
            let unit = row
                .get("unit")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i}: missing `unit`"))?
                .to_string();
            rows.push(ReportRow { metric, paper, measured, unit });
        }
        let mut counters = BTreeMap::new();
        if let Some(Json::Obj(map)) = doc.get("counters") {
            for (k, v) in map {
                let n = v.as_f64().ok_or_else(|| format!("counter `{k}`: not a number"))?;
                counters.insert(k.clone(), n as u64);
            }
        }
        let wall_s = doc.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
        Ok(ExperimentReport { experiment, rows, counters, wall_s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = ExperimentReport::new("table2");
        r.push("fpga_ivb_double.options_per_s", Some(2320.0), 2287.4, "options/s");
        r.push("cpu.rmse", None, 1.1e-4, "USD");
        r.set_counter("ocl.commands", 42);
        r.wall_s = 1.73;

        let text = r.to_json().to_string();
        let back = ExperimentReport::from_json(&text).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn rel_error_needs_a_paper_value() {
        let row =
            ReportRow { metric: "x".into(), paper: Some(100.0), measured: 90.0, unit: "u".into() };
        assert!((row.rel_error().expect("some") + 0.1).abs() < 1e-12);
        let row = ReportRow { metric: "x".into(), paper: None, measured: 90.0, unit: "u".into() };
        assert_eq!(row.rel_error(), None);
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(ExperimentReport::from_json("{}").is_err());
        assert!(ExperimentReport::from_json(r#"{"experiment":"x"}"#).is_err());
        assert!(
            ExperimentReport::from_json(r#"{"experiment":"x","rows":[{"metric":"m"}]}"#).is_err()
        );
        // Minimal valid document.
        let r = ExperimentReport::from_json(r#"{"experiment":"x","rows":[]}"#).expect("ok");
        assert_eq!(r.experiment, "x");
        assert!(r.rows.is_empty());
    }
}
