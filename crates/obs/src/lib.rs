//! # bop-obs — workspace-wide observability
//!
//! The shared observability layer of the DATE 2014 reproduction. Three
//! pillars, all over the *simulated* timeline (the command queue's
//! clock), all dependency-free so the workspace builds offline:
//!
//! * [`metrics`] — a labeled metrics registry (counters, gauges,
//!   histograms) populated by the `bop-ocl` command queue, the
//!   `bop-clir` interpreter, and the device models; program builds
//!   contribute the `compile.*` histogram family (frontend, pass
//!   pipeline, device compile, bytecode emission and total seconds,
//!   labelled by device);
//! * [`trace`] — structured span tracing with parent/child linkage
//!   (host-program phases → queue commands → barrier phases),
//!   exportable as Chrome trace-event JSON that loads in Perfetto;
//! * [`report`] — the stable machine-readable experiment report schema
//!   every `bop-bench` binary emits
//!   (`{experiment, rows: [{metric, paper, measured, unit}], counters,
//!   wall_s}`);
//! * [`json`] — the hand-rolled JSON value/writer/parser the other
//!   modules build on.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

pub use json::Json;
pub use metrics::{Histogram, Labels, MetricsRegistry, Series};
pub use report::{ExperimentReport, ReportRow};
pub use trace::{SpanCategory, TraceLog, TraceSpan};
