//! A labeled metrics registry: counters, gauges and histograms.
//!
//! Series are identified by a metric name plus a sorted label set —
//! `("device", "fpga"), ("kernel", "binomial_option"), ("precision",
//! "double")` — the shape every metrics backend (Prometheus, OpenMetrics,
//! statsd tags) understands, so a future exporter is a formatting
//! exercise. Producers across the workspace publish here: the `bop-ocl`
//! command queue (command counts, transferred bytes, simulated busy
//! time), the `bop-clir` interpreter (executed-operation classes via the
//! [`ExecStats` bridge](crate::metrics::MetricsRegistry)), and the device
//! models (power, clock, bandwidth characteristics).
//!
//! The registry is `Sync` (a `Mutex` around a map) and cheap enough for
//! the simulator's command rates; it is not a lock-free hot-path design,
//! and does not need to be — one simulated command is thousands of
//! interpreted instructions.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// Normalise a label slice into the canonical sorted form.
fn canon(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

/// A histogram with fixed logarithmic buckets (powers of ten from 1e-9
/// up to 1e+9), plus exact sum/count/min/max. Enough resolution to
/// distinguish "nanoseconds" from "milliseconds" in simulated durations
/// and "bytes" from "megabytes" in transfer sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket; the last slot is the overflow
    /// bucket (`> bounds.last()`).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (NaN when empty).
    pub min: f64,
    /// Largest observation (NaN when empty).
    pub max: f64,
}

impl Histogram {
    fn new() -> Histogram {
        let bounds: Vec<f64> = (-9..=9).map(|e| 10f64.powi(e)).collect();
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, count: 0, sum: 0.0, min: f64::NAN, max: f64::NAN }
    }

    fn observe(&mut self, value: f64) {
        let slot = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = if self.min.is_nan() { value } else { self.min.min(value) };
        self.max = if self.max.is_nan() { value } else { self.max.max(value) };
    }

    /// Mean observation (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation inside the log buckets, tightened by the exact
    /// min/max: `quantile(0.0) == min`, `quantile(1.0) == max`, and the
    /// result is monotone in `q` and always bracketed by `[min, max]`.
    /// NaN when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c;
            if through as f64 >= target {
                // Bucket edges, tightened by the observed extremes. The
                // lower edge can only rise to `min` (the smallest value
                // lands in the first non-empty bucket) and the upper
                // edge can only fall to `max`, so edges stay ordered
                // across buckets and the interpolation stays monotone.
                let lo = if slot == 0 { self.min } else { self.bounds[slot - 1] }.max(self.min);
                let hi = if slot < self.bounds.len() { self.bounds[slot] } else { self.max }
                    .min(self.max);
                let (lo, hi) = (lo.min(hi), hi.max(lo));
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            below = through;
        }
        self.max
    }
}

/// One exported series: name, labels and current value.
#[derive(Debug, Clone, PartialEq)]
pub enum Series {
    /// Monotone counter.
    Counter {
        /// Metric name.
        name: String,
        /// Label set.
        labels: Labels,
        /// Current total.
        value: u64,
    },
    /// Point-in-time gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Label set.
        labels: Labels,
        /// Current value.
        value: f64,
    },
    /// Distribution of observations.
    Hist {
        /// Metric name.
        name: String,
        /// Label set.
        labels: Labels,
        /// The histogram.
        hist: Histogram,
    },
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<(String, Labels), u64>,
    gauges: BTreeMap<(String, Labels), f64>,
    hists: BTreeMap<(String, Labels), Histogram>,
}

/// The registry. Share it as an `Arc<MetricsRegistry>`; every producer
/// method takes `&self`.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the counter `name{labels}` (created at zero on
    /// first touch).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry((name.to_string(), canon(labels))).or_insert(0) += delta;
    }

    /// Set the gauge `name{labels}`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert((name.to_string(), canon(labels)), value);
    }

    /// Add `delta` to the gauge `name{labels}` (created at zero).
    pub fn add_gauge(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.gauges.entry((name.to_string(), canon(labels))).or_insert(0.0) += delta;
    }

    /// Record one observation into the histogram `name{labels}`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .hists
            .entry((name.to_string(), canon(labels)))
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// Current value of a counter, zero if never touched.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.counters.get(&(name.to_string(), canon(labels))).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        inner.gauges.get(&(name.to_string(), canon(labels))).copied()
    }

    /// Snapshot of a histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let inner = self.inner.lock().unwrap();
        inner.hists.get(&(name.to_string(), canon(labels))).cloned()
    }

    /// Sum of a counter across all label sets (e.g. total commands over
    /// every kind).
    pub fn counter_total(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.counters.iter().filter(|((n, _), _)| n == name).map(|(_, v)| v).sum()
    }

    /// Every series, sorted by (name, labels), for export.
    pub fn snapshot(&self) -> Vec<Series> {
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::new();
        for ((name, labels), &value) in &inner.counters {
            out.push(Series::Counter { name: name.clone(), labels: labels.clone(), value });
        }
        for ((name, labels), &value) in &inner.gauges {
            out.push(Series::Gauge { name: name.clone(), labels: labels.clone(), value });
        }
        for ((name, labels), hist) in &inner.hists {
            out.push(Series::Hist {
                name: name.clone(),
                labels: labels.clone(),
                hist: hist.clone(),
            });
        }
        out
    }

    /// Export every series as a JSON array:
    /// `[{type, name, labels: {...}, ...}, ...]`.
    pub fn to_json(&self) -> Json {
        let series = self.snapshot();
        Json::Arr(
            series
                .into_iter()
                .map(|s| {
                    let labels_json = |labels: &Labels| {
                        Json::Obj(
                            labels.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect(),
                        )
                    };
                    match s {
                        Series::Counter { name, labels, value } => Json::obj([
                            ("type", Json::str("counter")),
                            ("name", Json::str(name)),
                            ("labels", labels_json(&labels)),
                            ("value", Json::Num(value as f64)),
                        ]),
                        Series::Gauge { name, labels, value } => Json::obj([
                            ("type", Json::str("gauge")),
                            ("name", Json::str(name)),
                            ("labels", labels_json(&labels)),
                            ("value", Json::Num(value)),
                        ]),
                        Series::Hist { name, labels, hist } => Json::obj([
                            ("type", Json::str("histogram")),
                            ("name", Json::str(name)),
                            ("labels", labels_json(&labels)),
                            ("count", Json::Num(hist.count as f64)),
                            ("sum", Json::Num(hist.sum)),
                            ("min", Json::Num(hist.min)),
                            ("max", Json::Num(hist.max)),
                            ("mean", Json::Num(hist.mean())),
                        ]),
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::new();
        r.inc("ocl.commands", &[("kind", "write")], 2);
        r.inc("ocl.commands", &[("kind", "read")], 1);
        r.inc("ocl.commands", &[("kind", "write")], 3);
        assert_eq!(r.counter_value("ocl.commands", &[("kind", "write")]), 5);
        assert_eq!(r.counter_value("ocl.commands", &[("kind", "read")]), 1);
        assert_eq!(r.counter_total("ocl.commands"), 6);
        // Label order must not matter.
        r.inc("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter_value("x", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = MetricsRegistry::new();
        r.set_gauge("device.power_watts", &[("device", "fpga")], 17.0);
        assert_eq!(r.gauge_value("device.power_watts", &[("device", "fpga")]), Some(17.0));
        r.add_gauge("sim.elapsed_s", &[], 0.5);
        r.add_gauge("sim.elapsed_s", &[], 0.25);
        assert_eq!(r.gauge_value("sim.elapsed_s", &[]), Some(0.75));
        assert_eq!(r.gauge_value("sim.elapsed_s", &[("no", "such")]), None);
    }

    #[test]
    fn histograms_track_distribution() {
        let r = MetricsRegistry::new();
        for v in [1e-6, 2e-6, 1e-3, 5.0] {
            r.observe("xfer.seconds", &[("dir", "h2d")], v);
        }
        let h = r.histogram("xfer.seconds", &[("dir", "h2d")]).expect("hist");
        assert_eq!(h.count, 4);
        assert!((h.sum - 5.001003).abs() < 1e-9);
        assert_eq!(h.min, 1e-6);
        assert_eq!(h.max, 5.0);
        assert!(h.mean() > 1.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantile_is_monotone_bracketed_and_exact_at_the_ends() {
        let r = MetricsRegistry::new();
        assert!(Histogram::new().quantile(0.5).is_nan(), "empty histogram has no quantiles");
        let values = [1e-6, 2e-6, 3e-6, 1e-3, 2e-3, 0.7, 5.0, 90.0];
        for v in values {
            r.observe("lat", &[], v);
        }
        let h = r.histogram("lat", &[]).expect("hist");
        assert_eq!(h.quantile(0.0), 1e-6);
        assert_eq!(h.quantile(1.0), 90.0);
        assert_eq!(h.quantile(-3.0), h.min, "q is clamped");
        assert_eq!(h.quantile(7.0), h.max, "q is clamped");
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile must be monotone in q: q={q} gave {v} < {prev}");
            assert!(h.min <= v && v <= h.max, "quantile must stay inside [min, max]");
            prev = v;
        }
        // Half the observations sit at or below 2e-3, so the median
        // interpolates inside the bucket that holds it.
        assert!(h.quantile(0.5) <= 1e-2, "median stays near the small observations");
    }

    #[test]
    fn single_value_histogram_has_flat_quantiles() {
        let r = MetricsRegistry::new();
        r.observe("one", &[], 0.25);
        let h = r.histogram("one", &[]).expect("hist");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.25);
        }
    }

    #[test]
    fn snapshot_and_json_are_deterministic() {
        let r = MetricsRegistry::new();
        r.inc("b.counter", &[], 1);
        r.inc("a.counter", &[("k", "v")], 2);
        r.set_gauge("g", &[], 1.5);
        r.observe("h", &[], 0.1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        let json = r.to_json().to_string();
        let parsed = Json::parse(&json).expect("valid JSON");
        assert_eq!(parsed.as_arr().expect("array").len(), 4);
        assert_eq!(json, r.to_json().to_string(), "deterministic output");
    }
}
