//! Structured span tracing over the *simulated* timeline.
//!
//! Every span carries times in simulated seconds (the command queue's
//! clock), a stable id, and an optional parent id, so the hierarchy
//! host-program phase → queue command → barrier phase is preserved.
//! [`TraceLog::to_chrome_json`] exports the whole collection in the
//! Chrome trace-event format (`{"traceEvents": [...]}` with complete
//! `ph:"X"` events, microsecond timestamps), which loads directly into
//! Perfetto / `chrome://tracing`.
//!
//! Track assignment: each span names a `track` (e.g. `"host"`,
//! `"queue"`, `"kernel:binomial_option"`); tracks map to Chrome `tid`s
//! within one process so related spans stack into swim-lanes.

use crate::json::Json;
use std::collections::BTreeMap;

/// What produced a span. The category string becomes the Chrome `cat`
/// field and makes filtering in the viewer practical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCategory {
    /// A host-program phase (e.g. one IV.A timestep batch, or the IV.B
    /// write/launch/read sequence).
    Host,
    /// A queue command: buffer write (host→device).
    TransferH2D,
    /// A queue command: buffer read (device→host).
    TransferD2H,
    /// A queue command: device-side copy or fill.
    DeviceMem,
    /// A kernel NDRange execution.
    Kernel,
    /// A barrier-delimited phase inside one kernel execution.
    BarrierPhase,
    /// A whole serving request, admission to completion.
    ServeRequest,
    /// Time a request chunk waited in the submission queue.
    ServeQueueWait,
    /// A micro-batch lingering/forming in the batcher.
    ServeBatch,
    /// One pricing attempt of a micro-batch on a shard.
    ServeExec,
    /// A local retry marker after a retryable fault.
    ServeRetry,
    /// A batch handed from a failing shard to a healthy peer.
    ServeRedispatch,
}

impl SpanCategory {
    /// The Chrome `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCategory::Host => "host",
            SpanCategory::TransferH2D => "h2d",
            SpanCategory::TransferD2H => "d2h",
            SpanCategory::DeviceMem => "devmem",
            SpanCategory::Kernel => "kernel",
            SpanCategory::BarrierPhase => "barrier_phase",
            SpanCategory::ServeRequest => "serve.request",
            SpanCategory::ServeQueueWait => "serve.queue_wait",
            SpanCategory::ServeBatch => "serve.batch",
            SpanCategory::ServeExec => "serve.exec",
            SpanCategory::ServeRetry => "serve.retry",
            SpanCategory::ServeRedispatch => "serve.redispatch",
        }
    }
}

/// One completed span on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Stable id, unique within one [`TraceLog`].
    pub id: u64,
    /// Parent span id, if nested under another span.
    pub parent: Option<u64>,
    /// Human-readable name (e.g. `"enqueue_nd_range(binomial_option)"`).
    pub name: String,
    /// Category for filtering.
    pub category: SpanCategory,
    /// Swim-lane name; spans sharing a track render on one row group.
    pub track: String,
    /// Simulated time the work became eligible (command queued). Equals
    /// `start_s` for spans without a queue-wait phase.
    pub queued_s: f64,
    /// Simulated start time.
    pub start_s: f64,
    /// Simulated end time.
    pub end_s: f64,
    /// Free-form key/value annotations (bytes moved, work-items, ...).
    pub args: Vec<(String, String)>,
}

impl TraceSpan {
    /// Span duration in simulated seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// An append-only collection of completed spans.
///
/// The log hands out ids ([`TraceLog::next_id`]) so producers can link
/// children to parents before the parent span itself is closed and
/// pushed.
#[derive(Debug, Default)]
pub struct TraceLog {
    spans: Vec<TraceSpan>,
    next_id: u64,
    /// When `Some(cap)`, only the first `cap` spans are kept; further
    /// pushes increment `dropped` instead of growing without bound.
    cap: Option<usize>,
    dropped: u64,
}

impl TraceLog {
    /// An empty, uncapped log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Limit retained spans to `cap`; excess pushes are counted in
    /// [`TraceLog::dropped`] but not stored.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
    }

    /// Reserve the next span id.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Append a completed span (respecting the cap).
    pub fn push(&mut self, span: TraceSpan) {
        if let Some(cap) = self.cap {
            if self.spans.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.spans.push(span);
    }

    /// The retained spans, in push order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// How many spans the cap discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Account `n` spans dropped *outside* this log (e.g. by a capped
    /// producer whose spans were merged in), so the exported
    /// `droppedSpans` count covers the whole pipeline.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Drop all retained spans and reset the dropped counter (ids keep
    /// increasing so references never collide across clears).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.dropped = 0;
    }

    /// Export as a Chrome trace-event JSON document.
    ///
    /// Each span becomes one complete (`ph:"X"`) event with `ts`/`dur`
    /// in microseconds of simulated time; `pid` is a constant process,
    /// `tid` is derived from the span's track so tracks render as
    /// separate rows, and thread-name metadata events label them.
    pub fn to_chrome_json(&self) -> Json {
        // Stable track → tid assignment in order of first appearance.
        let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();
        for span in &self.spans {
            if !tids.contains_key(span.track.as_str()) {
                tids.insert(span.track.as_str(), order.len() as u64 + 1);
                order.push(span.track.as_str());
            }
        }

        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len() + order.len());
        for (track, &tid) in order.iter().map(|t| (*t, &tids[t])) {
            events.push(Json::obj([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tid as f64)),
                ("args", Json::obj([("name", Json::str(track))])),
            ]));
        }
        for span in &self.spans {
            let mut args: BTreeMap<String, Json> =
                span.args.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect();
            args.insert("span_id".into(), Json::Num(span.id as f64));
            if let Some(parent) = span.parent {
                args.insert("parent_span_id".into(), Json::Num(parent as f64));
            }
            args.insert("queued_us".into(), Json::Num(span.queued_s * 1e6));
            events.push(Json::obj([
                ("name", Json::str(span.name.clone())),
                ("cat", Json::str(span.category.as_str())),
                ("ph", Json::str("X")),
                ("ts", Json::Num(span.start_s * 1e6)),
                ("dur", Json::Num(span.duration_s() * 1e6)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tids[span.track.as_str()] as f64)),
                ("args", Json::Obj(args)),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            ("droppedSpans", Json::Num(self.dropped as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(log: &mut TraceLog, name: &str, track: &str, t0: f64, t1: f64) -> u64 {
        let id = log.next_id();
        log.push(TraceSpan {
            id,
            parent: None,
            name: name.into(),
            category: SpanCategory::Kernel,
            track: track.into(),
            queued_s: t0,
            start_s: t0,
            end_s: t1,
            args: vec![],
        });
        id
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut log = TraceLog::new();
        let a = span(&mut log, "a", "q", 0.0, 1.0);
        let b = span(&mut log, "b", "q", 1.0, 2.0);
        assert!(b > a);
        log.clear();
        let c = span(&mut log, "c", "q", 0.0, 1.0);
        assert!(c > b, "ids keep increasing across clear()");
    }

    #[test]
    fn cap_drops_excess_spans() {
        let mut log = TraceLog::new();
        log.set_cap(Some(2));
        for i in 0..5 {
            span(&mut log, "s", "q", i as f64, i as f64 + 0.5);
        }
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.dropped(), 3);
        log.note_dropped(2);
        assert_eq!(log.dropped(), 5);
        let doc = log.to_chrome_json();
        assert_eq!(doc.get("droppedSpans").and_then(Json::as_f64), Some(5.0));
        log.clear();
        assert_eq!(log.spans().len(), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn chrome_export_has_events_and_track_metadata() {
        let mut log = TraceLog::new();
        let parent = log.next_id();
        log.push(TraceSpan {
            id: parent,
            parent: None,
            name: "batch step 0".into(),
            category: SpanCategory::Host,
            track: "host".into(),
            queued_s: 0.0,
            start_s: 0.0,
            end_s: 2e-3,
            args: vec![],
        });
        let child = log.next_id();
        log.push(TraceSpan {
            id: child,
            parent: Some(parent),
            name: "binomial_option".into(),
            category: SpanCategory::Kernel,
            track: "queue".into(),
            queued_s: 1e-4,
            start_s: 2e-4,
            end_s: 1.2e-3,
            args: vec![("work_items".into(), "256".into())],
        });

        let doc = log.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        // 2 thread_name metadata + 2 spans.
        assert_eq!(events.len(), 4);
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("binomial_option"))
            .expect("kernel event");
        assert_eq!(kernel.get("ph").and_then(Json::as_str), Some("X"));
        let ts = kernel.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = kernel.get("dur").and_then(Json::as_f64).expect("dur");
        assert!((ts - 200.0).abs() < 1e-9); // 2e-4 s = 200 us
        assert!((dur - 1000.0).abs() < 1e-9);
        let args = kernel.get("args").expect("args");
        assert_eq!(args.get("parent_span_id").and_then(Json::as_f64), Some(parent as f64));
        assert_eq!(args.get("work_items").and_then(Json::as_str), Some("256"));
        // The document round-trips through the parser.
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).expect("valid"), doc);
    }
}
