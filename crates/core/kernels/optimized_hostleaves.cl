// Kernel IV.B variant with host-computed leaves -- the fallback the paper
// proposes in Section V.C in case the 13.0 SP1 compiler does not fix the
// pow operator: "the values at the leaves will have to be computed on the
// host and sent to global memory, to be then copied in local memory, to
// the detriment of speed".
//
// Identical to binomial_option except that the leaf asset prices arrive in
// a GLOBAL buffer written by the host ((n_steps+1) REALs per option), so
// no pow() is evaluated on the device.

__kernel void binomial_option_hostleaves(
    __global const REAL* params,
    __global const REAL* leaf_s,
    __global REAL* results,
    __local REAL* v,
    int n_steps
) {
    size_t l = get_local_id(0);
    size_t o = get_group_id(0);
    REAL K   = params[o * 6 + 1];
    REAL u   = params[o * 6 + 2];
    REAL pd  = params[o * 6 + 3];
    REAL qd  = params[o * 6 + 4];
    REAL phi = params[o * 6 + 5];

    REAL s = leaf_s[o * ((size_t)n_steps + 1) + l];
    v[l] = fmax(phi * (s - K), (REAL)0.0);
    barrier(CLK_LOCAL_MEM_FENCE);

    #pragma unroll 2
    for (long t = (long)n_steps - 1; t >= (long)l; t--) {
        REAL vup = v[l + 1];
        REAL vsame = v[l];
        s = s * u;
        barrier(CLK_LOCAL_MEM_FENCE);
        REAL cont = pd * vup + qd * vsame;
        v[l] = fmax(phi * (s - K), cont);
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l == 0) {
        results[o] = v[0];
    }
}
