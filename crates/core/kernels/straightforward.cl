// Kernel IV.A -- the "straightforward" dataflow implementation
// (paper Section IV.A, Figure 3).
//
// One work-item updates one binomial-tree node. All state streams through
// GLOBAL memory ping-pong buffers: the kernel reads node (t, j)'s children
// (level t+1) from the *_in buffers and writes (t, j) into the *_out
// buffers. The host enqueues one batch of N(N+1)/2 work-items per time
// step, writes the incoming option's leaves and the per-level parameter
// ladder before each batch, reads results back after it, and swaps the
// ping-pong buffers -- so N+1 options are in flight in the tree pipeline.
//
// Flattened tree layout: node (t, j), j = 0..=t, lives at flat index
// t*(t+1)/2 + j; its children at level t+1 are at flat+(t+1) (down, same
// j) and flat+(t+2) (up, j+1). Leaves (level N) are produced by the host.
//
// Per-level parameter ladder (5 values per level, for the option currently
// traversing that level):  [t*5+0]=K  [t*5+1]=pd  [t*5+2]=qd  [t*5+3]=u
// [t*5+4]=phi (+1 call / -1 put).
//
// Recurrence (paper Equation (1), call sign generalised by phi):
//   S(t,j) = u * S(t+1,j)
//   V(t,j) = max(phi*(S(t,j) - K),  pd*V(t+1,j+1) + qd*V(t+1,j))

__kernel void binomial_node(
    __global const REAL* s_in,
    __global const REAL* v_in,
    __global REAL* s_out,
    __global REAL* v_out,
    __global const REAL* params,
    __global const int* level_of,
    int n_steps
) {
    size_t id = get_global_id(0);
    int t = level_of[id];
    if (t >= n_steps) {
        return; // padding work-item (global size rounded up to the work-group size)
    }
    size_t dn = id + (size_t)t + 1;
    size_t up = id + (size_t)t + 2;
    REAL K   = params[t * 5 + 0];
    REAL pd  = params[t * 5 + 1];
    REAL qd  = params[t * 5 + 2];
    REAL u   = params[t * 5 + 3];
    REAL phi = params[t * 5 + 4];
    REAL s = u * s_in[dn];
    REAL cont = pd * v_in[up] + qd * v_in[dn];
    REAL ex = phi * (s - K);
    v_out[id] = fmax(ex, cont);
    s_out[id] = s;
}
