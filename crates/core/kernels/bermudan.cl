// Bermudan variant of kernel IV.B — an extension beyond the paper,
// following the FPGA risk-analysis line (Klaisoongnoen et al.).
//
// Identical dataflow to binomial_option, with early exercise restricted
// to a periodic schedule of lattice dates: step t allows exercise iff
// t % every == 0 (the leaves always pay off). every = 1 degenerates to
// the American kernel bit-for-bit; large `every` approaches European.
//
// Per-option parameters (8 values): [o*8+0]=S0 [o*8+1]=K [o*8+2]=u
// [o*8+3]=pd [o*8+4]=qd [o*8+5]=phi [o*8+6]=exercise spacing (integer
// valued, >= 1) [o*8+7]=unused. Work-group size must be n_steps+1 and
// the local buffer must hold n_steps+1 REALs.

__kernel void binomial_bermudan(
    __global const REAL* params,
    __global REAL* results,
    __local REAL* v,
    int n_steps
) {
    size_t l = get_local_id(0);
    size_t o = get_group_id(0);
    REAL s0  = params[o * 8 + 0];
    REAL K   = params[o * 8 + 1];
    REAL u   = params[o * 8 + 2];
    REAL pd  = params[o * 8 + 3];
    REAL qd  = params[o * 8 + 4];
    REAL phi = params[o * 8 + 5];
    long every = (long)params[o * 8 + 6];

    // Leaf initialisation: S(N,l) = S0 * u^(2l - N), on the device.
    REAL s = s0 * pow(u, (REAL)(2 * (long)l - (long)n_steps));
    v[l] = fmax(phi * (s - K), (REAL)0.0);
    barrier(CLK_LOCAL_MEM_FENCE);

    #pragma unroll 2
    for (long t = (long)n_steps - 1; t >= (long)l; t--) {
        REAL vup = v[l + 1];
        REAL vsame = v[l];
        s = s * u;                    // S(t,l) = u * S(t+1,l)
        barrier(CLK_LOCAL_MEM_FENCE); // reads before anyone overwrites
        REAL cont = pd * vup + qd * vsame;
        v[l] = (t % every == 0) ? fmax(phi * (s - K), cont) : cont;
        barrier(CLK_LOCAL_MEM_FENCE); // writes before the next reads
    }
    if (l == 0) {
        results[o] = v[0];
    }
}
