// Knock-out barrier variant of kernel IV.B — an extension beyond the
// paper, following the FPGA risk-analysis line (Klaisoongnoen et al.).
//
// Identical dataflow to binomial_option: one work-group per option, one
// work-item per tree row, local-memory V row, device-side leaf
// initialisation with pow(). The payoff is European-exercise with a
// knock-out barrier monitored at every lattice node (no rebate): a node
// whose asset price is at or beyond the barrier is worth zero, leaves
// included. The knock direction is a per-option sign so one compiled
// kernel serves both up-and-out (dir = +1) and down-and-out (dir = -1).
//
// Per-option parameters (8 values): [o*8+0]=S0 [o*8+1]=K [o*8+2]=u
// [o*8+3]=pd [o*8+4]=qd [o*8+5]=phi [o*8+6]=barrier level
// [o*8+7]=dir. Work-group size must be n_steps+1 and the local buffer
// must hold n_steps+1 REALs.

__kernel void binomial_barrier(
    __global const REAL* params,
    __global REAL* results,
    __local REAL* v,
    int n_steps
) {
    size_t l = get_local_id(0);
    size_t o = get_group_id(0);
    REAL s0  = params[o * 8 + 0];
    REAL K   = params[o * 8 + 1];
    REAL u   = params[o * 8 + 2];
    REAL pd  = params[o * 8 + 3];
    REAL qd  = params[o * 8 + 4];
    REAL phi = params[o * 8 + 5];
    REAL B   = params[o * 8 + 6];
    REAL dir = params[o * 8 + 7];

    // Leaf initialisation: S(N,l) = S0 * u^(2l - N), on the device.
    REAL s = s0 * pow(u, (REAL)(2 * (long)l - (long)n_steps));
    v[l] = (dir * (s - B) >= (REAL)0.0) ? (REAL)0.0 : fmax(phi * (s - K), (REAL)0.0);
    barrier(CLK_LOCAL_MEM_FENCE);

    #pragma unroll 2
    for (long t = (long)n_steps - 1; t >= (long)l; t--) {
        REAL vup = v[l + 1];
        REAL vsame = v[l];
        s = s * u;                    // S(t,l) = u * S(t+1,l)
        barrier(CLK_LOCAL_MEM_FENCE); // reads before anyone overwrites
        REAL cont = pd * vup + qd * vsame;
        v[l] = (dir * (s - B) >= (REAL)0.0) ? (REAL)0.0 : cont;
        barrier(CLK_LOCAL_MEM_FENCE); // writes before the next reads
    }
    if (l == 0) {
        results[o] = v[0];
    }
}
