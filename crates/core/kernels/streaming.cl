// Kernel IV.C -- the streaming (channel/pipe) implementation.
//
// Two single-work-item task kernels connected by an on-chip pipe, the
// Altera channel idiom: `binomial_leaf_producer` walks the leaf row and
// streams leaf asset prices S(N, j) = S0 * u^(2j - N) into the FIFO;
// `binomial_stream_consumer` drains it into private registers and runs
// the whole backward induction device-resident. The host enqueues ONE
// launch graph for the pair -- leaf values never touch global memory and
// no host round-trip separates tree levels (contrast kernel IV.A, which
// re-enqueues a batch per level, and even IV.B, whose leaves round-trip
// through local memory).
//
// Numerics are copied verbatim from kernel IV.B (optimized.cl) so IV.C
// prices are bit-identical to IV.B on the same device math: the same
// pow() leaf expression (Altera 13.0's inaccuracy included), the same
// continuation expression pd * v[j+1] + qd * v[j], the same fmax payoff
// clamp. The induction updates v[j] ascending in j, so v[j+1] still
// holds the previous level's value when row j reads it -- the same
// dataflow IV.B gets from its read-barrier-write sequence.
//
// PRIVN is substituted at build time with n_steps + 1 (the private row
// length); per-option parameters are IV.B's 6-wide block:
// [o*6+0]=S0 [o*6+1]=K [o*6+2]=u [o*6+3]=pd [o*6+4]=qd [o*6+5]=phi.
// Both kernels are launched as single-work-item tasks (one work-item,
// one group), the shape the pipe engines require.

__kernel void binomial_leaf_producer(
    __global const REAL* params,
    pipe REAL leaves,
    int n_steps,
    int n_options
) {
    for (int o = 0; o < n_options; o++) {
        REAL s0 = params[o * 6 + 0];
        REAL u  = params[o * 6 + 2];
        for (int j = 0; j <= n_steps; j++) {
            // Same leaf expression as IV.B: S(N,j) = S0 * u^(2j - N).
            REAL s = s0 * pow(u, (REAL)(2 * (long)j - (long)n_steps));
            write_pipe(leaves, s);
        }
    }
}

__kernel void binomial_stream_consumer(
    __global const REAL* params,
    pipe REAL leaves,
    __global REAL* results,
    int n_steps,
    int n_options
) {
    REAL v[PRIVN];
    REAL sv[PRIVN];
    for (int o = 0; o < n_options; o++) {
        REAL K   = params[o * 6 + 1];
        REAL u   = params[o * 6 + 2];
        REAL pd  = params[o * 6 + 3];
        REAL qd  = params[o * 6 + 4];
        REAL phi = params[o * 6 + 5];
        for (int j = 0; j <= n_steps; j++) {
            sv[j] = read_pipe(leaves);
            v[j] = fmax(phi * (sv[j] - K), (REAL)0.0);
        }
        for (int t = n_steps - 1; t >= 0; t--) {
            for (int j = 0; j <= t; j++) {
                sv[j] = sv[j] * u;            // S(t,j) = u * S(t+1,j)
                REAL cont = pd * v[j + 1] + qd * v[j];
                v[j] = fmax(phi * (sv[j] - K), cont);
            }
        }
        results[o] = v[0];
    }
}
