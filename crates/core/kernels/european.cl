// European variant of kernel IV.B — an extension beyond the paper.
//
// The paper's Section III.A notes that European options have no early
// exercise and "can be found analytically"; pricing them on the lattice
// is nevertheless the cleanest end-to-end validation of the whole stack,
// because the result must converge to the Black-Scholes closed form.
// Identical dataflow to binomial_option, with the early-exercise max
// removed from the backward induction (the leaf payoff remains).

__kernel void binomial_european(
    __global const REAL* params,
    __global REAL* results,
    __local REAL* v,
    int n_steps
) {
    size_t l = get_local_id(0);
    size_t o = get_group_id(0);
    REAL s0  = params[o * 6 + 0];
    REAL K   = params[o * 6 + 1];
    REAL u   = params[o * 6 + 2];
    REAL pd  = params[o * 6 + 3];
    REAL qd  = params[o * 6 + 4];
    REAL phi = params[o * 6 + 5];

    REAL s = s0 * pow(u, (REAL)(2 * (long)l - (long)n_steps));
    v[l] = fmax(phi * (s - K), (REAL)0.0);
    barrier(CLK_LOCAL_MEM_FENCE);

    #pragma unroll 2
    for (long t = (long)n_steps - 1; t >= (long)l; t--) {
        REAL vup = v[l + 1];
        REAL vsame = v[l];
        barrier(CLK_LOCAL_MEM_FENCE);
        v[l] = pd * vup + qd * vsame; // discounted expectation only
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l == 0) {
        results[o] = v[0];
    }
}
