// Kernel IV.B -- the optimized work-group implementation
// (paper Section IV.B, Figure 4).
//
// One work-group prices one complete option (a full binomial tree); the
// work-item with local id `l` owns tree row l. Option-constant parameters
// and the running asset price S live in PRIVATE memory (registers); the
// shared row of option values V lives in LOCAL memory (M9K blocks on the
// FPGA) with barrier-synchronised time steps and private temporaries to
// avoid read/write conflicts. Host interaction is reduced to one
// parameter write, one NDRange, one result read.
//
// The tree leaves are initialised ON THE DEVICE with pow() -- this is the
// operator whose Altera 13.0 implementation causes the ~1e-3 RMSE the
// paper reports in Section V.C (kernel IV.A receives host-computed leaves
// and is immune).
//
// Work-item `l` iterates time steps t = N-1 down to l; rows above retire
// early and stop participating in barriers (hardware barrier semantics;
// see bop-clir's interpreter documentation).
//
// Per-option parameters (6 values): [o*6+0]=S0 [o*6+1]=K [o*6+2]=u
// [o*6+3]=pd [o*6+4]=qd [o*6+5]=phi. Work-group size must be n_steps+1
// and the local buffer must hold n_steps+1 REALs.

__kernel void binomial_option(
    __global const REAL* params,
    __global REAL* results,
    __local REAL* v,
    int n_steps
) {
    size_t l = get_local_id(0);
    size_t o = get_group_id(0);
    REAL s0  = params[o * 6 + 0];
    REAL K   = params[o * 6 + 1];
    REAL u   = params[o * 6 + 2];
    REAL pd  = params[o * 6 + 3];
    REAL qd  = params[o * 6 + 4];
    REAL phi = params[o * 6 + 5];

    // Leaf initialisation: S(N,l) = S0 * u^(2l - N), on the device.
    REAL s = s0 * pow(u, (REAL)(2 * (long)l - (long)n_steps));
    v[l] = fmax(phi * (s - K), (REAL)0.0);
    barrier(CLK_LOCAL_MEM_FENCE);

    #pragma unroll 2
    for (long t = (long)n_steps - 1; t >= (long)l; t--) {
        REAL vup = v[l + 1];
        REAL vsame = v[l];
        s = s * u;                    // S(t,l) = u * S(t+1,l)
        barrier(CLK_LOCAL_MEM_FENCE); // reads before anyone overwrites
        REAL cont = pd * vup + qd * vsame;
        v[l] = fmax(phi * (s - K), cont);
        barrier(CLK_LOCAL_MEM_FENCE); // writes before the next reads
    }
    if (l == 0) {
        results[o] = v[0];
    }
}
