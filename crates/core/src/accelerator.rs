//! The accelerator facade: functional pricing and paper-scale projection.

use crate::error::Error;
use crate::hostprog::optimized::OptimizedHost;
use crate::hostprog::payoff::PayoffHost;
use crate::hostprog::straightforward::StraightforwardHost;
use crate::hostprog::streaming::StreamingHost;
use crate::kernels::KernelArch;
use crate::perfmodel::{scale_to_batch, StatsFit, CALIBRATION_STEPS};
use bop_cpu::Precision;
use bop_finance::binomial::tree_nodes;
use bop_finance::payoff::{price_payoff_f64, BarrierKind, Payoff};
use bop_finance::types::OptionParams;
use bop_finance::{binomial, metrics};
use bop_obs::{Json, MetricsRegistry, TraceLog, TraceSpan};
use bop_ocl::queue::RuntimeError;
use bop_ocl::{
    BuildOptions, BuildReport, CommandQueue, Context, Device, Engine, FaultPlan, Program,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The complete description of an accelerator, ready to be realised by
/// [`Accelerator::from_config`]. Usually assembled through
/// [`Accelerator::builder`]; construct it directly when a configuration
/// is computed or cloned wholesale (the serving layer builds identical
/// shards from one config).
#[derive(Clone)]
pub struct AcceleratorConfig {
    /// The device to compile for and run on.
    pub device: Arc<dyn Device>,
    /// Kernel architecture (Section IV.A or IV.B).
    pub arch: KernelArch,
    /// Numeric precision.
    pub precision: Precision,
    /// Lattice step count (≥ 2).
    pub n_steps: usize,
    /// Build options; `None` means the paper's published configuration
    /// for the architecture (Section V.B).
    pub build: Option<BuildOptions>,
    /// Metrics registry every session publishes into, if any.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// NDRange interpreter thread count override (wall-clock knob only;
    /// results are identical for every count).
    pub workers: Option<usize>,
    /// Kernel execution engine override (`None` = the queue default:
    /// `BOP_SIM_ENGINE`, else bytecode). A wall-clock knob only — all
    /// engines (walk, bytecode, lanes) are bit-identical.
    pub engine: Option<Engine>,
    /// Per-work-group instruction budget override (`None` = the queue
    /// default: `BOP_SIM_STEP_LIMIT`, else the interpreter default).
    pub step_limit: Option<u64>,
    /// Use the paper's "reduced number of read operations" variant of
    /// the straightforward host program (root-only reads).
    pub reduced_reads: bool,
    /// Deterministic fault-injection plan for pricing sessions (`None` =
    /// the `BOP_SIM_FAULTS` environment default, which itself defaults
    /// to no injection). Applies to [`Accelerator::price`] paths only;
    /// calibration and projection always run fault-free.
    pub faults: Option<FaultPlan>,
}

impl AcceleratorConfig {
    /// A default configuration for `device`: kernel IV.B
    /// ([`KernelArch::Optimized`]), double precision, a 64-step lattice
    /// (small enough for functional runs; raise it for paper-scale
    /// projections), the paper's build options.
    pub fn new(device: Arc<dyn Device>) -> AcceleratorConfig {
        AcceleratorConfig {
            device,
            arch: KernelArch::Optimized,
            precision: Precision::Double,
            n_steps: 64,
            build: None,
            metrics: None,
            workers: None,
            engine: None,
            step_limit: None,
            reduced_reads: false,
            faults: None,
        }
    }

    /// Realise the configuration.
    ///
    /// # Errors
    /// Same as [`Accelerator::from_config`].
    pub fn build(self) -> Result<Accelerator, Error> {
        Accelerator::from_config(self)
    }

    /// Realise the configuration `n` times, compiling the kernel **once**:
    /// the first accelerator is built from the config and the rest are
    /// clones sharing its compiled program. This is how the serving layer
    /// builds identical shards without paying per-shard compilation.
    ///
    /// # Errors
    /// Same as [`Accelerator::from_config`]; rejects `n == 0`.
    pub fn build_pool(self, n: usize) -> Result<Vec<Accelerator>, Error> {
        if n == 0 {
            return Err(Error::Invalid("a pool needs at least one shard".into()));
        }
        let first = Accelerator::from_config(self)?;
        let mut pool = Vec::with_capacity(n);
        for _ in 1..n {
            pool.push(first.clone());
        }
        pool.push(first);
        pool.rotate_right(1);
        Ok(pool)
    }
}

/// Fluent construction of an [`Accelerator`]; obtained from
/// [`Accelerator::builder`]. Every knob has a default (see
/// [`AcceleratorConfig::new`]); finish with [`AcceleratorBuilder::build`].
#[must_use = "the builder does nothing until `.build()` is called"]
pub struct AcceleratorBuilder {
    config: AcceleratorConfig,
}

impl AcceleratorBuilder {
    /// Select the kernel architecture.
    pub fn arch(mut self, arch: KernelArch) -> AcceleratorBuilder {
        self.config.arch = arch;
        self
    }

    /// Select the numeric precision.
    pub fn precision(mut self, precision: Precision) -> AcceleratorBuilder {
        self.config.precision = precision;
        self
    }

    /// Set the lattice step count (must be ≥ 2).
    pub fn n_steps(mut self, n_steps: usize) -> AcceleratorBuilder {
        self.config.n_steps = n_steps;
        self
    }

    /// Override the paper's build options.
    pub fn build_options(mut self, build: BuildOptions) -> AcceleratorBuilder {
        self.config.build = Some(build);
        self
    }

    /// Publish queue and interpreter metrics of every session into
    /// `registry`; device-model gauges are set as soon as the
    /// accelerator is built.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> AcceleratorBuilder {
        self.config.metrics = Some(registry);
        self
    }

    /// Interpret NDRange work-groups on `workers` threads (≥ 1 enforced).
    /// A wall-clock knob only — prices, statistics and the simulated
    /// clock are identical for every count.
    pub fn workers(mut self, workers: usize) -> AcceleratorBuilder {
        self.config.workers = Some(workers.max(1));
        self
    }

    /// Select the kernel execution engine (walk, bytecode, or the
    /// lane-vectorized `lanes`) for every session this
    /// accelerator opens (default: the queue's `BOP_SIM_ENGINE` /
    /// bytecode heuristic). A wall-clock knob only — prices, statistics
    /// and the simulated clock are identical on every engine.
    pub fn engine(mut self, engine: Engine) -> AcceleratorBuilder {
        self.config.engine = Some(engine);
        self
    }

    /// Bound the instructions any single work-group may execute (0 = the
    /// interpreter default; sessions default to the queue's
    /// `BOP_SIM_STEP_LIMIT` heuristic). Exceeding the budget fails the
    /// pricing run instead of hanging on a runaway kernel.
    pub fn step_limit(mut self, step_limit: u64) -> AcceleratorBuilder {
        self.config.step_limit = Some(step_limit);
        self
    }

    /// Switch the straightforward host program to the paper's "modified
    /// version ... with a reduced number of read operations" (root-only
    /// reads). No effect on the optimized architecture.
    pub fn reduced_reads(mut self) -> AcceleratorBuilder {
        self.config.reduced_reads = true;
        self
    }

    /// Inject deterministic faults into every pricing session according
    /// to `plan` (default: the `BOP_SIM_FAULTS` environment knob, which
    /// itself defaults to no injection). Each session re-seeds the
    /// plan's decision stream from a per-accelerator session counter, so
    /// retried batches see fresh — but reproducible — faults.
    /// Calibration and projection sessions always run fault-free.
    pub fn fault_plan(mut self, plan: FaultPlan) -> AcceleratorBuilder {
        self.config.faults = Some(plan);
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Compile the kernel and produce the accelerator.
    ///
    /// # Errors
    /// [`Error::Invalid`] for a bad lattice size, [`Error::Build`] if
    /// the kernel does not compile or fit.
    pub fn build(self) -> Result<Accelerator, Error> {
        Accelerator::from_config(self.config)
    }

    /// Compile the kernel once and produce `n` accelerators sharing the
    /// compiled program (see [`AcceleratorConfig::build_pool`]).
    ///
    /// # Errors
    /// Same as [`AcceleratorBuilder::build`]; rejects `n == 0`.
    pub fn build_pool(self, n: usize) -> Result<Vec<Accelerator>, Error> {
        self.config.build_pool(n)
    }
}

/// Outcome of a functional pricing run.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingRun {
    /// Prices, input order (widened to `f64` for single precision).
    pub prices: Vec<f64>,
    /// Simulated wall-clock of the whole command stream, seconds.
    pub elapsed_s: f64,
    /// Simulated device-busy time, seconds.
    pub device_busy_s: f64,
    /// Device power while running, watts (fitted estimate on the FPGA,
    /// TDP elsewhere).
    pub watts: f64,
    /// Energy consumed, joules.
    pub joules: f64,
    /// Throughput, options/second.
    pub options_per_s: f64,
    /// Energy efficiency, options/joule (the paper's headline metric).
    pub options_per_j: f64,
    /// Lattice-node throughput, nodes/second (Table II's last row).
    pub nodes_per_s: f64,
    /// RMSE against the double-precision reference software.
    pub rmse: f64,
    /// Maximum absolute error against the reference.
    pub max_abs_error: f64,
}

/// The trace captured on one pricing session's queue: structured spans
/// (host spans, queue commands, barrier phases — simulated seconds) plus
/// how many spans the session's trace cap discarded. Returned by
/// [`Accelerator::price_with_session_trace`] for callers that merge
/// session timelines into a larger [`TraceLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// The session's spans, in queue order.
    pub spans: Vec<TraceSpan>,
    /// Spans discarded by the session's trace cap.
    pub dropped: u64,
}

/// Paper-scale performance projection (timing-only replay with fitted
/// statistics; no functional results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Lattice steps.
    pub n_steps: usize,
    /// Batch size projected.
    pub n_options: usize,
    /// Simulated time for the batch (post-setup, i.e. marginal), seconds.
    pub elapsed_s: f64,
    /// Post-saturation throughput, options/second.
    pub options_per_s: f64,
    /// Device power, watts.
    pub watts: f64,
    /// Energy efficiency, options/joule.
    pub options_per_j: f64,
    /// Node throughput, nodes/second.
    pub nodes_per_s: f64,
    /// One-time session setup, seconds (excluded from the marginal rate;
    /// drives the saturation behaviour of Section V.C).
    pub session_setup_s: f64,
    /// Host-to-device traffic, bytes.
    pub h2d_bytes: u64,
    /// Device-to-host traffic, bytes.
    pub d2h_bytes: u64,
}

impl Projection {
    /// Throughput including the one-time session setup — what a cold-start
    /// measurement at this batch size would observe. Approaches
    /// [`Projection::options_per_s`] as the batch grows; the paper calls
    /// the knee "device saturation".
    pub fn throughput_with_setup(&self) -> f64 {
        self.n_options as f64 / (self.elapsed_s + self.session_setup_s)
    }
}

/// An option-pricing accelerator: one device + one kernel architecture +
/// build options, ready to price batches.
///
/// The kernel is compiled **once**, when the accelerator is built; every
/// session ([`Accelerator::price`], [`Accelerator::project`], …) reuses
/// the cached [`Program`] — including its optimised module and register
/// bytecode. Cloning an accelerator (see
/// [`AcceleratorConfig::build_pool`]) shares the same compiled program
/// across the clones.
pub struct Accelerator {
    device: Arc<dyn Device>,
    arch: KernelArch,
    precision: Precision,
    n_steps: usize,
    build: BuildOptions,
    program: Program,
    report: BuildReport,
    read_full: bool,
    fit_cache: std::sync::OnceLock<StatsFit>,
    metrics: Option<Arc<MetricsRegistry>>,
    workers: Option<usize>,
    engine: Option<Engine>,
    step_limit: Option<u64>,
    faults: Option<FaultPlan>,
    /// Pricing sessions opened so far; seeds the per-session fault
    /// stream so a retry draws fresh (still deterministic) faults.
    fault_sessions: AtomicU64,
}

impl Clone for Accelerator {
    /// Clones share the compiled program (reference-counted) and the
    /// calibration fit computed so far. The fault-session counter starts
    /// fresh: a clone replays the same deterministic fault sequence as a
    /// fresh accelerator with the same plan (re-seed per shard with
    /// [`Accelerator::with_fault_plan`] to decorrelate shards).
    fn clone(&self) -> Accelerator {
        let fit_cache = std::sync::OnceLock::new();
        if let Some(fit) = self.fit_cache.get() {
            let _ = fit_cache.set(fit.clone());
        }
        Accelerator {
            device: self.device.clone(),
            arch: self.arch,
            precision: self.precision,
            n_steps: self.n_steps,
            build: self.build.clone(),
            program: self.program.clone(),
            report: self.report.clone(),
            read_full: self.read_full,
            fit_cache,
            metrics: self.metrics.clone(),
            workers: self.workers,
            engine: self.engine,
            step_limit: self.step_limit,
            faults: self.faults,
            fault_sessions: AtomicU64::new(0),
        }
    }
}

impl Accelerator {
    /// Start building an accelerator for `device` with the defaults of
    /// [`AcceleratorConfig::new`].
    ///
    /// ```
    /// # fn main() -> Result<(), bop_core::Error> {
    /// let acc = bop_core::Accelerator::builder(bop_core::devices::gpu())
    ///     .arch(bop_core::KernelArch::Optimized)
    ///     .n_steps(48)
    ///     .build()?;
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder(device: Arc<dyn Device>) -> AcceleratorBuilder {
        AcceleratorBuilder { config: AcceleratorConfig::new(device) }
    }

    /// Realise a complete [`AcceleratorConfig`].
    ///
    /// # Errors
    /// [`Error::Invalid`] for a bad lattice size, [`Error::Build`] if the
    /// kernel does not compile or fit.
    pub fn from_config(config: AcceleratorConfig) -> Result<Accelerator, Error> {
        let AcceleratorConfig {
            device,
            arch,
            precision,
            n_steps,
            build,
            metrics,
            workers,
            engine,
            step_limit,
            reduced_reads,
            faults,
        } = config;
        if n_steps < 2 {
            return Err(Error::Invalid("need at least 2 lattice steps".into()));
        }
        // Resolve the fault plan strictly: an explicit plan must be
        // valid, and a set-but-malformed BOP_SIM_FAULTS is a structured
        // configuration error, never a silently ignored knob.
        let faults = match faults {
            Some(plan) => {
                plan.validate()
                    .map_err(|cause| Error::Config { var: "fault_plan".into(), cause })?;
                Some(plan)
            }
            None => FaultPlan::from_env()
                .map_err(|cause| Error::Config { var: "BOP_SIM_FAULTS".into(), cause })?,
        };
        let faults = faults.filter(FaultPlan::is_active);
        let build = build.unwrap_or_else(|| arch.paper_build_options());
        let ctx = Context::new(device.clone());
        // Size lattice-sized sources (the streaming kernel's private
        // rows) for this accelerator's lattice — and no smaller than the
        // calibration lattices, which run through the same program.
        let sized_steps = n_steps.max(CALIBRATION_STEPS[2]);
        let program = Program::from_source_with_metrics(
            &ctx,
            "kernel.cl",
            &arch.source_sized(precision, sized_steps),
            &build,
            metrics.as_deref(),
        )?;
        let report = program.report();
        if let Some(registry) = &metrics {
            publish_device_gauges(registry, &device, arch, &report);
        }
        Ok(Accelerator {
            device,
            arch,
            precision,
            n_steps,
            build,
            program,
            report,
            read_full: !reduced_reads,
            fit_cache: std::sync::OnceLock::new(),
            metrics,
            workers: workers.map(|w| w.max(1)),
            engine,
            step_limit,
            faults,
            fault_sessions: AtomicU64::new(0),
        })
    }

    /// Build an accelerator from positional arguments. `build` defaults
    /// to the paper's published configuration for the architecture
    /// (Section V.B).
    ///
    /// # Errors
    /// Returns [`Error::Build`] if the kernel does not compile or fit.
    #[deprecated(
        since = "0.2.0",
        note = "use `Accelerator::builder(device).arch(..).precision(..).n_steps(..).build()`"
    )]
    pub fn new(
        device: Arc<dyn Device>,
        arch: KernelArch,
        precision: Precision,
        n_steps: usize,
        build: Option<BuildOptions>,
    ) -> Result<Accelerator, Error> {
        let mut config = AcceleratorConfig::new(device);
        config.arch = arch;
        config.precision = precision;
        config.n_steps = n_steps;
        config.build = build;
        Accelerator::from_config(config)
    }

    /// Publish queue and interpreter metrics of every session this
    /// accelerator opens into `registry`, and set the device-model gauges
    /// (power, bandwidth, overheads) immediately.
    #[deprecated(since = "0.2.0", note = "use `AcceleratorBuilder::metrics`")]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Accelerator {
        publish_device_gauges(&registry, &self.device, self.arch, &self.report);
        self.metrics = Some(registry);
        self
    }

    /// Interpret NDRange work-groups on `workers` threads in every session
    /// this accelerator opens (default: the queue's `BOP_SIM_WORKERS` /
    /// available-parallelism heuristic). A wall-clock knob only — prices,
    /// statistics and the simulated clock are identical for every count.
    #[deprecated(since = "0.2.0", note = "use `AcceleratorBuilder::workers`")]
    pub fn with_workers(mut self, workers: usize) -> Accelerator {
        self.workers = Some(workers.max(1));
        self
    }

    /// Switch the straightforward host program to the paper's "modified
    /// version ... with a reduced number of read operations" (root-only
    /// reads). No effect on the optimized architecture.
    #[deprecated(since = "0.2.0", note = "use `AcceleratorBuilder::reduced_reads`")]
    pub fn with_reduced_reads(mut self) -> Accelerator {
        self.read_full = false;
        self
    }

    /// The build report (Table I shape: resources, Fmax, power, pass
    /// pipeline).
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The compiled program every session of this accelerator shares.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The kernel architecture.
    pub fn arch(&self) -> KernelArch {
        self.arch
    }

    /// The numeric precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The lattice step count.
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// The build options in effect.
    pub fn build_options(&self) -> &BuildOptions {
        &self.build
    }

    /// The device this accelerator runs on.
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// Replace the fault plan (typically to re-seed per shard: the
    /// serving layer derives one plan per shard from a base seed so
    /// shards fail independently but reproducibly). Resets the session
    /// counter, so the new plan's fault sequence starts from scratch.
    /// An inert plan ([`FaultPlan::none`]) disables injection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Accelerator {
        self.faults = Some(plan).filter(FaultPlan::is_active);
        self.fault_sessions = AtomicU64::new(0);
        self
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
    }

    /// Open a fresh context + queue on the shared program.
    /// `inject_faults` arms the accelerator's fault plan on the session
    /// queue (re-seeded per session); pricing paths pass `true`, while
    /// calibration/projection pass `false` — operator tooling must stay
    /// deterministic and fault-free even on a faulty fleet.
    fn fresh_session(
        &self,
        inject_faults: bool,
    ) -> Result<(Arc<Context>, CommandQueue, Program), Error> {
        let ctx = Context::new(self.device.clone());
        let queue = CommandQueue::new(&ctx);
        if let Some(workers) = self.workers {
            queue.set_workers(workers);
        }
        if let Some(engine) = self.engine {
            queue.set_engine(engine);
        }
        if let Some(step_limit) = self.step_limit {
            queue.set_step_limit(step_limit);
        }
        if let Some(reg) = &self.metrics {
            queue.attach_metrics(reg.clone());
        }
        if inject_faults {
            if let Some(plan) = self.faults {
                let session = self.fault_sessions.fetch_add(1, Ordering::Relaxed);
                queue.set_fault_plan(plan.for_session(session));
            }
        }
        // The program was compiled when the accelerator was built; every
        // session shares it (fresh memory comes from the session context).
        Ok((ctx, queue, self.program.clone()))
    }

    fn run_host(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
        n_steps: usize,
    ) -> Result<Vec<f64>, RuntimeError> {
        match self.arch {
            KernelArch::Straightforward => StraightforwardHost {
                n_steps,
                precision: self.precision,
                read_full: self.read_full,
            }
            .run(ctx, queue, program, options),
            KernelArch::Optimized | KernelArch::OptimizedEuropean => OptimizedHost {
                n_steps,
                precision: self.precision,
                host_leaves: false,
                kernel_name: self.arch.kernel_name(),
            }
            .run(ctx, queue, program, options),
            KernelArch::OptimizedHostLeaves => OptimizedHost {
                n_steps,
                precision: self.precision,
                host_leaves: true,
                kernel_name: self.arch.kernel_name(),
            }
            .run(ctx, queue, program, options),
            // Calibration and projection reach the payoff kernels through
            // this generic path with no payoffs attached; a representative
            // default of the class (never-knocking barrier, every-step
            // exercise) keeps the instruction stream identical to any
            // real payoff of the same class. Pricing goes through
            // [`Accelerator::price_payoffs`], which carries real payoffs.
            KernelArch::Barrier | KernelArch::Bermudan => {
                let payoffs = vec![calibration_payoff(self.arch); options.len()];
                PayoffHost {
                    n_steps,
                    precision: self.precision,
                    kernel_name: self.arch.kernel_name(),
                }
                .run(ctx, queue, program, options, &payoffs)
            }
            KernelArch::Streaming => StreamingHost { n_steps, precision: self.precision }
                .run(ctx, queue, program, options),
        }
    }

    /// Whether this accelerator's kernel prices options under `payoff`.
    /// The vanilla kernels hard-code their exercise rule; the barrier and
    /// Bermudan kernels read per-option payoff parameters of their class.
    pub fn accepts_payoff(&self, payoff: Payoff) -> bool {
        matches!(
            (self.arch, payoff),
            (KernelArch::Barrier, Payoff::Barrier { .. })
                | (KernelArch::Bermudan, Payoff::Bermudan { .. })
                | (KernelArch::OptimizedEuropean, Payoff::European)
                | (
                    KernelArch::Straightforward
                        | KernelArch::Optimized
                        | KernelArch::OptimizedHostLeaves
                        | KernelArch::Streaming,
                    Payoff::American,
                )
        )
    }

    /// Price a batch functionally (full interpretation — feasible up to a
    /// few hundred thousand node updates; use [`Accelerator::project`] for
    /// paper-scale batches).
    ///
    /// # Errors
    /// Propagates build and runtime failures; rejects empty or invalid
    /// batches.
    pub fn price(&self, options: &[OptionParams]) -> Result<PricingRun, Error> {
        Ok(self.price_inner(options, false)?.0)
    }

    /// Like [`Accelerator::price`], but with command tracing enabled on
    /// the session queue; also returns the run's timeline as a Chrome
    /// trace-event JSON document (host spans, queue commands, barrier
    /// phases) ready to be written to a file and loaded in Perfetto.
    ///
    /// # Errors
    /// Same as [`Accelerator::price`].
    pub fn price_traced(&self, options: &[OptionParams]) -> Result<(PricingRun, Json), Error> {
        let (run, trace) = self.price_inner(options, true)?;
        let trace = trace.expect("trace requested");
        let mut log = TraceLog::new();
        for span in trace.spans {
            log.push(span);
        }
        log.note_dropped(trace.dropped);
        Ok((run, log.to_chrome_json()))
    }

    /// Like [`Accelerator::price_traced`], but returns the session's
    /// structured spans instead of a rendered Chrome document, so a
    /// caller (e.g. the serving layer) can reparent and merge them into
    /// a larger trace.
    ///
    /// # Errors
    /// Same as [`Accelerator::price`].
    pub fn price_with_session_trace(
        &self,
        options: &[OptionParams],
    ) -> Result<(PricingRun, SessionTrace), Error> {
        let (run, trace) = self.price_inner(options, true)?;
        Ok((run, trace.expect("trace requested")))
    }

    fn price_inner(
        &self,
        options: &[OptionParams],
        traced: bool,
    ) -> Result<(PricingRun, Option<SessionTrace>), Error> {
        if options.is_empty() {
            return Err(Error::Invalid("empty batch".into()));
        }
        if matches!(self.arch, KernelArch::Barrier | KernelArch::Bermudan) {
            return Err(Error::Invalid(format!(
                "{} prices per-option payoffs; use `price_payoffs`",
                self.arch
            )));
        }
        for o in options {
            o.validate().map_err(|e| Error::Invalid(e.to_string()))?;
        }
        let (ctx, queue, program) = self.fresh_session(true)?;
        if traced {
            queue.enable_trace();
        }
        let prices = self.run_host(&ctx, &queue, &program, options, self.n_steps)?;
        let reference: Vec<f64> =
            options.iter().map(|o| binomial::price_american_f64(o, self.n_steps)).collect();
        Ok(self.finish_run(&queue, prices, &reference, traced))
    }

    /// Price a batch where every option carries its own [`Payoff`]
    /// (matched one-to-one with `options`). For the barrier and Bermudan
    /// kernels the payoff parameters ride along in the widened per-option
    /// parameter block; for the vanilla kernels the payoff only selects
    /// the accuracy reference (their exercise rule is hard-coded).
    ///
    /// The run's `rmse`/`max_abs_error` are measured against the
    /// double-precision software reference for the *same payoffs*
    /// ([`price_payoff_f64`]), unlike [`Accelerator::price`], whose
    /// reference always exercises per the option's `style`.
    ///
    /// # Errors
    /// Rejects empty or length-mismatched batches, invalid options or
    /// payoffs, and payoffs this accelerator's kernel cannot price (see
    /// [`Accelerator::accepts_payoff`]); propagates runtime failures.
    pub fn price_payoffs(
        &self,
        options: &[OptionParams],
        payoffs: &[Payoff],
    ) -> Result<PricingRun, Error> {
        Ok(self.price_payoffs_inner(options, payoffs, false)?.0)
    }

    /// Like [`Accelerator::price_payoffs`], but with command tracing
    /// enabled on the session queue, returning the session's structured
    /// spans for callers that merge session timelines.
    ///
    /// # Errors
    /// Same as [`Accelerator::price_payoffs`].
    pub fn price_payoffs_with_session_trace(
        &self,
        options: &[OptionParams],
        payoffs: &[Payoff],
    ) -> Result<(PricingRun, SessionTrace), Error> {
        let (run, trace) = self.price_payoffs_inner(options, payoffs, true)?;
        Ok((run, trace.expect("trace requested")))
    }

    fn price_payoffs_inner(
        &self,
        options: &[OptionParams],
        payoffs: &[Payoff],
        traced: bool,
    ) -> Result<(PricingRun, Option<SessionTrace>), Error> {
        if options.is_empty() {
            return Err(Error::Invalid("empty batch".into()));
        }
        if options.len() != payoffs.len() {
            return Err(Error::Invalid(format!(
                "{} options but {} payoffs",
                options.len(),
                payoffs.len()
            )));
        }
        for o in options {
            o.validate().map_err(|e| Error::Invalid(e.to_string()))?;
        }
        for p in payoffs {
            p.validate().map_err(|e| Error::Invalid(e.to_string()))?;
            if !self.accepts_payoff(*p) {
                return Err(Error::Invalid(format!("{} cannot price a {p} payoff", self.arch)));
            }
        }
        let (ctx, queue, program) = self.fresh_session(true)?;
        if traced {
            queue.enable_trace();
        }
        let prices = match self.arch {
            KernelArch::Barrier | KernelArch::Bermudan => PayoffHost {
                n_steps: self.n_steps,
                precision: self.precision,
                kernel_name: self.arch.kernel_name(),
            }
            .run(&ctx, &queue, &program, options, payoffs)?,
            _ => self.run_host(&ctx, &queue, &program, options, self.n_steps)?,
        };
        let reference: Vec<f64> = options
            .iter()
            .zip(payoffs)
            .map(|(o, p)| price_payoff_f64(o, *p, self.n_steps))
            .collect();
        Ok(self.finish_run(&queue, prices, &reference, traced))
    }

    /// Close out a pricing session: drain the simulated clock, score the
    /// prices against `reference`, publish energy gauges and assemble the
    /// [`PricingRun`]. Shared by the style-based and payoff-based paths
    /// so both account identically.
    fn finish_run(
        &self,
        queue: &CommandQueue,
        prices: Vec<f64>,
        reference: &[f64],
        traced: bool,
    ) -> (PricingRun, Option<SessionTrace>) {
        let elapsed_s = queue.finish();
        let device_busy_s = queue.device_busy_s();
        let watts = self.report.power_watts;

        let rmse = metrics::rmse(&prices, reference);
        let max_abs_error = metrics::max_abs_error(&prices, reference);

        let options_per_s = prices.len() as f64 / elapsed_s;
        let joules = watts * elapsed_s;
        // Cumulative energy accounting per device, fed from the simulated
        // session (modeled watts × simulated elapsed/busy time), so it is
        // bit-identical regardless of wall-clock knobs like worker count.
        if let Some(reg) = &self.metrics {
            let device = self.device.info().kind.to_string();
            reg.add_gauge("energy.joules", &[("device", &device)], joules);
            reg.add_gauge("energy.busy_s", &[("device", &device)], device_busy_s);
        }
        let trace = traced
            .then(|| SessionTrace { spans: queue.trace_spans(), dropped: queue.trace_dropped() });
        (
            PricingRun {
                prices,
                elapsed_s,
                device_busy_s,
                watts,
                joules,
                options_per_s,
                options_per_j: options_per_s / watts,
                nodes_per_s: options_per_s * tree_nodes(self.n_steps) as f64,
                rmse,
                max_abs_error,
            },
            trace,
        )
    }

    /// Calibrate the per-option statistics model from small functional
    /// runs at [`CALIBRATION_STEPS`]. The fit is computed once per
    /// accelerator and cached.
    ///
    /// # Errors
    /// Propagates build and runtime failures.
    pub fn calibrate(&self) -> Result<StatsFit, Error> {
        if let Some(fit) = self.fit_cache.get() {
            return Ok(fit.clone());
        }
        let mut samples = Vec::with_capacity(3);
        for &n in &CALIBRATION_STEPS {
            samples.push(self.measure_per_option(n)?);
        }
        let fit = StatsFit::fit(CALIBRATION_STEPS, [&samples[0], &samples[1], &samples[2]]);
        let _ = self.fit_cache.set(fit.clone());
        Ok(fit)
    }

    /// Measure per-option statistics at lattice size `n` with one
    /// functional run of a single option (kernel op counts are identical
    /// across options of the same lattice size).
    ///
    /// For the straightforward architecture the statistics are per
    /// *batch* (every batch dispatches the same node grid); for the
    /// optimized architectures they are per work-group.
    ///
    /// # Errors
    /// Propagates build and runtime failures.
    pub fn measure_per_option(&self, n: usize) -> Result<bop_clir::stats::ExecStats, Error> {
        let (ctx, queue, program) = self.fresh_session(false)?;
        let options = [OptionParams::example()];
        self.run_host(&ctx, &queue, &program, &options, n)?;
        let stats = queue
            .kernel_stats(self.arch.kernel_name())
            .ok_or_else(|| Error::Invalid("no kernel statistics recorded".into()))?;
        match self.arch {
            // One option => batches = n; every batch is identical.
            KernelArch::Straightforward => {
                let launches = queue.counters().launches;
                Ok(divide_stats(&stats, launches))
            }
            // One option => exactly one work-group.
            _ => Ok(stats),
        }
    }

    /// Project the performance of pricing `n_options` at this
    /// accelerator's lattice size, paper-style: the full host program is
    /// replayed against the timing models with fitted statistics, no
    /// functional interpretation.
    ///
    /// # Errors
    /// Propagates build and runtime failures.
    pub fn project(&self, n_options: usize) -> Result<Projection, Error> {
        if n_options == 0 {
            return Err(Error::Invalid("empty batch".into()));
        }
        let fit = self.calibrate()?;
        let per_unit = fit.per_option(self.n_steps);

        let (ctx, queue, program) = self.fresh_session(false)?;
        let arch = self.arch;
        let n_steps = self.n_steps;
        queue.set_timing_only(Box::new(move |kernel, dispatch| match arch {
            // Per-batch statistics, independent of the dispatch.
            KernelArch::Straightforward => per_unit.clone(),
            // Single-work-item tasks: the dispatch carries no batch size,
            // so scale the consumer's per-option profile by the captured
            // batch directly. The producer's (much smaller) stream runs
            // concurrently under the graph's max(), so it contributes no
            // extra time of its own.
            KernelArch::Streaming => {
                if kernel == KernelArch::STREAMING_PRODUCER {
                    bop_clir::stats::ExecStats::default()
                } else {
                    scale_to_batch(&per_unit, n_options)
                }
            }
            // Per-work-group statistics scaled by the group count.
            _ => scale_to_batch(&per_unit, dispatch.global / (n_steps + 1)),
        }));

        // Dummy parameter set: in timing-only mode values are never read,
        // but the host program still derives buffer sizes and command
        // counts from it.
        let options = vec![OptionParams::example(); n_options];
        self.run_host(&ctx, &queue, &program, &options, self.n_steps)?;
        let elapsed_s = queue.finish();
        let counters = queue.counters();
        let watts = self.report.power_watts;
        let options_per_s = n_options as f64 / elapsed_s;
        Ok(Projection {
            n_steps: self.n_steps,
            n_options,
            elapsed_s,
            options_per_s,
            watts,
            options_per_j: options_per_s / watts,
            nodes_per_s: options_per_s * tree_nodes(self.n_steps) as f64,
            session_setup_s: self.device.info().session_setup_s,
            h2d_bytes: counters.h2d_bytes,
            d2h_bytes: counters.d2h_bytes,
        })
    }
}

/// The representative payoff a payoff-kernel architecture is calibrated
/// and projected with: the op stream of the barrier and Bermudan kernels
/// is payoff-value-independent, so any member of the class works; these
/// degenerate to the vanilla payoffs (never-knocking barrier, every-step
/// exercise) for good measure.
fn calibration_payoff(arch: KernelArch) -> Payoff {
    match arch {
        KernelArch::Barrier => Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 1e12 },
        KernelArch::Bermudan => Payoff::Bermudan { exercise_every: 1 },
        _ => unreachable!("only the payoff kernels calibrate with a default payoff"),
    }
}

/// Set the device-model gauges (power, bandwidth, overheads) that
/// describe `device` and the compiled kernel in `registry`.
fn publish_device_gauges(
    registry: &MetricsRegistry,
    device: &Arc<dyn Device>,
    arch: KernelArch,
    report: &BuildReport,
) {
    let info = device.info();
    let d = info.kind.to_string();
    let labels = [("device", d.as_str())];
    registry.set_gauge("device.power_watts", &labels, info.power_watts);
    registry.set_gauge("device.global_bw_bytes_per_s", &labels, info.global_bw_bytes_per_s);
    registry.set_gauge("device.command_overhead_s", &labels, info.command_overhead_s);
    registry.set_gauge("device.session_setup_s", &labels, info.session_setup_s);
    registry.set_gauge("device.compute_units", &labels, f64::from(info.compute_units));
    registry.set_gauge(
        "device.kernel_power_watts",
        &[("device", d.as_str()), ("kernel", arch.kernel_name())],
        report.power_watts,
    );
}

/// Divide every counter by `k` (for per-batch normalisation).
fn divide_stats(stats: &bop_clir::stats::ExecStats, k: u64) -> bop_clir::stats::ExecStats {
    assert!(k > 0, "division by zero batches");
    let mut out = stats.clone();
    for b in &mut out.block_execs {
        *b /= k;
    }
    out.barriers /= k;
    out.item_phases /= k;
    let o = &mut out.ops;
    for f in [
        &mut o.add32,
        &mut o.add64,
        &mut o.mul32,
        &mut o.mul64,
        &mut o.div32,
        &mut o.div64,
        &mut o.minmax32,
        &mut o.minmax64,
        &mut o.transc32,
        &mut o.transc64,
        &mut o.pow32,
        &mut o.pow64,
        &mut o.sqrt32,
        &mut o.sqrt64,
        &mut o.cmp,
        &mut o.select,
        &mut o.int_alu,
        &mut o.cast,
        &mut o.mov,
        &mut o.wi_query,
    ] {
        *f /= k;
    }
    let m = &mut out.mem;
    for f in [
        &mut m.global_loads,
        &mut m.global_load_bytes,
        &mut m.global_stores,
        &mut m.global_store_bytes,
        &mut m.local_loads,
        &mut m.local_load_bytes,
        &mut m.local_stores,
        &mut m.local_store_bytes,
        &mut m.private_accesses,
    ] {
        *f /= k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::workload;

    #[test]
    fn optimized_on_gpu_prices_accurately() {
        let acc = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(48)
            .build()
            .expect("builds");
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 6, 1);
        let run = acc.price(&options).expect("prices");
        assert!(run.rmse < 1e-10, "exact math must match the reference: {}", run.rmse);
        assert!(run.options_per_s > 0.0);
        assert!(run.options_per_j > 0.0);
        assert!(run.joules > 0.0);
    }

    #[test]
    fn fpga_optimized_shows_pow_rmse_but_host_leaves_do_not() {
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 6, 2);
        let buggy = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        let fixed = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::OptimizedHostLeaves)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        let run_buggy = buggy.price(&options).expect("prices");
        let run_fixed = fixed.price(&options).expect("prices");
        assert!(run_buggy.rmse > 1e-9, "pow bug must show: {}", run_buggy.rmse);
        assert!(run_fixed.rmse < 1e-12, "host leaves avoid it: {}", run_fixed.rmse);
    }

    #[test]
    fn projection_reproduces_throughput_ordering() {
        // At paper scale the optimized kernel must beat the straightforward
        // one by orders of magnitude on the same device.
        let n = 256; // keep the calibration quick
        let slow = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::Straightforward)
            .precision(Precision::Double)
            .n_steps(n)
            .build()
            .expect("builds");
        let fast = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(n)
            .build()
            .expect("builds");
        let p_slow = slow.project(64).expect("projects");
        let p_fast = fast.project(64).expect("projects");
        assert!(
            p_fast.options_per_s > p_slow.options_per_s * 10.0,
            "IV.B must dominate IV.A: {} vs {}",
            p_fast.options_per_s,
            p_slow.options_per_s
        );
        assert!(p_slow.d2h_bytes > p_fast.d2h_bytes * 100, "IV.A drowns in read-backs");
    }

    #[test]
    fn reduced_reads_speed_up_straightforward_projection() {
        let n = 128;
        let naive = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Straightforward)
            .precision(Precision::Double)
            .n_steps(n)
            .build()
            .expect("builds");
        let modified = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Straightforward)
            .precision(Precision::Double)
            .n_steps(n)
            .reduced_reads()
            .build()
            .expect("builds");
        let p_naive = naive.project(64).expect("projects");
        let p_mod = modified.project(64).expect("projects");
        assert!(
            p_mod.options_per_s > p_naive.options_per_s * 2.0,
            "reduced reads: {} vs {}",
            p_mod.options_per_s,
            p_naive.options_per_s
        );
    }

    #[test]
    fn calibration_fit_validates_on_a_fourth_size() {
        let acc = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(crate::perfmodel::VALIDATION_STEPS)
            .build()
            .expect("builds");
        let fit = acc.calibrate().expect("calibrates");
        let predicted = fit.per_option(crate::perfmodel::VALIDATION_STEPS);
        let measured = acc.measure_per_option(crate::perfmodel::VALIDATION_STEPS).expect("runs");
        // The lattice metrics are exactly polynomial; allow rounding slack.
        let close = |a: u64, b: u64| (a as i64 - b as i64).unsigned_abs() <= 2 + b / 100;
        assert!(
            close(predicted.total_block_execs(), measured.total_block_execs()),
            "block execs: {} vs {}",
            predicted.total_block_execs(),
            measured.total_block_execs()
        );
        assert!(close(predicted.barriers, measured.barriers), "barriers");
        assert!(close(predicted.ops.pow64, measured.ops.pow64), "pow count");
        assert!(
            close(predicted.mem.local_load_bytes, measured.mem.local_load_bytes),
            "local bytes"
        );
    }

    #[test]
    fn fault_plans_are_deterministic_and_leave_successful_prices_exact() {
        let build = |plan: Option<FaultPlan>| {
            let mut b = Accelerator::builder(crate::devices::gpu())
                .arch(KernelArch::Optimized)
                .precision(Precision::Double)
                .n_steps(24);
            if let Some(plan) = plan {
                b = b.fault_plan(plan);
            }
            b.build().expect("builds")
        };
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 3);
        let reference = build(None).price(&options).expect("fault-free prices");

        // An inert plan is bit-identical to no plan at all.
        let none = build(Some(FaultPlan::none())).price(&options).expect("prices");
        assert_eq!(none.prices, reference.prices);
        assert_eq!(none.elapsed_s, reference.elapsed_s);

        // A faulty accelerator, attempted repeatedly, must reproduce the
        // same outcome sequence run to run — and every success must be
        // bit-identical to the fault-free prices.
        let campaign = || {
            let acc = build(Some(FaultPlan::new(0.05, 77)));
            (0..10)
                .map(|_| match acc.price(&options) {
                    Ok(run) => {
                        assert_eq!(run.prices, reference.prices, "survivors are exact");
                        "ok".to_string()
                    }
                    Err(e) => {
                        assert!(e.is_retryable(), "injected faults are typed: {e}");
                        e.to_string()
                    }
                })
                .collect::<Vec<_>>()
        };
        let first = campaign();
        assert_eq!(first, campaign(), "same seed, same outcome sequence");
        assert!(first.iter().any(|o| o == "ok"), "rate 0.05 lets some sessions through");
        assert!(first.iter().any(|o| o != "ok"), "10 sessions at rate 0.05 hit some fault");
    }

    #[test]
    fn malformed_fault_plan_is_a_structured_config_error() {
        let mut config = AcceleratorConfig::new(crate::devices::gpu());
        config.n_steps = 16;
        config.faults = Some(FaultPlan { rate: 7.5, ..FaultPlan::none() });
        match config.build() {
            Err(Error::Config { var, cause }) => {
                assert_eq!(var, "fault_plan");
                assert!(cause.message.contains("[0, 1]"), "{cause}");
            }
            other => panic!("expected Error::Config, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn calibration_and_projection_ignore_fault_plans() {
        // Even a rate-1.0 plan must not touch operator tooling: the
        // model fit and the paper-scale projection run fault-free.
        let faulty = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(64)
            .fault_plan(FaultPlan::new(1.0, 9))
            .build()
            .expect("builds");
        let p = faulty.project(32).expect("projection is fault-free");
        assert!(p.options_per_s > 0.0);
        faulty.price(&[OptionParams::example()]).expect_err("pricing does inject");
    }

    #[test]
    fn invalid_requests_rejected() {
        let acc = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(16)
            .build()
            .expect("builds");
        assert!(matches!(acc.price(&[]), Err(Error::Invalid(_))));
        let mut bad = OptionParams::example();
        bad.volatility = -1.0;
        assert!(matches!(acc.price(&[bad]), Err(Error::Invalid(_))));
        assert!(matches!(acc.project(0), Err(Error::Invalid(_))));
        assert!(matches!(
            Accelerator::builder(crate::devices::gpu())
                .arch(KernelArch::Optimized)
                .precision(Precision::Double)
                .n_steps(1)
                .build(),
            Err(Error::Invalid(_))
        ));
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use bop_finance::workload;

    #[test]
    fn builder_defaults_are_the_documented_ones() {
        let b = Accelerator::builder(crate::devices::gpu());
        let c = b.config();
        assert_eq!(c.arch, KernelArch::Optimized);
        assert_eq!(c.precision, Precision::Double);
        assert_eq!(c.n_steps, 64);
        assert!(c.build.is_none() && c.metrics.is_none() && c.workers.is_none());
        assert!(!c.reduced_reads);
        assert!(b.build().is_ok());
    }

    #[test]
    fn config_clone_builds_an_identical_shard() {
        let mut config = AcceleratorConfig::new(crate::devices::gpu());
        config.n_steps = 32;
        let a = config.clone().build().expect("builds");
        let b = config.build().expect("builds");
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 9);
        let run_a = a.price(&options).expect("prices");
        let run_b = b.price(&options).expect("prices");
        assert_eq!(run_a.prices, run_b.prices, "clones are bit-identical");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_shim_matches_the_builder() {
        let via_shim = Accelerator::new(
            crate::devices::gpu(),
            KernelArch::Optimized,
            Precision::Double,
            32,
            None,
        )
        .expect("builds");
        let via_builder =
            Accelerator::builder(crate::devices::gpu()).n_steps(32).build().expect("builds");
        let options = [OptionParams::example()];
        assert_eq!(
            via_shim.price(&options).expect("prices").prices,
            via_builder.price(&options).expect("prices").prices,
        );
    }
}

#[cfg(test)]
mod fit_failure_tests {
    use super::*;
    use crate::kernels::KernelArch;

    #[test]
    fn paper_kernel_does_not_fit_the_smaller_part() {
        // The conclusion's "less power consuming FPGA board" idea fails for
        // the published configuration: the EP4SGX230 rejects it, and the
        // error names the exhausted resource.
        let small = bop_fpga::FpgaDevice::with_part(
            bop_fpga::FpgaPart::ep4sgx230(),
            bop_clir::mathlib::DeviceMath::altera_13_0(),
        );
        let result = Accelerator::builder(small)
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(128)
            .build();
        match result {
            Err(Error::Build(e)) => {
                assert!(e.message.contains("does not fit"), "got: {e}");
            }
            other => panic!("expected a fit failure, got {:?}", other.map(|_| "ok")),
        }
        // A scalar build does fit the smaller part.
        let small = bop_fpga::FpgaDevice::with_part(
            bop_fpga::FpgaPart::ep4sgx230(),
            bop_clir::mathlib::DeviceMath::altera_13_0(),
        );
        let scalar = bop_ocl::BuildOptions {
            simd: 1,
            compute_units: 1,
            unroll: Some(1),
            ..Default::default()
        };
        assert!(Accelerator::builder(small)
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(128)
            .build_options(scalar)
            .build()
            .is_ok());
    }
}
