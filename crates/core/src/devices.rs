//! Constructors for the paper's three devices.

use bop_ocl::Device;
use std::sync::Arc;

/// The Terasic DE4 FPGA board with the Altera 13.0 compiler (buggy `pow`).
pub fn fpga() -> Arc<dyn Device> {
    bop_fpga::FpgaDevice::de4()
}

/// The DE4 with the 13.0 SP1 compiler (accurate `pow`).
pub fn fpga_sp1() -> Arc<dyn Device> {
    bop_fpga::FpgaDevice::de4_sp1()
}

/// The NVIDIA GTX660 development/comparison GPU.
pub fn gpu() -> Arc<dyn Device> {
    bop_gpu::GpuDevice::gtx660()
}

/// The Xeon X5450 host CPU.
pub fn cpu() -> Arc<dyn Device> {
    bop_cpu::CpuDevice::x5450()
}

#[cfg(test)]
mod tests {
    use bop_ocl::DeviceKind;

    #[test]
    fn paper_platform_has_all_three_kinds() {
        let p = crate::paper_platform();
        assert!(p.device_by_kind(DeviceKind::Fpga).is_some());
        assert!(p.device_by_kind(DeviceKind::Gpu).is_some());
        assert!(p.device_by_kind(DeviceKind::Cpu).is_some());
        assert_eq!(p.devices().len(), 3);
    }
}
