//! E10 — ablations of the design choices discussed in Sections IV, V
//! and the conclusion.
//!
//! * **Reduced reads** — the paper's "modified version of this kernel on
//!   GPU, with a reduced number of read operations between host and
//!   device, has an acceleration factor 14 times better" (Section V.C).
//! * **Build-option grid** — vectorization / replication / unrolling,
//!   "3 parameters that help reach the best compromise between resource
//!   utilization, latency and throughput" (Section V.B).
//! * **Frequency scaling** — the conclusion's proposal: "either clock
//!   frequency or parallelism levels can be lowered to reduce energy
//!   consumption" toward the 10 W budget.

use crate::accelerator::Accelerator;
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_cpu::Precision;
use bop_ocl::BuildOptions;
use std::sync::Arc;

/// Result of the reduced-reads ablation on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedReadsResult {
    /// Device name.
    pub device: String,
    /// Naive (full ping-pong read) throughput, options/s.
    pub naive_options_per_s: f64,
    /// Modified (root-only read) throughput, options/s.
    pub modified_options_per_s: f64,
}

impl ReducedReadsResult {
    /// The acceleration factor of the modified version (the paper reports
    /// 14x on the GPU).
    pub fn speedup(&self) -> f64 {
        self.modified_options_per_s / self.naive_options_per_s
    }
}

/// Compare full-read and root-only-read variants of kernel IV.A.
///
/// # Errors
/// Propagates accelerator failures.
pub fn reduced_reads(
    device: Arc<dyn bop_ocl::Device>,
    n_steps: usize,
    n_options: usize,
) -> Result<ReducedReadsResult, Error> {
    let name = device.info().name.clone();
    let naive = Accelerator::builder(device.clone())
        .arch(KernelArch::Straightforward)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .build()?;
    let modified = Accelerator::builder(device)
        .arch(KernelArch::Straightforward)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .reduced_reads()
        .build()?;
    Ok(ReducedReadsResult {
        device: name,
        naive_options_per_s: naive.project(n_options)?.options_per_s,
        modified_options_per_s: modified.project(n_options)?.options_per_s,
    })
}

/// One point of the build-option exploration grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Build options tried.
    pub build: BuildOptions,
    /// `None` if the design did not fit; otherwise the outcome.
    pub outcome: Option<GridOutcome>,
}

/// Fit + performance of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// Logic utilization.
    pub logic_util: f64,
    /// Kernel clock, Hz.
    pub clock_hz: f64,
    /// Power, watts.
    pub power_watts: f64,
    /// Throughput, options/s.
    pub options_per_s: f64,
    /// Energy efficiency, options/J.
    pub options_per_j: f64,
}

/// Explore the (simd, unroll) grid for kernel IV.B on the FPGA — the
/// design-space exploration behind the paper's chosen unroll 2 x vec 4.
///
/// # Errors
/// Propagates accelerator failures other than fit failures (which become
/// `outcome: None`).
pub fn build_grid(
    n_steps: usize,
    n_options: usize,
    simds: &[u32],
    unrolls: &[u32],
) -> Result<Vec<GridPoint>, Error> {
    let mut grid = Vec::new();
    for &simd in simds {
        for &unroll in unrolls {
            let build = BuildOptions {
                simd,
                compute_units: 1,
                unroll: Some(unroll),
                ..BuildOptions::default()
            };
            let acc = match Accelerator::builder(crate::devices::fpga())
                .arch(KernelArch::Optimized)
                .precision(Precision::Double)
                .n_steps(n_steps)
                .build_options(build.clone())
                .build()
            {
                Ok(acc) => acc,
                Err(Error::Build(_)) => {
                    grid.push(GridPoint { build, outcome: None });
                    continue;
                }
                Err(e) => return Err(e),
            };
            let report = acc.report().clone();
            let projection = acc.project(n_options)?;
            grid.push(GridPoint {
                build,
                outcome: Some(GridOutcome {
                    logic_util: report.logic_utilization.unwrap_or(0.0),
                    clock_hz: report.clock_hz,
                    power_watts: report.power_watts,
                    options_per_s: projection.options_per_s,
                    options_per_j: projection.options_per_j,
                }),
            });
        }
    }
    Ok(grid)
}

/// The conclusion's frequency/power trade-off: run kernel IV.B as built,
/// but at a derated clock, and report throughput and power. Power scales
/// with the dynamic fraction (static power does not shrink), so energy
/// per option *improves* as long as throughput still meets the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPoint {
    /// Fraction of the fitted Fmax, 0..=1.
    pub clock_fraction: f64,
    /// Throughput at this clock, options/s.
    pub options_per_s: f64,
    /// Power at this clock, watts.
    pub power_watts: f64,
    /// Energy efficiency, options/J.
    pub options_per_j: f64,
    /// Does this point still meet the paper's 2000 options/s goal?
    pub meets_goal: bool,
    /// Does it fit the paper's 10 W budget?
    pub within_budget: bool,
}

/// Sweep clock fractions for kernel IV.B on the FPGA.
///
/// # Errors
/// Propagates accelerator failures.
pub fn frequency_sweep(
    n_steps: usize,
    n_options: usize,
    fractions: &[f64],
) -> Result<Vec<FrequencyPoint>, Error> {
    let acc = Accelerator::builder(crate::devices::fpga())
        .arch(KernelArch::Optimized)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .build()?;
    let report = acc.report().clone();
    let base = acc.project(n_options)?;
    let static_w = bop_fpga::calib::POWER_STATIC_W;
    let dynamic_w = report.power_watts - static_w;
    Ok(fractions
        .iter()
        .map(|&f| {
            // Kernel time is clock-bound; transfers are not. At paper
            // scale IV.B is >99% kernel-bound, so throughput ~ f.
            let options_per_s = base.options_per_s * f;
            let power_watts = static_w + dynamic_w * f;
            FrequencyPoint {
                clock_fraction: f,
                options_per_s,
                power_watts,
                options_per_j: options_per_s / power_watts,
                meets_goal: options_per_s >= 2000.0,
                within_budget: power_watts <= 10.0,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_reads_speedup_is_an_order_of_magnitude_on_gpu() {
        // The paper reports 14x (840 vs 58.4 options/s) at N = 1024; the
        // effect is already dramatic at reduced scale.
        // The effect grows with the buffer size (n^2): already 4x at
        // n = 256, the paper's 14x at N = 1024 (checked by the ablation
        // bench binary at full scale).
        let r = reduced_reads(crate::devices::gpu(), 256, 256).expect("runs");
        assert!(r.speedup() > 3.0, "reduced reads must be many times faster: {}x", r.speedup());
    }

    #[test]
    fn grid_contains_the_paper_point_and_infeasible_corners() {
        let grid = build_grid(128, 128, &[1, 2, 4, 8, 16], &[1, 2, 4]).expect("explores");
        let paper = grid
            .iter()
            .find(|p| p.build.simd == 4 && p.build.unroll == Some(2))
            .expect("paper point present");
        assert!(paper.outcome.is_some(), "the paper's configuration fits");
        assert!(
            grid.iter().any(|p| p.outcome.is_none()),
            "some aggressive corner must fail to fit"
        );
        // More lanes => more throughput, while it fits.
        let t = |simd: u32, unroll: u32| {
            grid.iter()
                .find(|p| p.build.simd == simd && p.build.unroll == Some(unroll))
                .and_then(|p| p.outcome.as_ref())
                .map(|o| o.options_per_s)
        };
        if let (Some(a), Some(b)) = (t(1, 1), t(4, 2)) {
            assert!(b > a * 3.0, "paper point much faster than scalar: {a} vs {b}");
        }
    }

    #[test]
    fn frequency_scaling_reaches_the_power_budget() {
        let points =
            frequency_sweep(256, 512, &[1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4]).expect("sweeps");
        assert!(points[0].power_watts > 10.0, "full clock exceeds the 10 W budget");
        let feasible: Vec<_> = points.iter().filter(|p| p.within_budget).collect();
        assert!(!feasible.is_empty(), "derating must reach the budget eventually");
        // Energy efficiency improves as the static share is amortised less:
        // options/J = rate / (static + dyn f) — decreasing f *hurts* when
        // static dominates; the sweep exposes the trade-off either way.
        for w in points.windows(2) {
            assert!(w[1].power_watts < w[0].power_watts);
            assert!(w[1].options_per_s < w[0].options_per_s);
        }
    }
}

/// D. Front-end CSE ablation: what common-subexpression elimination does
/// to the fitted design (an optimisation Altera's flow applies that our
/// default calibration deliberately leaves off — see
/// `bop_clc::Options::cse`).
#[derive(Debug, Clone, PartialEq)]
pub struct CseAblation {
    /// Which kernel.
    pub arch: KernelArch,
    /// Fit without CSE (the calibrated default).
    pub plain: crate::experiments::table1::Table1Entry,
    /// Fit with CSE enabled.
    pub cse: crate::experiments::table1::Table1Entry,
}

/// Fit both kernels with and without CSE.
///
/// # Errors
/// Propagates build failures.
pub fn cse_ablation() -> Result<Vec<CseAblation>, Error> {
    use crate::experiments::table1::fit_kernel_with;
    let mut out = Vec::new();
    for arch in [KernelArch::Straightforward, KernelArch::Optimized] {
        let plain = fit_kernel_with(arch, arch.paper_build_options())?;
        let mut build = arch.paper_build_options();
        build.cse = true;
        let cse = fit_kernel_with(arch, build)?;
        out.push(CseAblation { arch, plain, cse });
    }
    Ok(out)
}

#[cfg(test)]
mod cse_ablation_tests {
    use super::*;

    #[test]
    fn cse_never_increases_logic() {
        for row in cse_ablation().expect("fits") {
            assert!(
                row.cse.logic_util <= row.plain.logic_util + 1e-9,
                "{}: CSE must not add logic: {} vs {}",
                row.arch,
                row.cse.logic_util,
                row.plain.logic_util
            );
            assert!(
                row.cse.clock_hz >= row.plain.clock_hz - 1.0,
                "{}: a smaller design closes at least as fast",
                row.arch
            );
        }
    }

    #[test]
    fn cse_helps_the_redundant_kernel_most() {
        // IV.A recomputes `t * 5` per parameter; IV.B has little sharing.
        let rows = cse_ablation().expect("fits");
        let saving = |r: &CseAblation| r.plain.logic_util - r.cse.logic_util;
        let a = rows.iter().find(|r| r.arch == KernelArch::Straightforward).expect("IV.A");
        assert!(saving(a) >= 0.0);
    }
}

/// E. Fixed-point ablation — the "custom data types" the paper declined
/// (Section V.B). Reports the accuracy curve of a fixed-point backward
/// induction and the hypothetical DSP saving of replacing the double
/// multipliers with 64-bit integer ones.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointAblation {
    /// Fraction-width sweep (bits vs absolute error) on the example option.
    pub sweep: Vec<bop_finance::fixedpoint::FixedPointPoint>,
    /// DSP elements of the fitted IV.B image (double precision).
    pub double_dsp: u64,
    /// Hypothetical DSP count with 64-bit fixed-point multipliers
    /// (4 DSP18 per multiply instead of 13; the pow core is unchanged —
    /// leaves stay on the host in a fixed-point design).
    pub fixed_dsp_estimate: u64,
}

/// Run the fixed-point ablation at `n_steps`.
///
/// # Errors
/// Propagates build failures.
pub fn fixed_point(n_steps: usize) -> Result<FixedPointAblation, Error> {
    let sweep = bop_finance::fixedpoint::precision_sweep(
        &bop_finance::types::OptionParams::example(),
        n_steps,
        &[12, 16, 20, 24, 32, 44],
    );
    let entry = crate::experiments::table1::fit_kernel(KernelArch::Optimized)?;
    // 10 f64 multiplies per lane x 4 lanes at 13 DSP each -> 4 DSP each,
    // and the pow core (48 DSP/lane) is removed (host leaves).
    let mul_saving = 10 * 4 * (13 - 4);
    let pow_saving = 48 * 4;
    let fixed_dsp_estimate = entry.dsp18.saturating_sub(mul_saving + pow_saving);
    Ok(FixedPointAblation { sweep, double_dsp: entry.dsp18, fixed_dsp_estimate })
}

#[cfg(test)]
mod fixed_point_tests {
    use super::*;

    #[test]
    fn fixed_point_story_holds() {
        let a = fixed_point(128).expect("runs");
        // The error curve must cross the paper's accuracy requirement
        // somewhere: narrow widths fail it, wide widths meet it.
        assert!(a.sweep.first().expect("points").abs_error > 1e-3);
        assert!(a.sweep.last().expect("points").abs_error < 1e-6);
        // And the resource head-room the paper alludes to is real.
        assert!(a.fixed_dsp_estimate < a.double_dsp / 2);
    }
}

/// F. The conclusion's what-if: can a different board hold *both*
/// constraints (2000 options/s AND 10 W)? On the DE4 the answer is no
/// (derating to 10 W costs too much speed at N = 1024); this driver fits
/// kernel IV.B on a newer, larger part, then derates its clock to the
/// slowest speed that still meets the throughput goal and reports the
/// resulting power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConclusionWhatIf {
    /// Full-clock throughput on the new part, options/s.
    pub full_options_per_s: f64,
    /// Full-clock power, watts.
    pub full_power_w: f64,
    /// Clock fraction chosen to just meet 2000 options/s.
    pub derated_fraction: f64,
    /// Derated throughput, options/s.
    pub derated_options_per_s: f64,
    /// Derated power, watts.
    pub derated_power_w: f64,
    /// Both constraints met?
    pub feasible: bool,
}

/// Evaluate the what-if at lattice size `n_steps` (use the paper's 1023
/// for the real question).
///
/// # Errors
/// Propagates build/projection failures.
pub fn conclusion_whatif(n_steps: usize) -> Result<ConclusionWhatIf, Error> {
    let device = bop_fpga::FpgaDevice::with_part(
        bop_fpga::FpgaPart::ep5sgxa7(),
        bop_clir::mathlib::DeviceMath::altera_13_0(),
    );
    let acc = Accelerator::builder(device)
        .arch(KernelArch::Optimized)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .build()?;
    let report = acc.report().clone();
    let base = acc.project(2000)?;
    let static_w = bop_fpga::calib::POWER_STATIC_W;
    let dynamic_w = report.power_watts - static_w;
    // Derate to the slowest clock that still meets the goal (kernel-bound
    // at paper scale, so throughput ~ clock).
    let fraction = (2000.0 / base.options_per_s).clamp(0.05, 1.0);
    let derated_rate = base.options_per_s * fraction;
    let derated_power = static_w + dynamic_w * fraction;
    Ok(ConclusionWhatIf {
        full_options_per_s: base.options_per_s,
        full_power_w: report.power_watts,
        derated_fraction: fraction,
        derated_options_per_s: derated_rate,
        derated_power_w: derated_power,
        feasible: derated_rate >= 2000.0 * 0.999 && derated_power <= 10.0,
    })
}

#[cfg(test)]
mod whatif_tests {
    use super::*;

    #[test]
    fn a_newer_part_meets_both_constraints_where_the_de4_cannot() {
        let w = conclusion_whatif(crate::experiments::table2::PAPER_STEPS).expect("runs");
        assert!(
            w.full_options_per_s > 3000.0,
            "the bigger part is faster at full clock: {}",
            w.full_options_per_s
        );
        assert!(w.full_power_w > 10.0, "at full clock it still busts the budget");
        assert!(
            w.feasible,
            "derated, it should hold both constraints: {:.0} options/s at {:.1} W",
            w.derated_options_per_s, w.derated_power_w
        );
    }
}
