//! Experiment drivers: one module per table/figure of the paper.
//!
//! See `DESIGN.md`'s per-experiment index (E1-E10). Each driver returns
//! structured data; the `bop-bench` binaries render them as the rows/series
//! the paper reports, and `EXPERIMENTS.md` records paper-vs-measured.

pub mod ablation;
pub mod accuracy;
pub mod figures;
pub mod saturation;
pub mod table1;
pub mod table2;
pub mod usecase;
