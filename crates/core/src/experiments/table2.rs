//! E2 — Table II: throughput, accuracy and energy efficiency of every
//! kernel/platform/precision combination, plus the reference software and
//! the literature comparison rows.

use crate::accelerator::Accelerator;
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_cpu::{Precision, ReferenceSoftware, XeonModel};
use bop_finance::binomial::tree_nodes;
use bop_finance::{metrics, workload};
use std::sync::Arc;

/// The paper's lattice size: "a discretization step of T = 1024" means
/// 1024 leaf rows, i.e. one work-item per row in kernel IV.B and a
/// work-group of exactly the GTX660's maximum size (1024), which makes the
/// backward induction 1023 steps deep.
pub const PAPER_STEPS: usize = 1023;
/// Batch size used for projected (post-saturation) throughput.
pub const PROJECTION_OPTIONS: usize = 10_000;
/// Options functionally priced at full lattice size for the RMSE column.
pub const RMSE_OPTIONS: usize = 12;

/// One column of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Column {
    /// Column label, e.g. "Kernel IV.A / FPGA / double".
    pub label: String,
    /// Throughput, options/second (post-saturation).
    pub options_per_s: f64,
    /// RMSE against the double-precision reference.
    pub rmse: f64,
    /// Energy efficiency, options/joule.
    pub options_per_j: f64,
    /// Node throughput, nodes/second.
    pub nodes_per_s: f64,
    /// Device power used for the energy column, watts.
    pub watts: f64,
    /// The paper's published options/s for this column, if any.
    pub paper_options_per_s: Option<f64>,
    /// The paper's published options/J for this column, if any.
    pub paper_options_per_j: Option<f64>,
}

/// Run one accelerator column: projected throughput at `PAPER_STEPS`
/// plus a full-size functional RMSE measurement.
///
/// `rmse_steps` lets callers trade fidelity for runtime (the RMSE of the
/// pow model grows with the exponent range, i.e. with `n`; at 1024 it is
/// the paper's ~1e-3).
fn accelerator_column(
    label: &str,
    device: Arc<dyn bop_ocl::Device>,
    arch: KernelArch,
    precision: Precision,
    rmse_steps: usize,
    paper: (Option<f64>, Option<f64>),
) -> Result<Table2Column, Error> {
    let acc = Accelerator::builder(device.clone())
        .arch(arch)
        .precision(precision)
        .n_steps(PAPER_STEPS)
        .build()?;
    // IV.A is slow even to replay: scale the projected batch down (its
    // timing is per-batch linear, so the marginal rate is unaffected).
    let batch = match arch {
        KernelArch::Straightforward => 2_000,
        _ => PROJECTION_OPTIONS,
    };
    let projection = acc.project(batch)?;

    // Functional RMSE at full lattice size on a small batch. Kernel IV.A
    // has no pow and therefore no N-dependent error mechanism; its RMSE is
    // measured at a reduced lattice (full-size functional simulation of
    // the batch-per-step pipeline costs ~10^10 interpreted instructions
    // for no additional information).
    let rmse_steps = match arch {
        KernelArch::Straightforward => rmse_steps.min(192),
        _ => rmse_steps,
    };
    let rmse_acc =
        Accelerator::builder(device).arch(arch).precision(precision).n_steps(rmse_steps).build()?;
    let options =
        workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, RMSE_OPTIONS, 2014);
    let run = rmse_acc.price(&options)?;

    Ok(Table2Column {
        label: label.to_owned(),
        options_per_s: projection.options_per_s,
        rmse: run.rmse,
        options_per_j: projection.options_per_j,
        nodes_per_s: projection.nodes_per_s,
        watts: projection.watts,
        paper_options_per_s: paper.0,
        paper_options_per_j: paper.1,
    })
}

/// The reference-software column.
fn reference_column(precision: Precision) -> Table2Column {
    let model = XeonModel::x5450();
    let sw = ReferenceSoftware::new();
    let options =
        workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, RMSE_OPTIONS, 2014);
    // RMSE of the single-precision reference against the double one.
    let rmse = match precision {
        Precision::Double => 0.0,
        Precision::Single => {
            let dbl = sw.price_batch(&options, PAPER_STEPS, Precision::Double);
            let sgl = sw.price_batch(&options, PAPER_STEPS, Precision::Single);
            metrics::rmse(&sgl.prices, &dbl.prices)
        }
    };
    let options_per_s = model.options_per_s(PAPER_STEPS, precision);
    let (label, paper_s, paper_j) = match precision {
        Precision::Double => ("Reference / Xeon X5450 / double", 116.0, 1.0),
        Precision::Single => ("Reference / Xeon X5450 / single", 222.0, 1.85),
    };
    Table2Column {
        label: label.to_owned(),
        options_per_s,
        rmse,
        options_per_j: options_per_s / model.tdp_watts,
        nodes_per_s: options_per_s * tree_nodes(PAPER_STEPS) as f64,
        watts: model.tdp_watts,
        paper_options_per_s: Some(paper_s),
        paper_options_per_j: Some(paper_j),
    }
}

/// Static literature rows quoted by the paper's Table II for comparison.
pub fn literature_rows() -> Vec<Table2Column> {
    let row = |label: &str, options_per_s: f64| Table2Column {
        label: label.to_owned(),
        options_per_s,
        rmse: 0.0,
        options_per_j: f64::NAN,
        nodes_per_s: options_per_s * tree_nodes(PAPER_STEPS) as f64,
        watts: f64::NAN,
        paper_options_per_s: Some(options_per_s),
        paper_options_per_j: None,
    };
    vec![
        row("[9] Jin et al. / Virtex 4 xc4vsx55 / double", 385.0),
        row("[10] Wynnyk & Magdon-Ismail / Stratix III EP3SE260 / double", 1152.0),
    ]
}

/// Configuration of a full Table II run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Config {
    /// Lattice size for the functional RMSE measurement (1024 = paper;
    /// smaller is faster and slightly optimistic for the pow model).
    pub rmse_steps: usize,
}

impl Default for Table2Config {
    fn default() -> Table2Config {
        Table2Config { rmse_steps: PAPER_STEPS }
    }
}

/// Regenerate Table II: all measured columns (literature rows are appended
/// by the caller if desired).
///
/// # Errors
/// Propagates accelerator failures.
pub fn run(config: &Table2Config) -> Result<Vec<Table2Column>, Error> {
    let n = config.rmse_steps;
    Ok(vec![
        accelerator_column(
            "Kernel IV.A / FPGA / double",
            crate::devices::fpga(),
            KernelArch::Straightforward,
            Precision::Double,
            n,
            (Some(25.0), Some(1.7)),
        )?,
        accelerator_column(
            "Kernel IV.A / GPU / double",
            crate::devices::gpu(),
            KernelArch::Straightforward,
            Precision::Double,
            n,
            (Some(53.0), Some(0.4)),
        )?,
        accelerator_column(
            "Kernel IV.B / FPGA / double",
            crate::devices::fpga(),
            KernelArch::Optimized,
            Precision::Double,
            n,
            (Some(2400.0), Some(140.0)),
        )?,
        accelerator_column(
            "Kernel IV.B / GPU / single",
            crate::devices::gpu(),
            KernelArch::Optimized,
            Precision::Single,
            n,
            (Some(47_000.0), Some(340.0)),
        )?,
        accelerator_column(
            "Kernel IV.B / GPU / double",
            crate::devices::gpu(),
            KernelArch::Optimized,
            Precision::Double,
            n,
            (Some(8_900.0), Some(64.0)),
        )?,
        accelerator_column(
            "Kernel IV.C / FPGA / double",
            crate::devices::fpga(),
            KernelArch::Streaming,
            Precision::Double,
            n,
            // The paper stops at IV.B; the streaming column extends its
            // Table II with the channel idiom its discussion points to.
            (None, None),
        )?,
        reference_column(Precision::Single),
        reference_column(Precision::Double),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::OnceLock;

    /// A fast Table II (reduced RMSE lattice) used by the test suite; the
    /// bench binary runs the full-size version. Computed once.
    fn quick() -> &'static [Table2Column] {
        static CACHE: OnceLock<Vec<Table2Column>> = OnceLock::new();
        CACHE.get_or_init(|| run(&Table2Config { rmse_steps: 128 }).expect("table 2 runs"))
    }

    #[test]
    fn who_wins_matches_the_paper() {
        let t = quick();
        let by = |label: &str| {
            t.iter().find(|c| c.label.contains(label)).unwrap_or_else(|| panic!("{label}"))
        };
        let fpga_b = by("IV.B / FPGA / double");
        let gpu_b_dbl = by("IV.B / GPU / double");
        let gpu_b_sgl = by("IV.B / GPU / single");
        let fpga_a = by("IV.A / FPGA");
        let gpu_a = by("IV.A / GPU");
        let cpu_dbl = by("Xeon X5450 / double");

        // Raw speed ordering (Table II options/s row).
        assert!(gpu_b_sgl.options_per_s > gpu_b_dbl.options_per_s);
        assert!(gpu_b_dbl.options_per_s > fpga_b.options_per_s);
        assert!(fpga_b.options_per_s > cpu_dbl.options_per_s);
        assert!(cpu_dbl.options_per_s > gpu_a.options_per_s);
        assert!(gpu_a.options_per_s > fpga_a.options_per_s);

        // The headline: the FPGA wins on energy, by about 2x over the GPU
        // and far more over the CPU.
        assert!(fpga_b.options_per_j > 1.5 * gpu_b_dbl.options_per_j);
        assert!(fpga_b.options_per_j > 50.0 * cpu_dbl.options_per_j);

        // The paper's goal: more than 2000 options per second on the FPGA.
        assert!(fpga_b.options_per_s > 2000.0, "goal of Section I: {}", fpga_b.options_per_s);
    }

    #[test]
    fn streaming_column_beats_iva_on_energy() {
        let t = quick();
        let by = |label: &str| {
            t.iter().find(|c| c.label.contains(label)).unwrap_or_else(|| panic!("{label}"))
        };
        let fpga_c = by("IV.C / FPGA / double");
        let fpga_a = by("IV.A / FPGA");
        // The device-resident pipe pass must beat the host-driven
        // batch-per-level architecture on energy per option.
        assert!(
            fpga_c.options_per_j > fpga_a.options_per_j,
            "IV.C {} options/J vs IV.A {}",
            fpga_c.options_per_j,
            fpga_a.options_per_j
        );
        // Its single pipeline prices one option at a time, so raw
        // throughput sits between IV.A and the 1024-lane IV.B.
        assert!(fpga_c.options_per_s > fpga_a.options_per_s);
        // Exact same math as IV.B: the pow bug is visible here too.
        assert!(fpga_c.rmse > 1e-9, "device pow inaccuracy must show: {}", fpga_c.rmse);
    }

    #[test]
    fn magnitudes_within_factor_two_of_paper() {
        for c in quick() {
            let Some(paper_s) = c.paper_options_per_s else { continue };
            let ratio = c.options_per_s / paper_s;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: {} options/s vs paper {} (ratio {ratio:.2})",
                c.label,
                c.options_per_s,
                paper_s
            );
        }
    }

    #[test]
    fn rmse_column_shape() {
        let t = quick();
        let by = |label: &str| {
            t.iter().find(|c| c.label.contains(label)).unwrap_or_else(|| panic!("{label}"))
        };
        // FPGA IV.B: the pow bug is visible.
        assert!(by("IV.B / FPGA / double").rmse > 1e-9);
        // GPU runs exact math: essentially zero.
        assert!(by("IV.B / GPU / double").rmse < 1e-9);
        // Single precision shows visible noise wherever it is used.
        assert!(by("IV.B / GPU / single").rmse > 1e-6);
        assert!(by("Xeon X5450 / single").rmse > 1e-6);
        assert!(by("Xeon X5450 / double").rmse == 0.0);
    }

    #[test]
    fn literature_rows_present() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].options_per_s > rows[0].options_per_s);
    }
}
