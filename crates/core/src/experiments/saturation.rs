//! E7 — device saturation: throughput vs workload size.
//!
//! Section V.C: "All the presented results were sampled after device
//! saturation ... This saturation typically happens at 10^5 priced
//! options ... Only the kernel IV.B implemented on the GTX660 has a
//! saturation at a higher number of options (10^6 ...)". Cold-start
//! throughput approaches the asymptotic rate as the one-time session
//! setup (device programming / context + JIT) amortises; the FPGA —
//! with less setup but also less raw speed — saturates at roughly ten
//! times fewer options than the GPU, the relationship the paper reports.

use crate::accelerator::Accelerator;
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_cpu::Precision;
use std::sync::Arc;

/// One point of the saturation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationPoint {
    /// Batch size.
    pub n_options: usize,
    /// Cold-start throughput (includes session setup), options/s.
    pub throughput: f64,
    /// Fraction of the asymptotic (marginal) rate reached, 0..=1.
    pub of_asymptote: f64,
}

/// The sweep result for one device/kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationCurve {
    /// Label, e.g. "IV.B / FPGA".
    pub label: String,
    /// Asymptotic (post-saturation) throughput, options/s.
    pub asymptote: f64,
    /// Sweep points, ascending batch size.
    pub points: Vec<SaturationPoint>,
    /// Smallest swept batch size reaching 95% of the asymptote.
    pub saturation_at: Option<usize>,
}

/// Sweep batch sizes for one accelerator configuration.
///
/// # Errors
/// Propagates accelerator failures.
pub fn sweep(
    label: &str,
    device: Arc<dyn bop_ocl::Device>,
    arch: KernelArch,
    precision: Precision,
    n_steps: usize,
    batch_sizes: &[usize],
) -> Result<SaturationCurve, Error> {
    let acc =
        Accelerator::builder(device).arch(arch).precision(precision).n_steps(n_steps).build()?;
    // The marginal rate is batch-size independent; measure it once on a
    // mid-sized batch.
    let asymptote = acc.project(1000)?.options_per_s;
    let mut points = Vec::with_capacity(batch_sizes.len());
    for &n in batch_sizes {
        let p = acc.project(n)?;
        let throughput = p.throughput_with_setup();
        points.push(SaturationPoint {
            n_options: n,
            throughput,
            of_asymptote: throughput / asymptote,
        });
    }
    let saturation_at = points.iter().find(|p| p.of_asymptote >= 0.95).map(|p| p.n_options);
    Ok(SaturationCurve { label: label.to_owned(), asymptote, points, saturation_at })
}

/// The paper's comparison: kernel IV.B on FPGA vs GPU (double precision).
///
/// # Errors
/// Propagates accelerator failures.
pub fn fpga_vs_gpu(n_steps: usize) -> Result<(SaturationCurve, SaturationCurve), Error> {
    let sizes: Vec<usize> =
        [1, 10, 100, 1_000, 2_000, 10_000, 50_000, 100_000, 500_000, 1_000_000].to_vec();
    let fpga = sweep(
        "Kernel IV.B / FPGA / double",
        crate::devices::fpga(),
        KernelArch::Optimized,
        Precision::Double,
        n_steps,
        &sizes,
    )?;
    let gpu = sweep(
        "Kernel IV.B / GPU / double",
        crate::devices::gpu(),
        KernelArch::Optimized,
        Precision::Double,
        n_steps,
        &sizes,
    )?;
    Ok((fpga, gpu))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_monotonically_to_the_asymptote() {
        let (fpga, gpu) = fpga_vs_gpu(crate::experiments::table2::PAPER_STEPS).expect("sweeps");
        for curve in [&fpga, &gpu] {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].throughput >= w[0].throughput * 0.999,
                    "{}: throughput must rise with batch size",
                    curve.label
                );
            }
            let last = curve.points.last().expect("points");
            assert!(last.of_asymptote > 0.9, "{}: biggest batch nearly saturated", curve.label);
            assert!(last.of_asymptote < 1.05);
        }
    }

    #[test]
    fn gpu_needs_a_larger_workload_than_the_fpga() {
        // The paper: GPU saturation "at a higher number of options
        // (ten times as many)".
        let (fpga, gpu) = fpga_vs_gpu(crate::experiments::table2::PAPER_STEPS).expect("sweeps");
        let f = fpga.saturation_at.expect("fpga saturates in range");
        let g = gpu.saturation_at.expect("gpu saturates in range");
        assert!(g > f, "GPU saturates later: {g} vs {f}");
    }

    #[test]
    fn small_batches_are_far_from_saturation() {
        let (fpga, _) = fpga_vs_gpu(crate::experiments::table2::PAPER_STEPS).expect("sweeps");
        let single = fpga.points.first().expect("points");
        assert_eq!(single.n_options, 1);
        assert!(single.of_asymptote < 0.05, "one option cannot amortise setup");
    }
}
