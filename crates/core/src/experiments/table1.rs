//! E1 — Table I: resource usage of the two kernels on the EP4SGX530.

use crate::kernels::KernelArch;
use crate::Precision;
use bop_ocl::{BuildError, BuildOptions, Context, Program};

/// One row/column pair of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Entry {
    /// Which kernel.
    pub arch: KernelArch,
    /// Build options used.
    pub build: BuildOptions,
    /// Logic (ALUT) utilization, 0..=1.
    pub logic_util: f64,
    /// Registers used.
    pub registers: u64,
    /// Block-memory bits used.
    pub memory_bits: u64,
    /// M9K blocks used.
    pub m9k_blocks: u64,
    /// 18-bit DSP elements used.
    pub dsp18: u64,
    /// Kernel clock, Hz.
    pub clock_hz: f64,
    /// Estimated power, watts.
    pub power_watts: f64,
}

/// The paper's published Table I values, for side-by-side reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Paper {
    /// Logic utilization.
    pub logic_util: f64,
    /// Registers.
    pub registers: u64,
    /// Memory bits.
    pub memory_bits: u64,
    /// M9K blocks.
    pub m9k_blocks: u64,
    /// DSP elements.
    pub dsp18: u64,
    /// Clock, Hz.
    pub clock_hz: f64,
    /// Power, watts.
    pub power_watts: f64,
}

/// Paper values for kernel IV.A (vec x2, replication x3).
pub fn paper_straightforward() -> Table1Paper {
    Table1Paper {
        logic_util: 0.99,
        registers: 411 * 1024,
        memory_bits: 10_843 * 1024,
        m9k_blocks: 1250,
        dsp18: 586,
        clock_hz: 98.27e6,
        power_watts: 15.0,
    }
}

/// Paper values for kernel IV.B (unroll x2, vec x4).
pub fn paper_optimized() -> Table1Paper {
    Table1Paper {
        logic_util: 0.66,
        registers: 245 * 1024,
        memory_bits: 7_990 * 1024,
        m9k_blocks: 1118,
        dsp18: 760,
        clock_hz: 162.62e6,
        power_watts: 17.0,
    }
}

/// Compile `arch` with its paper build options on the DE4 and report the
/// fitter results.
///
/// # Errors
/// Returns [`BuildError`] if the kernel fails to compile or fit.
pub fn fit_kernel(arch: KernelArch) -> Result<Table1Entry, BuildError> {
    fit_kernel_with(arch, arch.paper_build_options())
}

/// Compile `arch` with explicit build options.
///
/// # Errors
/// Returns [`BuildError`] if the kernel fails to compile or fit.
pub fn fit_kernel_with(arch: KernelArch, build: BuildOptions) -> Result<Table1Entry, BuildError> {
    let ctx = Context::new(crate::devices::fpga());
    let program = Program::from_source(&ctx, "kernel.cl", &arch.source(Precision::Double), &build)?;
    let report = program.report();
    let res = report.resources.ok_or_else(|| BuildError::new("FPGA build has no resources"))?;
    Ok(Table1Entry {
        arch,
        build,
        logic_util: report.logic_utilization.unwrap_or(0.0),
        registers: res.registers,
        memory_bits: res.memory_bits,
        m9k_blocks: res.m9k_blocks,
        dsp18: res.dsp18,
        clock_hz: report.clock_hz,
        power_watts: report.power_watts,
    })
}

/// The complete experiment: both kernels, measured vs paper.
///
/// # Errors
/// Returns [`BuildError`] if either kernel fails to build.
pub fn run() -> Result<Vec<(Table1Entry, Table1Paper)>, BuildError> {
    Ok(vec![
        (fit_kernel(KernelArch::Straightforward)?, paper_straightforward()),
        (fit_kernel(KernelArch::Optimized)?, paper_optimized()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(measured: f64, paper: f64, rel: f64) -> bool {
        (measured - paper).abs() <= rel * paper.abs()
    }

    #[test]
    fn both_kernels_fit_the_part() {
        let rows = run().expect("both kernels fit");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn straightforward_uses_more_logic_than_optimized() {
        // The paper's central Table I contrast: 99% vs 66%.
        let a = fit_kernel(KernelArch::Straightforward).expect("fits");
        let b = fit_kernel(KernelArch::Optimized).expect("fits");
        assert!(
            a.logic_util > b.logic_util,
            "IV.A (x6 lanes, LSU-heavy) must use more logic: {} vs {}",
            a.logic_util,
            b.logic_util
        );
        assert!(a.clock_hz < b.clock_hz, "and therefore close at a lower clock");
    }

    #[test]
    fn optimized_uses_more_dsps() {
        // Table I: 586 vs 760 — the pow core dominates IV.B's DSPs.
        let a = fit_kernel(KernelArch::Straightforward).expect("fits");
        let b = fit_kernel(KernelArch::Optimized).expect("fits");
        assert!(b.dsp18 > a.dsp18, "IV.B carries pow: {} vs {}", b.dsp18, a.dsp18);
    }

    #[test]
    fn clocks_and_power_near_paper() {
        for (measured, paper) in run().expect("fits") {
            assert!(
                within(measured.clock_hz, paper.clock_hz, 0.30),
                "{}: clock {} vs paper {}",
                measured.arch,
                measured.clock_hz / 1e6,
                paper.clock_hz / 1e6
            );
            assert!(
                within(measured.power_watts, paper.power_watts, 0.30),
                "{}: power {} vs paper {}",
                measured.arch,
                measured.power_watts,
                paper.power_watts
            );
        }
    }
}
