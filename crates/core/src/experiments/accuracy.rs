//! E8 — accuracy: the `pow` operator story of Section V.C.
//!
//! "Unfortunately, this kernel does not reach the accuracy levels required
//! for this application, with a RMSE of 1e-3 ... The source of this
//! inaccuracy has been isolated and is due to the use of the Power
//! operator." This experiment measures (a) the raw `pow` operator RMSE
//! against libm on the kernel's actual argument distribution, and (b) the
//! end-to-end price RMSE versus the lattice size, for the 13.0 FPGA, the
//! anticipated 13.0 SP1 FPGA, the GPU, and the host-leaves fallback.

use crate::accelerator::Accelerator;
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_clir::mathlib::MathLib;
use bop_cpu::Precision;
use bop_finance::binomial::CrrParams;
use bop_finance::types::OptionParams;
use bop_finance::workload;
use std::sync::Arc;

/// RMSE of the device `pow` against libm over the kernel's leaf
/// initialisation arguments (`u^(2l - N)` for `l = 0..=N`).
pub fn pow_operator_rmse(math: &dyn MathLib, option: &OptionParams, n_steps: usize) -> f64 {
    let c = CrrParams::from_option(option, n_steps);
    let mut sum = 0.0;
    for l in 0..=n_steps {
        let y = 2.0 * l as f64 - n_steps as f64;
        let got = math.pow64(c.u, y);
        let want = c.u.powf(y);
        sum += (got - want) * (got - want);
    }
    (sum / (n_steps + 1) as f64).sqrt()
}

/// End-to-end price RMSE of one configuration at one lattice size.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Configuration label.
    pub label: String,
    /// Lattice steps.
    pub n_steps: usize,
    /// Price RMSE against the double-precision reference.
    pub rmse: f64,
    /// Maximum absolute price error.
    pub max_abs_error: f64,
}

/// Price a small batch functionally and report its accuracy.
///
/// # Errors
/// Propagates accelerator failures.
pub fn price_accuracy(
    label: &str,
    device: Arc<dyn bop_ocl::Device>,
    arch: KernelArch,
    n_steps: usize,
    n_options: usize,
) -> Result<AccuracyPoint, Error> {
    let acc = Accelerator::builder(device)
        .arch(arch)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .build()?;
    let options =
        workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, n_options, 7);
    let run = acc.price(&options)?;
    Ok(AccuracyPoint {
        label: label.to_owned(),
        n_steps,
        rmse: run.rmse,
        max_abs_error: run.max_abs_error,
    })
}

/// The full experiment at one lattice size: all four configurations.
///
/// # Errors
/// Propagates accelerator failures.
pub fn run(n_steps: usize, n_options: usize) -> Result<Vec<AccuracyPoint>, Error> {
    Ok(vec![
        price_accuracy(
            "IV.B / FPGA 13.0 (reduced pow)",
            crate::devices::fpga(),
            KernelArch::Optimized,
            n_steps,
            n_options,
        )?,
        price_accuracy(
            "IV.B / FPGA 13.0 SP1 (fixed pow)",
            crate::devices::fpga_sp1(),
            KernelArch::Optimized,
            n_steps,
            n_options,
        )?,
        price_accuracy(
            "IV.B host leaves / FPGA 13.0",
            crate::devices::fpga(),
            KernelArch::OptimizedHostLeaves,
            n_steps,
            n_options,
        )?,
        price_accuracy(
            "IV.B / GPU",
            crate::devices::gpu(),
            KernelArch::Optimized,
            n_steps,
            n_options,
        )?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_clir::mathlib::{DeviceMath, ExactMath};

    #[test]
    fn pow_operator_rmse_grows_with_lattice_size() {
        let math = DeviceMath::altera_13_0();
        let o = OptionParams::example();
        let small = pow_operator_rmse(&math, &o, 64);
        let large = pow_operator_rmse(&math, &o, 1024);
        assert!(large > small, "error grows with exponent range: {small} vs {large}");
        assert!(pow_operator_rmse(&ExactMath, &o, 1024) < 1e-12);
    }

    #[test]
    fn paper_scale_pow_rmse_is_about_1e_minus_3() {
        // Section V.C: "This operator shows an RMSE of 1e-3, compared with
        // a software reference" — on the leaf S values (S ~ 100 here).
        let math = DeviceMath::altera_13_0();
        let o = OptionParams::example();
        let rmse = pow_operator_rmse(&math, &o, 1024);
        assert!(
            (3e-4..3e-2).contains(&rmse),
            "pow RMSE should be ~1e-3 at paper scale: {rmse:.2e}"
        );
    }

    #[test]
    fn only_the_buggy_pow_configuration_is_inaccurate() {
        let points = run(96, 8).expect("runs");
        let by = |label: &str| {
            points.iter().find(|p| p.label.contains(label)).unwrap_or_else(|| panic!("{label}"))
        };
        let buggy = by("13.0 (reduced pow)");
        let sp1 = by("SP1");
        let host_leaves = by("host leaves");
        let gpu = by("GPU");
        assert!(buggy.rmse > 1e-7, "bug visible: {}", buggy.rmse);
        assert!(sp1.rmse < buggy.rmse / 100.0, "SP1 fixes it: {}", sp1.rmse);
        assert!(host_leaves.rmse < buggy.rmse / 100.0, "fallback avoids it");
        assert!(gpu.rmse < 1e-10, "GPU exact: {}", gpu.rmse);
    }
}
