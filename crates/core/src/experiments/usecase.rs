//! E9 — the paper's use case: one 2000-point volatility curve per second
//! within a trader-workstation power budget (Section I).
//!
//! "This work aims at providing an architecture that can price 2000
//! option values under a second while being powered by the user's
//! workstation [10 W]." The driver projects the batch time of the paper's
//! standard workload on kernel IV.B / FPGA, and demonstrates the
//! downstream computation the batch exists for: recovering the implied
//! volatility curve from the prices.

use crate::accelerator::Accelerator;
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_cpu::Precision;
use bop_finance::types::OptionParams;
use bop_finance::{implied_vol, workload};

/// The use-case verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct UseCaseResult {
    /// Options in the curve.
    pub n_options: usize,
    /// Projected batch time at paper scale, seconds.
    pub batch_time_s: f64,
    /// Whether the "under a second" requirement holds.
    pub under_one_second: bool,
    /// Device power, watts.
    pub power_watts: f64,
    /// Whether the 10 W budget holds (the paper: no, 17 W — "7 W more
    /// than available").
    pub within_power_budget: bool,
    /// Excess power over the budget, watts.
    pub power_excess_w: f64,
    /// Implied-vol recovery demonstration: worst absolute error across
    /// the verified subset.
    pub implied_vol_max_err: f64,
}

/// Run the use case: project the 2000-option batch on kernel IV.B / FPGA
/// at `n_steps`, and verify implied-vol recovery functionally on a subset
/// of `verify_options` options at a smaller lattice.
///
/// # Errors
/// Propagates accelerator failures.
pub fn run(
    n_steps: usize,
    verify_steps: usize,
    verify_options: usize,
) -> Result<UseCaseResult, Error> {
    let n_options = 2000;
    let acc = Accelerator::builder(crate::devices::fpga())
        .arch(KernelArch::Optimized)
        .precision(Precision::Double)
        .n_steps(n_steps)
        .build()?;
    let projection = acc.project(n_options)?;

    // Functional leg: price a subset, then invert the smile back out of
    // the prices — the trader's actual computation.
    let verify_acc = Accelerator::builder(crate::devices::fpga())
        .arch(KernelArch::Optimized)
        .precision(Precision::Double)
        .n_steps(verify_steps)
        .build()?;
    let config = workload::WorkloadConfig { jitter: 0.0, ..Default::default() };
    let options = workload::volatility_curve(&config, 1.0, verify_options, 99);
    let run = verify_acc.price(&options)?;
    let mut max_err = 0f64;
    for (option, price) in options.iter().zip(&run.prices) {
        let recovered = implied_vol::implied_volatility(option, *price, |o: &OptionParams| {
            bop_finance::binomial::price_american_f64(o, verify_steps)
        })
        .map_err(|e| Error::Invalid(format!("implied vol failed: {e}")))?;
        max_err = max_err.max((recovered - option.volatility).abs());
    }

    let batch_time_s = projection.elapsed_s;
    let power_watts = projection.watts;
    Ok(UseCaseResult {
        n_options,
        batch_time_s,
        under_one_second: batch_time_s < 1.0,
        power_watts,
        within_power_budget: power_watts <= 10.0,
        power_excess_w: (power_watts - 10.0).max(0.0),
        implied_vol_max_err: max_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table2::PAPER_STEPS;

    #[test]
    fn paper_verdict_reproduced() {
        let r = run(PAPER_STEPS, 96, 6).expect("runs");
        // Goal met: 2000 options under a second (paper: ~0.83 s at 2400/s).
        assert!(r.under_one_second, "batch takes {}s", r.batch_time_s);
        assert!(r.batch_time_s > 0.5, "but not trivially fast: {}s", r.batch_time_s);
        // Budget missed: ~17 W against 10 W — "7W more than available".
        assert!(!r.within_power_budget);
        assert!(
            (5.0..9.0).contains(&r.power_excess_w),
            "the paper's 7 W excess: {}",
            r.power_excess_w
        );
    }

    #[test]
    fn implied_volatility_recovers_the_smile() {
        let r = run(256, 96, 6).expect("runs");
        // Device `pow` inaccuracy perturbs prices, so the recovered vols
        // carry a small error — but the curve is clearly recovered.
        assert!(r.implied_vol_max_err < 5e-3, "smile recovery error: {}", r.implied_vol_max_err);
    }
}
