//! E3-E6 — Figures 1-4: structural reproductions.
//!
//! The paper's figures are diagrams, not data plots; these drivers emit
//! the same *information content* — the toy binomial tree of Figure 1, the
//! OpenCL platform hierarchy of Figure 2, the batch pipeline schedule of
//! Figure 3 and the barrier-phased work-group dataflow of Figure 4 — as
//! structured data (plus a text rendering in the `bop-bench` binaries).

use crate::error::Error;
use crate::hostprog::optimized::OptimizedHost;
use crate::hostprog::straightforward::StraightforwardHost;
use crate::kernels::KernelArch;
use crate::Precision;
use bop_finance::binomial::BinomialTree;
use bop_finance::types::OptionParams;
use bop_ocl::queue::TraceEntry;
use bop_ocl::{BuildOptions, CommandQueue, Context, Program};

/// Figure 1: the toy two-step tree of the paper, with S and V at every
/// node.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1 {
    /// The option being priced.
    pub option: OptionParams,
    /// Rows of `(t, j, S, V)`, leaves first (the backward-iteration
    /// order of the figure).
    pub nodes: Vec<(usize, usize, f64, f64)>,
    /// The root price `V(0,0)`.
    pub price: f64,
}

/// Build Figure 1's tree (2 steps, like the paper's illustration) for any
/// option.
pub fn figure1(option: &OptionParams, n_steps: usize) -> Figure1 {
    let tree = BinomialTree::build(option, n_steps);
    let mut nodes = Vec::new();
    for t in (0..=n_steps).rev() {
        for j in (0..=t).rev() {
            nodes.push((t, j, tree.asset(t, j), tree.value(t, j)));
        }
    }
    Figure1 { option: *option, nodes, price: tree.price() }
}

/// Figure 2: one line of the platform-hierarchy description.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Device {
    /// Device name.
    pub name: String,
    /// Kind.
    pub kind: bop_ocl::DeviceKind,
    /// Compute units.
    pub compute_units: u32,
    /// Global memory, bytes.
    pub global_mem_bytes: u64,
    /// Local memory per work-group, bytes.
    pub local_mem_bytes: u64,
    /// Maximum work-group size.
    pub max_work_group_size: usize,
    /// Host link peak bandwidth, bytes/s.
    pub link_peak: f64,
}

/// Describe the paper's platform (Figure 2's host/device/CU/memory
/// hierarchy, as data).
pub fn figure2() -> Vec<Figure2Device> {
    crate::paper_platform()
        .devices()
        .iter()
        .map(|d| {
            let i = d.info();
            Figure2Device {
                name: i.name.clone(),
                kind: i.kind,
                compute_units: i.compute_units,
                global_mem_bytes: i.global_mem_bytes,
                local_mem_bytes: i.local_mem_bytes,
                max_work_group_size: i.max_work_group_size,
                link_peak: i.link.peak_bytes_per_s,
            }
        })
        .collect()
}

/// Figure 3: the straightforward pipeline's batch schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3 {
    /// Lattice steps (the paper draws N = 2).
    pub n_steps: usize,
    /// Options priced.
    pub n_options: usize,
    /// For each batch: which option's row is computed at each level
    /// (`None` = pipeline bubble), levels 0..n_steps-1.
    pub schedule: Vec<Vec<Option<usize>>>,
    /// The simulated command trace (writes/launch/reads per batch, with
    /// ping-pong buffer switches implied between launches).
    pub trace: Vec<TraceEntry>,
}

/// Run the straightforward pipeline at figure scale and report its
/// schedule — options cascading down the flattened tree one level per
/// batch, exactly the paper's Figure 3.
///
/// # Errors
/// Propagates build/run failures.
pub fn figure3(n_steps: usize, n_options: usize) -> Result<Figure3, Error> {
    let ctx = Context::new(crate::devices::fpga());
    let queue = CommandQueue::new(&ctx);
    queue.enable_trace();
    let program = Program::from_source(
        &ctx,
        "straightforward.cl",
        &KernelArch::Straightforward.source(Precision::Double),
        &BuildOptions::paper_straightforward(),
    )?;
    let host = StraightforwardHost { n_steps, precision: Precision::Double, read_full: true };
    let options = vec![OptionParams::example(); n_options];
    host.run(&ctx, &queue, &program, &options)?;

    // Reconstruct the analytic schedule: at batch b, level t computes
    // option b + t - n + 1 (when in range).
    let batches = n_options + n_steps - 1;
    let schedule = (0..batches)
        .map(|b| {
            (0..n_steps)
                .map(|t| {
                    let e = b as i64 + t as i64 - n_steps as i64 + 1;
                    (0..n_options as i64).contains(&e).then_some(e as usize)
                })
                .collect()
        })
        .collect();
    Ok(Figure3 { n_steps, n_options, schedule, trace: queue.trace() })
}

/// Figure 4: the optimized kernel's work-group dataflow, quantified.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4 {
    /// Lattice steps.
    pub n_steps: usize,
    /// Work-items in the group (= rows = n_steps + 1).
    pub work_items: usize,
    /// Barrier releases during the option (2 per time step + 1 after the
    /// leaves).
    pub barriers: u64,
    /// Local-memory loads (the `V` row reads of the figure).
    pub local_loads: u64,
    /// Local-memory stores (the `V` row writes).
    pub local_stores: u64,
    /// Global-memory bytes touched (parameters in, one result out).
    pub global_bytes: u64,
    /// Private-memory accesses (S and the option parameters live in
    /// registers — the figure's "private memory" row; zero because the
    /// compiler keeps scalars out of the private arena entirely).
    pub private_accesses: u64,
    /// The option price computed by the group.
    pub price: f64,
}

/// Run one work-group of the optimized kernel and report the dataflow
/// quantities of Figure 4.
///
/// # Errors
/// Propagates build/run failures.
pub fn figure4(n_steps: usize) -> Result<Figure4, Error> {
    let ctx = Context::new(crate::devices::fpga());
    let queue = CommandQueue::new(&ctx);
    let program = Program::from_source(
        &ctx,
        "optimized.cl",
        &KernelArch::Optimized.source(Precision::Double),
        &BuildOptions::paper_optimized(),
    )?;
    let host = OptimizedHost {
        n_steps,
        precision: Precision::Double,
        host_leaves: false,
        kernel_name: "binomial_option",
    };
    let option = OptionParams::example();
    let prices = host.run(&ctx, &queue, &program, &[option])?;
    let stats = queue
        .kernel_stats(KernelArch::Optimized.kernel_name())
        .ok_or_else(|| Error::Invalid("no kernel statistics".into()))?;
    Ok(Figure4 {
        n_steps,
        work_items: n_steps + 1,
        barriers: stats.barriers,
        local_loads: stats.mem.local_loads,
        local_stores: stats.mem.local_stores,
        global_bytes: stats.mem.global_bytes(),
        private_accesses: stats.mem.private_accesses,
        price: prices[0],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_toy_tree_matches_paper_structure() {
        let fig = figure1(&OptionParams::example(), 2);
        // 6 nodes for a 2-step tree, leaves first.
        assert_eq!(fig.nodes.len(), 6);
        assert_eq!(fig.nodes[0].0, 2, "leaves come first (backward iteration)");
        assert_eq!(fig.nodes[5], (0, 0, fig.option.spot, fig.price));
        // The recombination of Figure 1: (2,1) has S = S0.
        let (_, _, s21, _) =
            fig.nodes.iter().copied().find(|&(t, j, _, _)| t == 2 && j == 1).expect("node");
        assert!((s21 - fig.option.spot).abs() < 1e-12);
    }

    #[test]
    fn figure2_lists_the_three_devices() {
        let devs = figure2();
        assert_eq!(devs.len(), 3);
        assert!(devs.iter().any(|d| d.kind == bop_ocl::DeviceKind::Fpga));
        assert!(devs.iter().any(|d| d.kind == bop_ocl::DeviceKind::Gpu && d.compute_units == 5));
    }

    #[test]
    fn figure3_schedule_has_n_plus_one_options_in_flight() {
        let fig = figure3(2, 4).expect("runs");
        // Paper's exact scenario: N = 2, options 0..3.
        assert_eq!(fig.schedule.len(), 5); // 4 + 2 - 1 batches
        assert_eq!(fig.schedule[1], vec![Some(0), Some(1)]);
        // Fill: first batch has only the newest option in the tree.
        assert_eq!(fig.schedule[0], vec![None, Some(0)]);
        // Drain: last batch has only the oldest remaining option.
        assert_eq!(fig.schedule[4], vec![Some(3), None]);
        assert!(!fig.trace.is_empty());
    }

    #[test]
    fn figure4_dataflow_counts() {
        let n = 8;
        let fig = figure4(n).expect("runs");
        assert_eq!(fig.work_items, 9);
        // One barrier after the leaves + 2 per time step.
        assert_eq!(fig.barriers, 1 + 2 * n as u64);
        // Each live (t, l) iteration loads v[l] and v[l+1] and stores v[l];
        // plus one leaf store per item and one root read by item 0.
        let live: u64 = (1..=n as u64).sum(); // n(n+1)/2
        assert_eq!(fig.local_stores, live + (n as u64 + 1));
        assert_eq!(fig.local_loads, 2 * live + 1);
        // Global traffic is tiny: the paper's point about kernel IV.B.
        assert!(fig.global_bytes < 1024);
        let reference = bop_finance::binomial::price_american_f64(&OptionParams::example(), n);
        // Coarse lattices magnify the pow-model error (large u); stay loose.
        assert!((fig.price - reference).abs() < 5e-3);
    }
}
