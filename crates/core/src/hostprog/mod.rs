//! Host programs driving the two kernel architectures.
//!
//! These are the OpenCL host-side control loops the paper describes: the
//! [`straightforward`] program re-enqueues a batch per time step and pumps
//! megabytes of ping-pong state across PCIe between batches (Figure 3);
//! the [`optimized`] program issues exactly three commands — write
//! parameters, one NDRange, read results (Figure 4); the [`streaming`]
//! program launches the IV.C producer/consumer pair as one graph, with
//! leaf values streaming through an on-chip pipe.

pub mod optimized;
pub mod payoff;
pub mod straightforward;
pub mod streaming;

use bop_cpu::Precision;
use bop_finance::binomial::CrrParams;
use bop_finance::types::OptionParams;
use bop_ocl::queue::RuntimeError;
use bop_ocl::{Buffer, CommandQueue};

/// Byte width of the kernel's `REAL` type.
pub(crate) fn real_width(precision: Precision) -> usize {
    match precision {
        Precision::Double => 8,
        Precision::Single => 4,
    }
}

/// Write an `f64` slice into a `REAL` buffer at element `offset`,
/// narrowing for single precision.
pub(crate) fn write_reals(
    queue: &CommandQueue,
    buf: &Buffer,
    offset: usize,
    data: &[f64],
    precision: Precision,
) -> Result<(), RuntimeError> {
    match precision {
        Precision::Double => {
            queue.enqueue_write_f64_at(buf, offset, data)?;
        }
        Precision::Single => {
            let narrow: Vec<f32> = data.iter().map(|&v| v as f32).collect();
            queue.enqueue_write_f32_at(buf, offset, &narrow)?;
        }
    }
    Ok(())
}

/// Read a `REAL` buffer into an `f64` slice at element `offset`, widening
/// for single precision.
pub(crate) fn read_reals(
    queue: &CommandQueue,
    buf: &Buffer,
    offset: usize,
    out: &mut [f64],
    precision: Precision,
) -> Result<(), RuntimeError> {
    match precision {
        Precision::Double => {
            queue.enqueue_read_f64_at(buf, offset, out)?;
        }
        Precision::Single => {
            let mut narrow = vec![0f32; out.len()];
            queue.enqueue_read_f32_at(buf, offset, &mut narrow)?;
            for (o, v) in out.iter_mut().zip(&narrow) {
                *o = *v as f64;
            }
        }
    }
    Ok(())
}

/// The per-option coefficient block shared by both kernels:
/// `[S0, K, u, pd, qd, phi]`.
pub(crate) fn option_coefficients(option: &OptionParams, n_steps: usize) -> [f64; 6] {
    let c = CrrParams::from_option(option, n_steps);
    [option.spot, option.strike, c.u, c.pd, c.qd, option.kind.phi()]
}

/// Host-side leaf asset prices `S(N, j) = S0 u^(2j - N)` for one option.
pub(crate) fn leaf_assets(option: &OptionParams, n_steps: usize) -> Vec<f64> {
    let c = CrrParams::from_option(option, n_steps);
    (0..=n_steps).map(|j| option.spot * c.u.powi(2 * j as i32 - n_steps as i32)).collect()
}

/// Leaf option values from leaf asset prices.
pub(crate) fn leaf_values(option: &OptionParams, leaf_s: &[f64]) -> Vec<f64> {
    let phi = option.kind.phi();
    leaf_s.iter().map(|&s| (phi * (s - option.strike)).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_match_crr() {
        let o = OptionParams::example();
        let c = CrrParams::from_option(&o, 128);
        let k = option_coefficients(&o, 128);
        assert_eq!(k[0], o.spot);
        assert_eq!(k[1], o.strike);
        assert_eq!(k[2], c.u);
        assert_eq!(k[3], c.pd);
        assert_eq!(k[4], c.qd);
        assert_eq!(k[5], 1.0);
    }

    #[test]
    fn leaves_are_monotone_and_payoff_clamped() {
        let o = OptionParams::example();
        let s = leaf_assets(&o, 64);
        assert_eq!(s.len(), 65);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
        let v = leaf_values(&o, &s);
        assert!(v.iter().all(|&x| x >= 0.0));
        assert_eq!(v[0], 0.0, "deep OTM call leaf is worthless");
        assert!(v[64] > 0.0, "deep ITM call leaf has value");
    }
}
