//! Host program for kernel IV.C (the streaming pipe pair).
//!
//! The whole batch is four commands: one parameter write, ONE launch
//! graph scheduling the producer and consumer tasks concurrently on the
//! device (the pipe connects them on-chip), and one result read — plus
//! nothing in between. There is no leaves buffer and no per-level
//! command: every tree level lives and dies device-resident.

use super::{option_coefficients, read_reals, real_width, write_reals};
use crate::kernels::KernelArch;
use bop_clir::types::ScalarType;
use bop_cpu::Precision;
use bop_finance::types::OptionParams;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::RuntimeError;
use bop_ocl::{CommandQueue, Context, Program};
use std::sync::Arc;

/// Functional depth of the modeled on-chip FIFO, elements. Matches the
/// depth the FPGA fabric model provisions
/// ([`bop_fpga::schedule::PIPE_MODEL_DEPTH`]); the producer runs at most
/// this far ahead of the consumer before it stalls.
pub const PIPE_DEPTH: usize = 64;

/// The streaming host program.
#[derive(Debug, Clone, Copy)]
pub struct StreamingHost {
    /// Lattice steps (the kernels' private rows hold `n_steps + 1`).
    pub n_steps: usize,
    /// Kernel precision.
    pub precision: Precision,
}

impl StreamingHost {
    /// Price `options`, returning prices in input order.
    ///
    /// # Errors
    /// Propagates runtime errors from the queue (capacity, execution,
    /// pipe deadlock).
    ///
    /// # Panics
    /// Panics if `options` is empty or any option is invalid.
    pub fn run(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        assert!(!options.is_empty(), "empty batch");
        let span = queue.begin_span(&format!("IV.C streaming ({} options)", options.len()));
        let result = self.run_inner(ctx, queue, program, options);
        queue.end_span(span);
        result
    }

    fn run_inner(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        let n = self.n_steps;
        let w = real_width(self.precision);

        let params_buf = ctx.create_buffer(options.len() * 6 * w);
        let results_buf = ctx.create_buffer(options.len() * w);

        // (1) all option parameters, one write.
        let mut params = Vec::with_capacity(options.len() * 6);
        for o in options {
            params.extend_from_slice(&option_coefficients(o, n));
        }
        write_reals(queue, &params_buf, 0, &params, self.precision)?;

        let elem = match self.precision {
            Precision::Double => ScalarType::F64,
            Precision::Single => ScalarType::F32,
        };
        let leaves = ctx.create_pipe(elem, PIPE_DEPTH);

        let producer = program
            .kernel(KernelArch::STREAMING_PRODUCER)
            .map_err(|e| RuntimeError::Invalid(e.message))?;
        producer.set_arg_buffer(0, &params_buf);
        producer.set_arg_pipe(1, &leaves);
        producer.set_arg_i32(2, n as i32);
        producer.set_arg_i32(3, options.len() as i32);

        let consumer = program
            .kernel(KernelArch::Streaming.kernel_name())
            .map_err(|e| RuntimeError::Invalid(e.message))?;
        consumer.set_arg_buffer(0, &params_buf);
        consumer.set_arg_pipe(1, &leaves);
        consumer.set_arg_buffer(2, &results_buf);
        consumer.set_arg_i32(3, n as i32);
        consumer.set_arg_i32(4, options.len() as i32);

        // (2) ONE launch graph: both tasks scheduled together, connected
        // by the on-chip pipe. Single-work-item dispatches — the task
        // shape pipe kernels require.
        queue.enqueue_launch_graph(&[
            (&producer, Dispatch::new(1, 1)),
            (&consumer, Dispatch::new(1, 1)),
        ])?;

        // (3) one result read.
        let mut prices = vec![0.0; options.len()];
        read_reals(queue, &results_buf, 0, &mut prices, self.precision)?;
        Ok(prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::binomial::price_american_f64;
    use bop_finance::workload;
    use bop_ocl::BuildOptions;

    fn session(
        device: Arc<dyn bop_ocl::Device>,
        n: usize,
    ) -> (Arc<Context>, CommandQueue, Program) {
        let ctx = Context::new(device);
        let queue = CommandQueue::new(&ctx);
        let program = Program::from_source(
            &ctx,
            "streaming.cl",
            &KernelArch::Streaming.source_sized(Precision::Double, n),
            &BuildOptions::default(),
        )
        .expect("builds");
        (ctx, queue, program)
    }

    #[test]
    fn streaming_prices_match_the_reference_on_exact_math() {
        let n = 48;
        let (ctx, queue, program) = session(crate::devices::gpu(), n);
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 11);
        let host = StreamingHost { n_steps: n, precision: Precision::Double };
        let prices = host.run(&ctx, &queue, &program, &options).expect("runs");
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, n);
            assert!((p - reference).abs() < 1e-9, "{p} vs {reference}");
        }
    }

    #[test]
    fn streaming_is_bit_identical_to_optimized_on_the_fpga_math() {
        // Both kernels initialise leaves with the same device pow, so the
        // Altera 13.0 inaccuracy must reproduce bit for bit.
        let n = 48;
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 6, 3);
        let (ctx, queue, program) = session(crate::devices::fpga(), n);
        let streaming = StreamingHost { n_steps: n, precision: Precision::Double }
            .run(&ctx, &queue, &program, &options)
            .expect("runs");

        let arch = crate::KernelArch::Optimized;
        let ctx = Context::new(crate::devices::fpga());
        let queue = CommandQueue::new(&ctx);
        let program = Program::from_source(
            &ctx,
            "optimized.cl",
            &arch.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        let optimized = crate::hostprog::optimized::OptimizedHost {
            n_steps: n,
            precision: Precision::Double,
            host_leaves: false,
            kernel_name: arch.kernel_name(),
        }
        .run(&ctx, &queue, &program, &options)
        .expect("runs");
        assert_eq!(streaming, optimized, "IV.C must reproduce IV.B bit for bit");
    }

    #[test]
    fn command_stream_is_four_commands_with_no_per_level_traffic() {
        let n = 32;
        let (ctx, queue, program) = session(crate::devices::gpu(), n);
        queue.enable_trace();
        let options = vec![OptionParams::example(); 3];
        let host = StreamingHost { n_steps: n, precision: Precision::Double };
        host.run(&ctx, &queue, &program, &options).expect("runs");
        let trace = queue.trace();
        // Write, producer kernel, consumer kernel, read — the two kernel
        // entries share one launch-graph command; nothing per level.
        assert_eq!(trace.len(), 4, "got: {trace:?}");
        let counters = queue.counters();
        assert!(counters.pipe_reads > 0 && counters.pipe_writes > 0, "leaves went by pipe");
        assert_eq!(
            counters.pipe_reads,
            (options.len() * (n + 1)) as u64,
            "exactly one read per leaf"
        );
    }
}
