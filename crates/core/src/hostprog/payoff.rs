//! Host program for the payoff-aware IV.B kernel variants (barrier,
//! Bermudan).
//!
//! Identical protocol to the optimized host — one parameter write, one
//! NDRange, one result read — with the per-option parameter block widened
//! from 6 to 8 values so the payoff-specific inputs (barrier level and
//! knock direction, or the Bermudan exercise spacing) ride along in the
//! same transfer.

use super::{option_coefficients, read_reals, real_width, write_reals};
use bop_cpu::Precision;
use bop_finance::payoff::Payoff;
use bop_finance::types::OptionParams;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::RuntimeError;
use bop_ocl::{CommandQueue, Context, Program};
use std::sync::Arc;

/// The two payoff-specific parameter-block slots (`[o*8+6]`, `[o*8+7]`):
/// barrier level + knock direction, or exercise spacing + unused.
pub(crate) fn payoff_extras(payoff: Payoff) -> [f64; 2] {
    match payoff {
        Payoff::Barrier { kind, level } => [level, kind.direction()],
        Payoff::Bermudan { exercise_every } => [exercise_every as f64, 0.0],
        // The vanilla kernels read 6-wide blocks and never see these.
        Payoff::European | Payoff::American => [0.0, 0.0],
    }
}

/// The payoff-aware host program.
#[derive(Debug, Clone, Copy)]
pub struct PayoffHost {
    /// Lattice steps (work-group size is `n_steps + 1`).
    pub n_steps: usize,
    /// Kernel precision.
    pub precision: Precision,
    /// Kernel entry point (`binomial_barrier` or `binomial_bermudan`).
    pub kernel_name: &'static str,
}

impl PayoffHost {
    /// Price `options` under their per-option `payoffs`, returning
    /// prices in input order.
    ///
    /// # Errors
    /// Propagates runtime errors from the queue (capacity, execution).
    ///
    /// # Panics
    /// Panics if the batch is empty, the lengths differ, or any option
    /// is invalid.
    pub fn run(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
        payoffs: &[Payoff],
    ) -> Result<Vec<f64>, RuntimeError> {
        assert!(!options.is_empty(), "empty batch");
        assert_eq!(options.len(), payoffs.len(), "one payoff per option");
        let span =
            queue.begin_span(&format!("IV.B {} ({} options)", self.kernel_name, options.len()));
        let result = self.run_inner(ctx, queue, program, options, payoffs);
        queue.end_span(span);
        result
    }

    fn run_inner(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
        payoffs: &[Payoff],
    ) -> Result<Vec<f64>, RuntimeError> {
        let n = self.n_steps;
        let w = real_width(self.precision);
        let wg = n + 1;

        let params_buf = ctx.create_buffer(options.len() * 8 * w);
        let results_buf = ctx.create_buffer(options.len() * w);

        // (1) all option parameters, one write: the vanilla 6-value
        // coefficient block plus the two payoff-specific slots.
        let mut params = Vec::with_capacity(options.len() * 8);
        for (o, payoff) in options.iter().zip(payoffs) {
            params.extend_from_slice(&option_coefficients(o, n));
            params.extend_from_slice(&payoff_extras(*payoff));
        }
        write_reals(queue, &params_buf, 0, &params, self.precision)?;

        let kernel =
            program.kernel(self.kernel_name).map_err(|e| RuntimeError::Invalid(e.message))?;
        kernel.set_arg_buffer(0, &params_buf);
        kernel.set_arg_buffer(1, &results_buf);
        kernel.set_arg_local(2, wg * w);
        kernel.set_arg_i32(3, n as i32);

        // (2) one NDRange: one work-group per option.
        queue.enqueue_nd_range(&kernel, Dispatch::new(options.len() * wg, wg))?;

        // (3) one result read.
        let mut prices = vec![0.0; options.len()];
        read_reals(queue, &results_buf, 0, &mut prices, self.precision)?;
        Ok(prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::payoff::{price_payoff_f64, BarrierKind};
    use bop_ocl::BuildOptions;

    fn run_payoff(payoff: Payoff, arch: crate::KernelArch, n: usize) -> (Vec<f64>, Vec<f64>) {
        let ctx = Context::new(crate::devices::gpu());
        let queue = CommandQueue::new(&ctx);
        let program = Program::from_source(
            &ctx,
            "payoff.cl",
            &arch.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        let options = bop_finance::workload::volatility_curve(
            &bop_finance::workload::WorkloadConfig::default(),
            1.0,
            4,
            21,
        );
        let payoffs = vec![payoff; options.len()];
        let host = PayoffHost {
            n_steps: n,
            precision: Precision::Double,
            kernel_name: arch.kernel_name(),
        };
        let prices = host.run(&ctx, &queue, &program, &options, &payoffs).expect("runs");
        let reference: Vec<f64> = options.iter().map(|o| price_payoff_f64(o, payoff, n)).collect();
        (prices, reference)
    }

    #[test]
    fn barrier_kernel_matches_the_reference_pricer() {
        let payoff = Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 123.0 };
        let (prices, reference) = run_payoff(payoff, crate::KernelArch::Barrier, 48);
        for (p, r) in prices.iter().zip(&reference) {
            assert!((p - r).abs() < 1e-9, "GPU (exact math) vs reference: {p} vs {r}");
        }
    }

    #[test]
    fn bermudan_kernel_matches_the_reference_pricer() {
        let payoff = Payoff::Bermudan { exercise_every: 6 };
        let (prices, reference) = run_payoff(payoff, crate::KernelArch::Bermudan, 48);
        for (p, r) in prices.iter().zip(&reference) {
            assert!((p - r).abs() < 1e-9, "GPU (exact math) vs reference: {p} vs {r}");
        }
    }

    #[test]
    fn command_stream_is_three_commands() {
        let ctx = Context::new(crate::devices::gpu());
        let queue = CommandQueue::new(&ctx);
        queue.enable_trace();
        let program = Program::from_source(
            &ctx,
            "barrier.cl",
            &crate::KernelArch::Barrier.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        let options = vec![OptionParams::example(); 3];
        let payoffs = vec![Payoff::Barrier { kind: BarrierKind::DownAndOut, level: 80.0 }; 3];
        let host = PayoffHost {
            n_steps: 32,
            precision: Precision::Double,
            kernel_name: "binomial_barrier",
        };
        host.run(&ctx, &queue, &program, &options, &payoffs).expect("runs");
        assert_eq!(queue.trace().len(), 3, "write, NDRange, read — same protocol as IV.B");
    }
}
