//! Host program for kernel IV.A — the batch-per-time-step pipeline.
//!
//! This reproduces the paper's Section IV.A control loop (Figure 3): per
//! batch the host (1) writes the incoming option's leaves into the input
//! ping-pong buffer, (2) refreshes the per-level parameter ladder,
//! (3) enqueues N(N+1)/2 work-items, and (4) reads results back — in the
//! paper's naive version, *a full ping-pong buffer* ("one of the two ping
//! pong buffers is fully read between each batch (approximately 19 MB for
//! N = 1024), effectively stalling the kernel"). `read_full = false`
//! selects the "modified version ... with a reduced number of read
//! operations" that the paper reports to be 14x faster on the GPU.
//!
//! N+1 options are in flight: the option entering at batch `b` has its
//! level-`t` row computed at batch `b + N - 1 - t`, and its root exits at
//! batch `b + N - 1`.

use super::{leaf_assets, leaf_values, option_coefficients, read_reals, real_width, write_reals};
use bop_cpu::Precision;
use bop_finance::types::OptionParams;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::RuntimeError;
use bop_ocl::{CommandQueue, Context, Program};
use std::sync::Arc;

/// Work-group size used for the node kernel (the paper notes work-groups
/// do not align with tree levels; any divisor works).
const LOCAL_SIZE: usize = 64;

/// The straightforward host program.
#[derive(Debug, Clone, Copy)]
pub struct StraightforwardHost {
    /// Lattice steps.
    pub n_steps: usize,
    /// Kernel precision.
    pub precision: Precision,
    /// Read the full ping-pong buffers between batches (the paper's naive
    /// behaviour); `false` reads only the finished root (the "modified
    /// version").
    pub read_full: bool,
}

impl StraightforwardHost {
    /// Price `options`, returning prices in input order.
    ///
    /// # Errors
    /// Propagates runtime errors from the queue.
    ///
    /// # Panics
    /// Panics if `options` is empty or any option is invalid.
    pub fn run(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        assert!(!options.is_empty(), "empty batch");
        let span = queue.begin_span(&format!("IV.A pipeline ({} options)", options.len()));
        let result = self.run_inner(ctx, queue, program, options);
        queue.end_span(span);
        result
    }

    fn run_inner(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        let n = self.n_steps;
        let w = real_width(self.precision);
        let m_nonleaf = n * (n + 1) / 2;
        let m_total = (n + 1) * (n + 2) / 2;
        let global = m_nonleaf.div_ceil(LOCAL_SIZE) * LOCAL_SIZE;

        // Ping-pong S and V buffers (the paper's two switched buffers).
        let s_buf = [ctx.create_buffer(m_total * w), ctx.create_buffer(m_total * w)];
        let v_buf = [ctx.create_buffer(m_total * w), ctx.create_buffer(m_total * w)];
        let params_buf = ctx.create_buffer((n + 1) * 5 * w);
        let level_buf = ctx.create_buffer(global * 4);

        // Constant level map: flat id -> tree level (the paper's constant
        // buffer that lets work-items derive their read addresses).
        let mut level_of = vec![n as i32; global];
        for t in 0..n {
            for j in 0..=t {
                level_of[t * (t + 1) / 2 + j] = t as i32;
            }
        }
        queue.enqueue_write_i32(&level_buf, &level_of)?;

        let kernel =
            program.kernel("binomial_node").map_err(|e| RuntimeError::Invalid(e.message))?;
        kernel.set_arg_buffer(4, &params_buf);
        kernel.set_arg_buffer(5, &level_buf);
        kernel.set_arg_i32(6, n as i32);

        // Precompute per-option coefficient blocks once.
        let coeffs: Vec<[f64; 6]> = options.iter().map(|o| option_coefficients(o, n)).collect();

        let mut prices = vec![0.0; options.len()];
        let mut scratch_v = vec![0.0; if self.read_full { m_total } else { 1 }];
        let mut scratch_s = vec![0.0; if self.read_full { m_total } else { 0 }];
        let mut in_idx = 0;
        let batches = options.len() + n - 1;
        for b in 0..batches {
            let batch_span = queue.begin_span(&format!("batch {b}"));
            let out_idx = 1 - in_idx;
            // (1) incoming option's leaves into the *input* buffer.
            if b < options.len() {
                let o = &options[b];
                let s_leaf = leaf_assets(o, n);
                let v_leaf = leaf_values(o, &s_leaf);
                write_reals(queue, &s_buf[in_idx], m_nonleaf, &s_leaf, self.precision)?;
                write_reals(queue, &v_buf[in_idx], m_nonleaf, &v_leaf, self.precision)?;
            }
            // (2) parameter ladder: level t carries the option whose level-t
            // row is computed this batch.
            let mut ladder = vec![0.0; (n + 1) * 5];
            for t in 0..n {
                let e = b as i64 + t as i64 - n as i64 + 1;
                if (0..options.len() as i64).contains(&e) {
                    let c = &coeffs[e as usize];
                    // [K, pd, qd, u, phi]
                    ladder[t * 5..t * 5 + 5].copy_from_slice(&[c[1], c[3], c[4], c[2], c[5]]);
                }
            }
            write_reals(queue, &params_buf, 0, &ladder, self.precision)?;

            // (3) one batch of node updates.
            kernel.set_arg_buffer(0, &s_buf[in_idx]);
            kernel.set_arg_buffer(1, &v_buf[in_idx]);
            kernel.set_arg_buffer(2, &s_buf[out_idx]);
            kernel.set_arg_buffer(3, &v_buf[out_idx]);
            queue.enqueue_nd_range(&kernel, Dispatch::new(global, LOCAL_SIZE))?;

            // (4) read back: the naive version drains the full ping-pong
            // buffers; the modified version reads only a finished root.
            let finished = b as i64 - n as i64 + 1;
            if self.read_full {
                read_reals(queue, &v_buf[out_idx], 0, &mut scratch_v, self.precision)?;
                read_reals(queue, &s_buf[out_idx], 0, &mut scratch_s, self.precision)?;
                if (0..options.len() as i64).contains(&finished) {
                    prices[finished as usize] = scratch_v[0];
                }
            } else if (0..options.len() as i64).contains(&finished) {
                read_reals(queue, &v_buf[out_idx], 0, &mut scratch_v[..1], self.precision)?;
                prices[finished as usize] = scratch_v[0];
            }

            // Buffer switch between batches (paper Figure 3).
            in_idx = out_idx;
            queue.end_span(batch_span);

            // The freshly computed levels 0..n-1 sit in what is now the
            // input buffer; its leaf region will be overwritten by the
            // next incoming option, which is exactly the cascade the paper
            // describes.
        }
        Ok(prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::binomial::price_american_f64;
    use bop_finance::workload;
    use bop_ocl::queue::CommandKind;
    use bop_ocl::BuildOptions;

    fn setup(device: Arc<dyn bop_ocl::Device>) -> (Arc<Context>, CommandQueue, Program) {
        let ctx = Context::new(device);
        let queue = CommandQueue::new(&ctx);
        let program = Program::from_source(
            &ctx,
            "straightforward.cl",
            &crate::KernelArch::Straightforward.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        (ctx, queue, program)
    }

    #[test]
    fn pipeline_prices_match_reference() {
        let (ctx, queue, program) = setup(crate::devices::gpu());
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 5, 3);
        let host =
            StraightforwardHost { n_steps: 24, precision: Precision::Double, read_full: true };
        let prices = host.run(&ctx, &queue, &program, &options).expect("runs");
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, 24);
            assert!(
                (p - reference).abs() < 1e-9,
                "pipelined cascade must equal reference: {p} vs {reference}"
            );
        }
    }

    #[test]
    fn fpga_straightforward_is_immune_to_the_pow_bug() {
        // No pow in the kernel: leaves come from the host.
        let (ctx, queue, program) = setup(crate::devices::fpga());
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 3, 5);
        let host =
            StraightforwardHost { n_steps: 16, precision: Precision::Double, read_full: true };
        let prices = host.run(&ctx, &queue, &program, &options).expect("runs");
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, 16);
            assert!((p - reference).abs() < 1e-9, "{p} vs {reference}");
        }
    }

    #[test]
    fn full_reads_dominate_the_command_stream() {
        let (ctx, queue, program) = setup(crate::devices::gpu());
        queue.enable_trace();
        let options = vec![OptionParams::example(); 3];
        let host =
            StraightforwardHost { n_steps: 32, precision: Precision::Double, read_full: true };
        host.run(&ctx, &queue, &program, &options).expect("runs");
        let trace = queue.trace();
        let read_bytes: u64 =
            trace.iter().filter(|t| t.kind == CommandKind::Read).map(|t| t.bytes).sum();
        let write_bytes: u64 =
            trace.iter().filter(|t| t.kind == CommandKind::Write).map(|t| t.bytes).sum();
        assert!(
            read_bytes > 4 * write_bytes,
            "naive version is read-dominated: {read_bytes} vs {write_bytes}"
        );
        // batches = len + n - 1 = 34, each with one kernel launch.
        let launches = trace.iter().filter(|t| t.kind == CommandKind::Kernel).count();
        assert_eq!(launches, 34);
    }

    #[test]
    fn reduced_reads_are_much_cheaper() {
        let (ctx, queue, program) = setup(crate::devices::gpu());
        let options = vec![OptionParams::example(); 4];
        let naive =
            StraightforwardHost { n_steps: 32, precision: Precision::Double, read_full: true };
        naive.run(&ctx, &queue, &program, &options).expect("runs");
        let naive_time = queue.elapsed_s();

        let (ctx2, queue2, program2) = setup(crate::devices::gpu());
        let modified =
            StraightforwardHost { n_steps: 32, precision: Precision::Double, read_full: false };
        let prices = modified.run(&ctx2, &queue2, &program2, &options).expect("runs");
        let modified_time = queue2.elapsed_s();
        assert!(
            naive_time > modified_time * 1.5,
            "reduced reads must be visibly faster: {naive_time} vs {modified_time}"
        );
        // And still correct.
        let reference = price_american_f64(&options[0], 32);
        assert!((prices[0] - reference).abs() < 1e-9);
    }

    #[test]
    fn single_precision_pipeline_works() {
        let (ctx, queue, program) = {
            let ctx = Context::new(crate::devices::gpu());
            let queue = CommandQueue::new(&ctx);
            let program = Program::from_source(
                &ctx,
                "straightforward.cl",
                &crate::KernelArch::Straightforward.source(Precision::Single),
                &BuildOptions::default(),
            )
            .expect("builds");
            (ctx, queue, program)
        };
        let options = vec![OptionParams::example(); 2];
        let host =
            StraightforwardHost { n_steps: 16, precision: Precision::Single, read_full: true };
        let prices = host.run(&ctx, &queue, &program, &options).expect("runs");
        let reference = price_american_f64(&options[0], 16);
        assert!((prices[0] - reference).abs() < 1e-3, "{} vs {reference}", prices[0]);
    }
}
