//! Host program for kernel IV.B (and its host-leaves variant).
//!
//! The paper's Section IV.B host protocol, verbatim: "(1) copying all
//! option parameters in global memory, (2) enqueueing enough kernels to
//! process all the data, (3) and read back the final results from global
//! memory."

use super::{leaf_assets, option_coefficients, read_reals, real_width, write_reals};
use bop_cpu::Precision;
use bop_finance::types::OptionParams;
use bop_ocl::device::Dispatch;
use bop_ocl::queue::RuntimeError;
use bop_ocl::{CommandQueue, Context, Program};
use std::sync::Arc;

/// The optimized host program.
#[derive(Debug, Clone, Copy)]
pub struct OptimizedHost {
    /// Lattice steps (work-group size is `n_steps + 1`).
    pub n_steps: usize,
    /// Kernel precision.
    pub precision: Precision,
    /// Use the host-leaves kernel variant (Section V.C fallback).
    pub host_leaves: bool,
    /// Kernel entry point (`binomial_option`, `binomial_option_hostleaves`
    /// or the European extension `binomial_european`).
    pub kernel_name: &'static str,
}

impl OptimizedHost {
    /// Price `options`, returning prices in input order.
    ///
    /// # Errors
    /// Propagates runtime errors from the queue (capacity, execution).
    ///
    /// # Panics
    /// Panics if `options` is empty or any option is invalid.
    pub fn run(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        assert!(!options.is_empty(), "empty batch");
        let span =
            queue.begin_span(&format!("IV.B {} ({} options)", self.kernel_name, options.len()));
        let result = self.run_inner(ctx, queue, program, options);
        queue.end_span(span);
        result
    }

    fn run_inner(
        &self,
        ctx: &Arc<Context>,
        queue: &CommandQueue,
        program: &Program,
        options: &[OptionParams],
    ) -> Result<Vec<f64>, RuntimeError> {
        let n = self.n_steps;
        let w = real_width(self.precision);
        let wg = n + 1;

        let params_buf = ctx.create_buffer(options.len() * 6 * w);
        let results_buf = ctx.create_buffer(options.len() * w);

        // (1) all option parameters, one write.
        let mut params = Vec::with_capacity(options.len() * 6);
        for o in options {
            params.extend_from_slice(&option_coefficients(o, n));
        }
        write_reals(queue, &params_buf, 0, &params, self.precision)?;

        let kernel =
            program.kernel(self.kernel_name).map_err(|e| RuntimeError::Invalid(e.message))?;

        if self.host_leaves {
            // Fallback path: leaves computed on the host and shipped over
            // PCIe — "to the detriment of speed".
            let leaves_buf = ctx.create_buffer(options.len() * wg * w);
            let mut leaves = Vec::with_capacity(options.len() * wg);
            for o in options {
                leaves.extend_from_slice(&leaf_assets(o, n));
            }
            write_reals(queue, &leaves_buf, 0, &leaves, self.precision)?;
            kernel.set_arg_buffer(0, &params_buf);
            kernel.set_arg_buffer(1, &leaves_buf);
            kernel.set_arg_buffer(2, &results_buf);
            kernel.set_arg_local(3, wg * w);
            kernel.set_arg_i32(4, n as i32);
        } else {
            kernel.set_arg_buffer(0, &params_buf);
            kernel.set_arg_buffer(1, &results_buf);
            kernel.set_arg_local(2, wg * w);
            kernel.set_arg_i32(3, n as i32);
        }

        // (2) one NDRange: one work-group per option.
        queue.enqueue_nd_range(&kernel, Dispatch::new(options.len() * wg, wg))?;

        // (3) one result read.
        let mut prices = vec![0.0; options.len()];
        read_reals(queue, &results_buf, 0, &mut prices, self.precision)?;
        Ok(prices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::binomial::price_american_f64;
    use bop_finance::workload;
    use bop_ocl::BuildOptions;

    fn run_on(
        device: Arc<dyn bop_ocl::Device>,
        host_leaves: bool,
        n: usize,
    ) -> (Vec<f64>, Vec<OptionParams>, f64) {
        let arch = if host_leaves {
            crate::KernelArch::OptimizedHostLeaves
        } else {
            crate::KernelArch::Optimized
        };
        let ctx = Context::new(device);
        let queue = CommandQueue::new(&ctx);
        let program = Program::from_source(
            &ctx,
            "optimized.cl",
            &arch.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        let options = workload::volatility_curve(&workload::WorkloadConfig::default(), 1.0, 4, 11);
        let host = OptimizedHost {
            n_steps: n,
            precision: Precision::Double,
            host_leaves,
            kernel_name: arch.kernel_name(),
        };
        let prices = host.run(&ctx, &queue, &program, &options).expect("runs");
        (prices, options, queue.elapsed_s())
    }

    #[test]
    fn gpu_prices_match_reference_exactly_enough() {
        let (prices, options, elapsed) = run_on(crate::devices::gpu(), false, 48);
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, 48);
            assert!(
                (p - reference).abs() < 1e-9,
                "GPU (exact math) should match reference: {p} vs {reference}"
            );
        }
        assert!(elapsed > 0.0);
    }

    #[test]
    fn fpga_prices_show_the_pow_inaccuracy() {
        let (prices, options, _) = run_on(crate::devices::fpga(), false, 48);
        let mut max_err = 0f64;
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, 48);
            max_err = max_err.max((p - reference).abs());
            assert!((p - reference).abs() < 0.05, "bug is small: {p} vs {reference}");
        }
        assert!(max_err > 1e-9, "the 13.0 pow bug must be visible: {max_err}");
    }

    #[test]
    fn host_leaves_variant_avoids_the_pow_bug_on_fpga() {
        let (prices, options, _) = run_on(crate::devices::fpga(), true, 48);
        for (p, o) in prices.iter().zip(&options) {
            let reference = price_american_f64(o, 48);
            assert!(
                (p - reference).abs() < 1e-9,
                "host leaves avoid the device pow: {p} vs {reference}"
            );
        }
    }

    #[test]
    fn command_stream_is_three_commands() {
        let ctx = Context::new(crate::devices::gpu());
        let queue = CommandQueue::new(&ctx);
        queue.enable_trace();
        let program = Program::from_source(
            &ctx,
            "optimized.cl",
            &crate::KernelArch::Optimized.source(Precision::Double),
            &BuildOptions::default(),
        )
        .expect("builds");
        let options = vec![OptionParams::example(); 3];
        let host = OptimizedHost {
            n_steps: 32,
            precision: Precision::Double,
            host_leaves: false,
            kernel_name: "binomial_option",
        };
        host.run(&ctx, &queue, &program, &options).expect("runs");
        let trace = queue.trace();
        assert_eq!(trace.len(), 3, "write, NDRange, read — exactly as the paper says");
    }
}
