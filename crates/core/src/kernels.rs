//! Kernel sources and precision instantiation.
//!
//! The `.cl` sources are written against a `REAL` scalar type; this module
//! instantiates them for `double` or `float` (the paper evaluates both
//! precisions) by textual substitution — the job OpenCL programs usually
//! do with `-D` build defines.

use bop_cpu::Precision;
use std::fmt;

/// The paper's two kernel architectures (plus the Section V.C fallback
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelArch {
    /// Section IV.A: one work-item per tree node, global ping-pong
    /// buffers, one host-driven batch per time step.
    Straightforward,
    /// Section IV.B: one work-group per option, one work-item per tree
    /// row, local-memory V row, device-side leaf initialisation (pow).
    Optimized,
    /// Section V.C fallback: kernel IV.B with host-computed leaves,
    /// avoiding the device `pow` at the cost of extra transfers.
    OptimizedHostLeaves,
    /// Extension beyond the paper: kernel IV.B's dataflow with the
    /// early-exercise max removed — European options, whose lattice price
    /// must converge to Black-Scholes (the cleanest whole-stack check).
    OptimizedEuropean,
}

impl KernelArch {
    /// The kernel's entry-point name.
    pub fn kernel_name(self) -> &'static str {
        match self {
            KernelArch::Straightforward => "binomial_node",
            KernelArch::Optimized => "binomial_option",
            KernelArch::OptimizedHostLeaves => "binomial_option_hostleaves",
            KernelArch::OptimizedEuropean => "binomial_european",
        }
    }

    /// The raw (`REAL`-typed) source.
    pub fn raw_source(self) -> &'static str {
        match self {
            KernelArch::Straightforward => include_str!("../kernels/straightforward.cl"),
            KernelArch::Optimized => include_str!("../kernels/optimized.cl"),
            KernelArch::OptimizedHostLeaves => include_str!("../kernels/optimized_hostleaves.cl"),
            KernelArch::OptimizedEuropean => include_str!("../kernels/european.cl"),
        }
    }

    /// The source instantiated at `precision`.
    pub fn source(self, precision: Precision) -> String {
        let real = match precision {
            Precision::Double => "double",
            Precision::Single => "float",
        };
        self.raw_source().replace("REAL", real)
    }

    /// The paper's published build options for this architecture
    /// (Section V.B): IV.A vectorized x2 + replicated x3; IV.B unrolled
    /// x2 + vectorized x4.
    pub fn paper_build_options(self) -> bop_ocl::BuildOptions {
        match self {
            KernelArch::Straightforward => bop_ocl::BuildOptions::paper_straightforward(),
            KernelArch::Optimized
            | KernelArch::OptimizedHostLeaves
            | KernelArch::OptimizedEuropean => bop_ocl::BuildOptions::paper_optimized(),
        }
    }
}

impl fmt::Display for KernelArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelArch::Straightforward => "IV.A straightforward",
            KernelArch::Optimized => "IV.B optimized",
            KernelArch::OptimizedHostLeaves => "IV.B optimized (host leaves)",
            KernelArch::OptimizedEuropean => "IV.B optimized (European)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_compile_in_both_precisions() {
        for arch in [
            KernelArch::Straightforward,
            KernelArch::Optimized,
            KernelArch::OptimizedHostLeaves,
            KernelArch::OptimizedEuropean,
        ] {
            for precision in [Precision::Double, Precision::Single] {
                let src = arch.source(precision);
                assert!(!src.contains("REAL"), "substitution incomplete for {arch}");
                let m = bop_clc::compile("k.cl", &src, &bop_clc::Options::default())
                    .unwrap_or_else(|e| panic!("{arch} at {precision:?} fails to compile: {e}"));
                assert!(m.kernel(arch.kernel_name()).is_some());
            }
        }
    }

    #[test]
    fn optimized_kernel_uses_pow_and_barriers_but_straightforward_does_not() {
        use bop_clir::ir::{Builtin, Inst};
        let check = |arch: KernelArch| {
            let m = bop_clc::compile("k.cl", &arch.source(Precision::Double), &Default::default())
                .expect("compiles");
            let f = m.kernel(arch.kernel_name()).expect("kernel").clone();
            let has_pow = f.blocks.iter().any(|b| {
                b.insts.iter().any(|i| matches!(i, Inst::Call { func: Builtin::Pow, .. }))
            });
            (has_pow, f.has_barrier())
        };
        assert_eq!(check(KernelArch::Optimized), (true, true));
        assert_eq!(check(KernelArch::Straightforward), (false, false));
        assert_eq!(check(KernelArch::OptimizedHostLeaves), (false, true));
    }

    #[test]
    fn paper_build_options_match_section_5b() {
        let a = KernelArch::Straightforward.paper_build_options();
        assert_eq!((a.simd, a.compute_units), (2, 3));
        let b = KernelArch::Optimized.paper_build_options();
        assert_eq!((b.simd, b.compute_units, b.unroll), (4, 1, Some(2)));
    }
}
