//! Kernel sources and precision instantiation.
//!
//! The `.cl` sources are written against a `REAL` scalar type; this module
//! instantiates them for `double` or `float` (the paper evaluates both
//! precisions) by textual substitution — the job OpenCL programs usually
//! do with `-D` build defines.

use bop_cpu::Precision;
use std::fmt;

/// The paper's two kernel architectures (plus the Section V.C fallback
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelArch {
    /// Section IV.A: one work-item per tree node, global ping-pong
    /// buffers, one host-driven batch per time step.
    Straightforward,
    /// Section IV.B: one work-group per option, one work-item per tree
    /// row, local-memory V row, device-side leaf initialisation (pow).
    Optimized,
    /// Section V.C fallback: kernel IV.B with host-computed leaves,
    /// avoiding the device `pow` at the cost of extra transfers.
    OptimizedHostLeaves,
    /// Extension beyond the paper: kernel IV.B's dataflow with the
    /// early-exercise max removed — European options, whose lattice price
    /// must converge to Black-Scholes (the cleanest whole-stack check).
    OptimizedEuropean,
    /// Extension beyond the paper (market-risk suite): kernel IV.B's
    /// dataflow with a knock-out barrier monitored at every node. The
    /// per-option parameter block widens to 8 values (barrier level and
    /// knock direction ride along).
    Barrier,
    /// Extension beyond the paper (market-risk suite): kernel IV.B's
    /// dataflow with early exercise restricted to every k-th lattice
    /// date. The per-option parameter block widens to 8 values.
    Bermudan,
    /// Section IV.C: the streaming architecture — two single-work-item
    /// task kernels (leaf producer, induction consumer) connected by an
    /// on-chip pipe and launched as one graph. Leaf values stream through
    /// the FIFO instead of global/local memory; the whole tree is priced
    /// device-resident with zero host round-trips between levels.
    /// Bit-identical to IV.B on the same device math.
    Streaming,
}

impl KernelArch {
    /// The IV.B-dataflow architecture that prices `payoff`: the vanilla
    /// payoffs map to the paper's kernels, the market-risk payoffs to
    /// their 8-wide-parameter variants.
    pub fn for_payoff(payoff: bop_finance::payoff::Payoff) -> KernelArch {
        use bop_finance::payoff::Payoff;
        match payoff {
            Payoff::European => KernelArch::OptimizedEuropean,
            Payoff::American => KernelArch::Optimized,
            Payoff::Barrier { .. } => KernelArch::Barrier,
            Payoff::Bermudan { .. } => KernelArch::Bermudan,
        }
    }

    /// The kernel's entry-point name.
    pub fn kernel_name(self) -> &'static str {
        match self {
            KernelArch::Straightforward => "binomial_node",
            KernelArch::Optimized => "binomial_option",
            KernelArch::OptimizedHostLeaves => "binomial_option_hostleaves",
            KernelArch::OptimizedEuropean => "binomial_european",
            KernelArch::Barrier => "binomial_barrier",
            KernelArch::Bermudan => "binomial_bermudan",
            // The consumer carries the results and therefore the stats
            // callers care about; the producer is
            // [`KernelArch::STREAMING_PRODUCER`].
            KernelArch::Streaming => "binomial_stream_consumer",
        }
    }

    /// The producer half of the [`KernelArch::Streaming`] pair (the
    /// consumer half is its [`KernelArch::kernel_name`]).
    pub const STREAMING_PRODUCER: &'static str = "binomial_leaf_producer";

    /// Width of the per-option parameter block the kernel reads: 6 for
    /// the vanilla payoffs, 8 for the market-risk payoffs (which append
    /// payoff-specific values).
    pub fn param_block_width(self) -> usize {
        match self {
            KernelArch::Straightforward
            | KernelArch::Optimized
            | KernelArch::OptimizedHostLeaves
            | KernelArch::OptimizedEuropean
            | KernelArch::Streaming => 6,
            KernelArch::Barrier | KernelArch::Bermudan => 8,
        }
    }

    /// The raw (`REAL`-typed) source.
    pub fn raw_source(self) -> &'static str {
        match self {
            KernelArch::Straightforward => include_str!("../kernels/straightforward.cl"),
            KernelArch::Optimized => include_str!("../kernels/optimized.cl"),
            KernelArch::OptimizedHostLeaves => include_str!("../kernels/optimized_hostleaves.cl"),
            KernelArch::OptimizedEuropean => include_str!("../kernels/european.cl"),
            KernelArch::Barrier => include_str!("../kernels/barrier.cl"),
            KernelArch::Bermudan => include_str!("../kernels/bermudan.cl"),
            KernelArch::Streaming => include_str!("../kernels/streaming.cl"),
        }
    }

    /// The source instantiated at `precision`. The streaming kernel's
    /// private row length defaults to the paper's 1024; size it to the
    /// lattice with [`KernelArch::source_sized`].
    pub fn source(self, precision: Precision) -> String {
        self.source_sized(precision, 1023)
    }

    /// The source instantiated at `precision` for an `n_steps` lattice.
    /// Only the streaming kernel is lattice-sized (its private rows hold
    /// `n_steps + 1` values, substituted for `PRIVN`); every other
    /// architecture takes the lattice size as a runtime argument.
    pub fn source_sized(self, precision: Precision, n_steps: usize) -> String {
        let real = match precision {
            Precision::Double => "double",
            Precision::Single => "float",
        };
        let src = self.raw_source().replace("REAL", real);
        match self {
            KernelArch::Streaming => src.replace("PRIVN", &(n_steps + 1).to_string()),
            _ => src,
        }
    }

    /// The paper's published build options for this architecture
    /// (Section V.B): IV.A vectorized x2 + replicated x3; IV.B unrolled
    /// x2 + vectorized x4.
    pub fn paper_build_options(self) -> bop_ocl::BuildOptions {
        match self {
            KernelArch::Straightforward => bop_ocl::BuildOptions::paper_straightforward(),
            KernelArch::Optimized
            | KernelArch::OptimizedHostLeaves
            | KernelArch::OptimizedEuropean
            | KernelArch::Barrier
            | KernelArch::Bermudan => bop_ocl::BuildOptions::paper_optimized(),
            // Single-work-item tasks: no SIMD lanes or replication to
            // vectorize over; the pipeline depth does the work.
            KernelArch::Streaming => bop_ocl::BuildOptions::default(),
        }
    }
}

impl fmt::Display for KernelArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelArch::Straightforward => "IV.A straightforward",
            KernelArch::Optimized => "IV.B optimized",
            KernelArch::OptimizedHostLeaves => "IV.B optimized (host leaves)",
            KernelArch::OptimizedEuropean => "IV.B optimized (European)",
            KernelArch::Barrier => "IV.B optimized (barrier)",
            KernelArch::Bermudan => "IV.B optimized (Bermudan)",
            KernelArch::Streaming => "IV.C streaming",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_compile_in_both_precisions() {
        for arch in [
            KernelArch::Straightforward,
            KernelArch::Optimized,
            KernelArch::OptimizedHostLeaves,
            KernelArch::OptimizedEuropean,
            KernelArch::Barrier,
            KernelArch::Bermudan,
            KernelArch::Streaming,
        ] {
            for precision in [Precision::Double, Precision::Single] {
                let src = arch.source(precision);
                assert!(!src.contains("REAL"), "substitution incomplete for {arch}");
                assert!(!src.contains("PRIVN"), "row sizing incomplete for {arch}");
                let m = bop_clc::compile("k.cl", &src, &bop_clc::Options::default())
                    .unwrap_or_else(|e| panic!("{arch} at {precision:?} fails to compile: {e}"));
                assert!(m.kernel(arch.kernel_name()).is_some());
            }
        }
    }

    #[test]
    fn streaming_pair_communicates_through_a_pipe_only() {
        use bop_clir::ir::Inst;
        use bop_clir::types::{AddressSpace, Type};
        let m = bop_clc::compile(
            "k.cl",
            &KernelArch::Streaming.source_sized(Precision::Double, 64),
            &Default::default(),
        )
        .expect("compiles");
        for name in [KernelArch::STREAMING_PRODUCER, KernelArch::Streaming.kernel_name()] {
            let f = m.kernel(name).expect("kernel");
            assert!(
                f.params.iter().any(|p| matches!(p.ty, Type::Ptr(AddressSpace::Pipe, _))),
                "{name} takes a pipe"
            );
        }
        let producer = m.kernel(KernelArch::STREAMING_PRODUCER).expect("kernel");
        let writes = producer
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::PipeWrite { .. }));
        let stores =
            producer.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, Inst::Store { .. }));
        assert!(writes, "producer streams leaves into the pipe");
        assert!(!stores, "producer never touches global memory for leaves");
    }

    #[test]
    fn optimized_kernel_uses_pow_and_barriers_but_straightforward_does_not() {
        use bop_clir::ir::{Builtin, Inst};
        let check = |arch: KernelArch| {
            let m = bop_clc::compile("k.cl", &arch.source(Precision::Double), &Default::default())
                .expect("compiles");
            let f = m.kernel(arch.kernel_name()).expect("kernel").clone();
            let has_pow = f.blocks.iter().any(|b| {
                b.insts.iter().any(|i| matches!(i, Inst::Call { func: Builtin::Pow, .. }))
            });
            (has_pow, f.has_barrier())
        };
        assert_eq!(check(KernelArch::Optimized), (true, true));
        assert_eq!(check(KernelArch::Straightforward), (false, false));
        assert_eq!(check(KernelArch::OptimizedHostLeaves), (false, true));
        assert_eq!(check(KernelArch::Barrier), (true, true));
        assert_eq!(check(KernelArch::Bermudan), (true, true));
    }

    #[test]
    fn param_block_widths_match_the_kernel_sources() {
        for arch in [KernelArch::Barrier, KernelArch::Bermudan] {
            assert_eq!(arch.param_block_width(), 8);
            assert!(arch.raw_source().contains("o * 8"), "{arch} reads 8-wide blocks");
        }
        for arch in [KernelArch::Optimized, KernelArch::OptimizedEuropean] {
            assert_eq!(arch.param_block_width(), 6);
        }
    }

    #[test]
    fn paper_build_options_match_section_5b() {
        let a = KernelArch::Straightforward.paper_build_options();
        assert_eq!((a.simd, a.compute_units), (2, 3));
        let b = KernelArch::Optimized.paper_build_options();
        assert_eq!((b.simd, b.compute_units, b.unroll), (4, 1, Some(2)));
    }
}
