//! Performance-model fitting: project paper-scale workloads from small
//! functional runs.
//!
//! Interpreting the paper's full workload (1024 steps x 2000 options ~ 1e9
//! node updates) is infeasible, and this separation is exactly how real
//! FPGA flows work: functional simulation at reduced size, performance
//! from the compiled image's timing model. The dynamic statistics of the
//! lattice kernels are polynomial in the step count `n` (the tree has
//! n(n+1)/2 interior nodes), so per-option statistics measured at three
//! small sizes determine the quadratic exactly; a fourth size validates
//! the fit. Timing-only queue runs then replay the full host program with
//! the extrapolated statistics.

use bop_clir::stats::{ExecStats, MemCounts, OpCounts};

/// Calibration sizes. All ≡ 0 (mod 8) so parity effects of the unrolled
/// loop are consistent with the (even) paper size N = 1024.
pub const CALIBRATION_STEPS: [usize; 3] = [24, 40, 56];
/// A fourth size used by tests to validate fits.
pub const VALIDATION_STEPS: usize = 72;

/// Flatten the statistics into a fixed-order vector of counters.
fn to_vec(stats: &ExecStats) -> Vec<f64> {
    let o = &stats.ops;
    let m = &stats.mem;
    let mut v = vec![
        stats.barriers as f64,
        stats.item_phases as f64,
        stats.pipe_reads as f64,
        stats.pipe_writes as f64,
        stats.pipe_read_stalls as f64,
        stats.pipe_write_stalls as f64,
    ];
    v.extend(
        [
            o.add32, o.add64, o.mul32, o.mul64, o.div32, o.div64, o.minmax32, o.minmax64,
            o.transc32, o.transc64, o.pow32, o.pow64, o.sqrt32, o.sqrt64, o.cmp, o.select,
            o.int_alu, o.cast, o.mov, o.wi_query,
        ]
        .iter()
        .map(|&x| x as f64),
    );
    v.extend(
        [
            m.global_loads,
            m.global_load_bytes,
            m.global_stores,
            m.global_store_bytes,
            m.local_loads,
            m.local_load_bytes,
            m.local_stores,
            m.local_store_bytes,
            m.private_accesses,
        ]
        .iter()
        .map(|&x| x as f64),
    );
    v.extend(stats.block_execs.iter().map(|&x| x as f64));
    v
}

/// Rebuild statistics from the flat vector (rounding to counts).
fn from_vec(v: &[f64], blocks: usize) -> ExecStats {
    let r = |x: f64| x.max(0.0).round() as u64;
    let mut it = v.iter().copied();
    let mut next = || r(it.next().expect("vector length"));
    let barriers = next();
    let item_phases = next();
    let pipe_reads = next();
    let pipe_writes = next();
    let pipe_read_stalls = next();
    let pipe_write_stalls = next();
    let ops = OpCounts {
        add32: next(),
        add64: next(),
        mul32: next(),
        mul64: next(),
        div32: next(),
        div64: next(),
        minmax32: next(),
        minmax64: next(),
        transc32: next(),
        transc64: next(),
        pow32: next(),
        pow64: next(),
        sqrt32: next(),
        sqrt64: next(),
        cmp: next(),
        select: next(),
        int_alu: next(),
        cast: next(),
        mov: next(),
        wi_query: next(),
    };
    let mem = MemCounts {
        global_loads: next(),
        global_load_bytes: next(),
        global_stores: next(),
        global_store_bytes: next(),
        local_loads: next(),
        local_load_bytes: next(),
        local_stores: next(),
        local_store_bytes: next(),
        private_accesses: next(),
    };
    let block_execs = (0..blocks).map(|_| next()).collect();
    ExecStats {
        block_execs,
        barriers,
        item_phases,
        pipe_reads,
        pipe_writes,
        pipe_read_stalls,
        pipe_write_stalls,
        ops,
        mem,
    }
}

/// A per-metric quadratic model of per-option statistics as a function of
/// the lattice step count.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsFit {
    blocks: usize,
    /// Per flattened metric: `[c0, c1, c2]` with `metric(n) = c0 + c1 n +
    /// c2 n^2`.
    coeffs: Vec<[f64; 3]>,
}

impl StatsFit {
    /// Fit the quadratic through per-option statistics measured at the
    /// three sizes `ns`.
    ///
    /// # Panics
    /// Panics if the three sizes are not distinct or the samples belong to
    /// different kernels.
    pub fn fit(ns: [usize; 3], samples: [&ExecStats; 3]) -> StatsFit {
        assert!(
            ns[0] != ns[1] && ns[1] != ns[2] && ns[0] != ns[2],
            "calibration sizes must be distinct"
        );
        let blocks = samples[0].block_execs.len();
        assert!(
            samples.iter().all(|s| s.block_execs.len() == blocks),
            "samples from different kernels"
        );
        let vs: Vec<Vec<f64>> = samples.iter().map(|s| to_vec(s)).collect();
        let x = [ns[0] as f64, ns[1] as f64, ns[2] as f64];
        let coeffs =
            (0..vs[0].len()).map(|k| solve_quadratic(x, [vs[0][k], vs[1][k], vs[2][k]])).collect();
        StatsFit { blocks, coeffs }
    }

    /// Evaluate the fitted per-option statistics at step count `n`.
    pub fn per_option(&self, n: usize) -> ExecStats {
        let x = n as f64;
        let v: Vec<f64> = self.coeffs.iter().map(|c| c[0] + c[1] * x + c[2] * x * x).collect();
        from_vec(&v, self.blocks)
    }
}

/// Solve the 3x3 Vandermonde system for an exact quadratic through three
/// points (Lagrange form).
fn solve_quadratic(x: [f64; 3], y: [f64; 3]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for i in 0..3 {
        let (xi, yi) = (x[i], y[i]);
        let (xj, xk) = (x[(i + 1) % 3], x[(i + 2) % 3]);
        let denom = (xi - xj) * (xi - xk);
        // yi * (t - xj)(t - xk) / denom  =  yi/denom * (t^2 - (xj+xk) t + xj xk)
        let s = yi / denom;
        out[0] += s * xj * xk;
        out[1] -= s * (xj + xk);
        out[2] += s;
    }
    out
}

/// Scale per-option statistics to a batch of `k` options, with exact
/// u64 scaling.
pub fn scale_to_batch(per_option: &ExecStats, k: usize) -> ExecStats {
    per_option.scaled(k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_solver_exact() {
        // y = 2 + 3n + 0.5 n^2
        let f = |n: f64| 2.0 + 3.0 * n + 0.5 * n * n;
        let c = solve_quadratic([2.0, 5.0, 9.0], [f(2.0), f(5.0), f(9.0)]);
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] - 3.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fit_round_trips_quadratic_metrics() {
        let mk = |n: u64| {
            let mut s = ExecStats::with_blocks(2);
            s.block_execs[0] = n + 1; // linear
            s.block_execs[1] = n * (n + 1) / 2; // quadratic
            s.barriers = 2 * n; // linear
            s.ops.mul64 = 3 * n * (n + 1) / 2;
            s
        };
        let (a, b, c) = (mk(24), mk(40), mk(56));
        let fit = StatsFit::fit([24, 40, 56], [&a, &b, &c]);
        let predicted = fit.per_option(1024);
        let expected = mk(1024);
        assert_eq!(predicted.block_execs, expected.block_execs);
        assert_eq!(predicted.barriers, expected.barriers);
        assert_eq!(predicted.ops.mul64, expected.ops.mul64);
    }

    #[test]
    fn scaling_to_batches() {
        let mut s = ExecStats::with_blocks(1);
        s.block_execs[0] = 10;
        s.ops.pow64 = 5;
        let b = scale_to_batch(&s, 2000);
        assert_eq!(b.block_execs[0], 20_000);
        assert_eq!(b.ops.pow64, 10_000);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_sizes_rejected() {
        let s = ExecStats::with_blocks(1);
        let _ = StatsFit::fit([8, 8, 16], [&s, &s, &s]);
    }
}
