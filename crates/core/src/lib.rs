//! # bop-core — the paper's contribution, reproduced
//!
//! This crate assembles the full system of *Energy-Efficient FPGA
//! Implementation for Binomial Option Pricing Using OpenCL* (DATE 2014) on
//! top of the workspace's substrates:
//!
//! * the two OpenCL kernel architectures — [`KernelArch::Straightforward`]
//!   (Section IV.A: one work-item per tree node, global ping-pong buffers,
//!   host-driven batches) and [`KernelArch::Optimized`] (Section IV.B: one
//!   work-group per option, local-memory row, barriers) — as real `.cl`
//!   sources compiled by `bop-clc` and executed/modeled by the device
//!   crates;
//! * [`hostprog`] — the host programs that drive them, faithful to the
//!   command streams described in the paper (including the
//!   full-buffer-read pathology that makes IV.A 100x slower);
//! * [`Accelerator`] — the user-facing facade: price a batch functionally,
//!   or *project* paper-scale performance (1024 steps, thousands of
//!   options) through the fitted performance model in [`perfmodel`];
//! * [`experiments`] — one driver per table/figure of the paper (see
//!   `DESIGN.md`'s per-experiment index).
//!
//! ## Quickstart
//!
//! ```
//! use bop_core::{Accelerator, KernelArch, Precision};
//! use bop_finance::OptionParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fpga = bop_core::devices::fpga();
//! let acc = Accelerator::builder(fpga)
//!     .arch(KernelArch::Optimized)
//!     .precision(Precision::Double)
//!     .n_steps(64)
//!     .build()?;
//! let run = acc.price(&[OptionParams::example()])?;
//! let reference = bop_finance::binomial::price_american_f64(&OptionParams::example(), 64);
//! assert!((run.prices[0] - reference).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod accelerator;
pub mod cluster;
pub mod devices;
pub mod error;
pub mod experiments;
pub mod hostprog;
pub mod kernels;
pub mod perfmodel;
pub mod suite;

pub use accelerator::{
    Accelerator, AcceleratorBuilder, AcceleratorConfig, PricingRun, Projection, SessionTrace,
};
pub use bop_cpu::Precision;
pub use bop_ocl::{FaultPlan, FaultSite, FaultSites, InjectedFault};
pub use cluster::{weighted_shares, MultiAccelerator};
pub use error::{Error, Rejection};
pub use kernels::KernelArch;
pub use suite::{PayoffSuite, RiskRequest, RiskResult};

/// The paper's full test environment (Section V.A): FPGA + GPU + CPU on
/// one platform.
pub fn paper_platform() -> bop_ocl::Platform {
    let mut p = bop_ocl::Platform::new();
    p.register(devices::fpga());
    p.register(devices::gpu());
    p.register(devices::cpu());
    p
}
