//! The market-risk payoff suite: one accelerator per payoff class on a
//! shared device, pricing heterogeneous request batches with optional
//! Greeks.
//!
//! The suite compiles the four IV.B-dataflow kernels (American, European,
//! barrier, Bermudan) **once** per pool and answers
//! [`RiskRequest`]es: price plus, on demand, the full first-order Greeks.
//! Delta, gamma and theta are read from a host-side lattice (they fall
//! out of the first tree levels for free); vega and rho come from
//! bump-and-reprice scenarios that ride in the *same* device batch as
//! the base option, so one session prices `base + 4 bumps` per
//! Greeks-requesting option with no extra compilation or session setup.

use crate::accelerator::{Accelerator, AcceleratorConfig, PricingRun, SessionTrace};
use crate::error::Error;
use crate::kernels::KernelArch;
use bop_cpu::Precision;
use bop_finance::binomial::BinomialTree;
use bop_finance::greeks::{assemble_greeks, bump_scenarios, Greeks};
use bop_finance::payoff::Payoff;
use bop_finance::types::OptionParams;
use bop_ocl::{Device, FaultPlan};
use std::sync::Arc;

/// One pricing job for the suite: an option, the payoff to price it
/// under, and whether to compute its Greeks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskRequest {
    /// The option's market and contract parameters (the `style` field is
    /// ignored — `payoff` governs exercise).
    pub params: OptionParams,
    /// The payoff priced.
    pub payoff: Payoff,
    /// Compute delta/gamma/theta/vega/rho alongside the price.
    pub greeks: bool,
}

impl RiskRequest {
    /// A price-only request.
    pub fn price_only(params: OptionParams, payoff: Payoff) -> RiskRequest {
        RiskRequest { params, payoff, greeks: false }
    }

    /// A price + Greeks request.
    pub fn with_greeks(params: OptionParams, payoff: Payoff) -> RiskRequest {
        RiskRequest { params, payoff, greeks: true }
    }
}

/// One priced request: the device price and, if requested, the Greeks
/// (device price, device vega/rho bumps, host-lattice delta/gamma/theta).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskResult {
    /// The price, from the device.
    pub price: f64,
    /// The Greeks, when the request asked for them.
    pub greeks: Option<Greeks>,
}

/// The per-payoff-class accelerators of one device, sharing one
/// configuration (precision, lattice size, metrics, faults, …).
pub struct PayoffSuite {
    american: Accelerator,
    european: Accelerator,
    barrier: Accelerator,
    bermudan: Accelerator,
    /// The kernel IV.C pipe pair: an alternative American-pricing path
    /// that runs device-resident (producer → pipe → consumer, one launch
    /// graph), bit-identical to [`PayoffSuite::accelerator`]'s IV.B.
    streaming: Accelerator,
}

impl Clone for PayoffSuite {
    fn clone(&self) -> PayoffSuite {
        PayoffSuite {
            american: self.american.clone(),
            european: self.european.clone(),
            barrier: self.barrier.clone(),
            bermudan: self.bermudan.clone(),
            streaming: self.streaming.clone(),
        }
    }
}

impl PayoffSuite {
    /// Build one suite for `device` with the defaults of
    /// [`AcceleratorConfig::new`] at `n_steps`.
    ///
    /// # Errors
    /// Same as [`PayoffSuite::from_config`].
    pub fn build(device: Arc<dyn Device>, n_steps: usize) -> Result<PayoffSuite, Error> {
        let mut config = AcceleratorConfig::new(device);
        config.n_steps = n_steps;
        PayoffSuite::from_config(config)
    }

    /// Realise `config` as a payoff suite. The config's `arch` field is
    /// ignored: each payoff class compiles its own kernel architecture
    /// (American → IV.B optimized, European / barrier / Bermudan → their
    /// variants). Everything else — device, precision, lattice size,
    /// build options, metrics, workers, engine, faults — applies to all
    /// four accelerators alike.
    ///
    /// # Errors
    /// Same as [`Accelerator::from_config`], for whichever kernel fails
    /// first.
    pub fn from_config(config: AcceleratorConfig) -> Result<PayoffSuite, Error> {
        Ok(PayoffSuite::pool(config, 1)?.pop().expect("pool of one"))
    }

    /// Realise `config` as `n` suites, compiling each of the four kernels
    /// **once**: suite `i` holds clones of the first suite's compiled
    /// programs. This is how the serving layer builds identical shards
    /// without paying per-shard compilation. See
    /// [`PayoffSuite::from_config`] for how `config` is interpreted.
    ///
    /// # Errors
    /// Same as [`PayoffSuite::from_config`]; rejects `n == 0`.
    pub fn pool(config: AcceleratorConfig, n: usize) -> Result<Vec<PayoffSuite>, Error> {
        if n == 0 {
            return Err(Error::Invalid("a pool needs at least one shard".into()));
        }
        let class = |arch: KernelArch| -> Result<Vec<Accelerator>, Error> {
            let mut c = config.clone();
            c.arch = arch;
            c.build_pool(n)
        };
        let american = class(KernelArch::Optimized)?;
        let european = class(KernelArch::OptimizedEuropean)?;
        let barrier = class(KernelArch::Barrier)?;
        let bermudan = class(KernelArch::Bermudan)?;
        let streaming = class(KernelArch::Streaming)?;
        Ok(american
            .into_iter()
            .zip(european)
            .zip(barrier)
            .zip(bermudan)
            .zip(streaming)
            .map(|((((american, european), barrier), bermudan), streaming)| PayoffSuite {
                american,
                european,
                barrier,
                bermudan,
                streaming,
            })
            .collect())
    }

    /// The accelerator that prices `payoff`'s class.
    pub fn accelerator(&self, payoff: Payoff) -> &Accelerator {
        match payoff {
            Payoff::American => &self.american,
            Payoff::European => &self.european,
            Payoff::Barrier { .. } => &self.barrier,
            Payoff::Bermudan { .. } => &self.bermudan,
        }
    }

    /// The kernel IV.C streaming accelerator: prices American options
    /// through the device-resident pipe pair (one launch graph, zero host
    /// round-trips between tree levels), bit-identical to the American
    /// IV.B path on the same device math. Serving keeps IV.B as the
    /// throughput path — its 1024 lanes beat IV.C's single pipeline — but
    /// exposes this one for energy-bound deployments and for the Table II
    /// IV.C column.
    pub fn streaming(&self) -> &Accelerator {
        &self.streaming
    }

    /// The lattice step count (shared by all four accelerators).
    pub fn n_steps(&self) -> usize {
        self.american.n_steps()
    }

    /// The numeric precision (shared by all four accelerators).
    pub fn precision(&self) -> Precision {
        self.american.precision()
    }

    /// The device the suite runs on.
    pub fn device(&self) -> &Arc<dyn Device> {
        self.american.device()
    }

    /// Replace the fault plan on **all four** accelerators (typically to
    /// re-seed per serving shard). An inert plan disables injection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> PayoffSuite {
        self.american = self.american.with_fault_plan(plan);
        self.european = self.european.with_fault_plan(plan);
        self.barrier = self.barrier.with_fault_plan(plan);
        self.bermudan = self.bermudan.with_fault_plan(plan);
        self.streaming = self.streaming.with_fault_plan(plan);
        self
    }

    /// The active fault plan, if any (shared by all four accelerators).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.american.fault_plan()
    }

    /// Project the performance of pricing `n_options` on the American
    /// kernel (the paper's kernel IV.B; the payoff variants execute the
    /// same dataflow, so its rates represent the suite).
    ///
    /// # Errors
    /// Same as [`Accelerator::project`].
    pub fn project(&self, n_options: usize) -> Result<crate::accelerator::Projection, Error> {
        self.american.project(n_options)
    }

    /// Price a batch of same-payoff-class requests in **one** device
    /// session: every base option, followed by the four vega/rho bump
    /// scenarios of each Greeks-requesting option, in request order.
    /// Returns per-request results plus the run's accounting (which
    /// covers the whole device batch, bumps included).
    ///
    /// The Greeks are assembled from the device prices (base, vol±,
    /// rate±) and a host-side lattice for delta/gamma/theta — all
    /// deterministic, so results are bit-identical across engines and
    /// worker counts.
    ///
    /// # Errors
    /// Rejects an empty batch and a batch mixing payoff classes (the
    /// serving layer splits batches per class); propagates pricing
    /// failures.
    pub fn price_risk(
        &self,
        requests: &[RiskRequest],
    ) -> Result<(Vec<RiskResult>, PricingRun), Error> {
        let (results, run, _) = self.price_risk_inner(requests, false)?;
        Ok((results, run))
    }

    /// Like [`PayoffSuite::price_risk`], with command tracing enabled on
    /// the session queue (the returned spans cover the whole batch,
    /// bumps included).
    ///
    /// # Errors
    /// Same as [`PayoffSuite::price_risk`].
    pub fn price_risk_with_session_trace(
        &self,
        requests: &[RiskRequest],
    ) -> Result<(Vec<RiskResult>, PricingRun, SessionTrace), Error> {
        let (results, run, trace) = self.price_risk_inner(requests, true)?;
        Ok((results, run, trace.expect("trace requested")))
    }

    fn price_risk_inner(
        &self,
        requests: &[RiskRequest],
        traced: bool,
    ) -> Result<(Vec<RiskResult>, PricingRun, Option<SessionTrace>), Error> {
        let Some(first) = requests.first() else {
            return Err(Error::Invalid("empty batch".into()));
        };
        let class = first.payoff.label();
        if let Some(mixed) = requests.iter().find(|r| r.payoff.label() != class) {
            return Err(Error::Invalid(format!(
                "mixed payoff classes in one batch ({class} and {}); split per class",
                mixed.payoff.label()
            )));
        }
        let acc = self.accelerator(first.payoff);

        // Device batch: all base options first, then the bump block of
        // each Greeks-requesting option (vol+, vol-, rate+, rate-), in
        // request order.
        let mut options: Vec<OptionParams> = Vec::with_capacity(requests.len());
        let mut payoffs: Vec<Payoff> = Vec::with_capacity(requests.len());
        for r in requests {
            options.push(r.params);
            payoffs.push(r.payoff);
        }
        for r in requests.iter().filter(|r| r.greeks) {
            options.extend(bump_scenarios(&r.params));
            payoffs.extend([r.payoff; 4]);
        }

        let (run, trace) = if traced {
            let (run, trace) = acc.price_payoffs_with_session_trace(&options, &payoffs)?;
            (run, Some(trace))
        } else {
            (acc.price_payoffs(&options, &payoffs)?, None)
        };

        let n_steps = self.n_steps();
        let mut bumps = run.prices[requests.len()..].chunks_exact(4);
        let results = requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let price = run.prices[i];
                let greeks = r.greeks.then(|| {
                    let chunk = bumps.next().expect("one bump block per greeks request");
                    let tree = BinomialTree::build_payoff(&r.params, r.payoff, n_steps);
                    let dt = r.params.expiry / n_steps as f64;
                    assemble_greeks(price, &tree, dt, [chunk[0], chunk[1], chunk[2], chunk[3]])
                });
                RiskResult { price, greeks }
            })
            .collect();
        Ok((results, run, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bop_finance::greeks::lattice_greeks_payoff;
    use bop_finance::payoff::{price_payoff_f64, BarrierKind};

    fn all_payoffs() -> [Payoff; 4] {
        [
            Payoff::European,
            Payoff::American,
            Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 130.0 },
            Payoff::Bermudan { exercise_every: 4 },
        ]
    }

    #[test]
    fn every_payoff_class_prices_with_greeks() {
        let suite = PayoffSuite::build(crate::devices::gpu(), 48).expect("builds");
        for payoff in all_payoffs() {
            let reqs = [
                RiskRequest::with_greeks(OptionParams::example(), payoff),
                RiskRequest::price_only(OptionParams::example(), payoff),
            ];
            let (results, run) = suite.price_risk(&reqs).expect("prices");
            assert_eq!(results.len(), 2);
            // Device batch = 2 base + 4 bumps.
            assert_eq!(run.prices.len(), 6);
            assert!(results[1].greeks.is_none());
            let g = results[0].greeks.expect("greeks requested");
            let reference = lattice_greeks_payoff(&OptionParams::example(), payoff, 48);
            // Device prices match the f64 reference to ~1e-9 on the GPU
            // model; the vega/rho finite differences divide by 2e-4.
            assert!((g.price - reference.price).abs() < 1e-9, "{payoff}");
            assert_eq!(g.delta, reference.delta, "{payoff}: tree greeks are host-side");
            assert_eq!(g.gamma, reference.gamma, "{payoff}");
            assert_eq!(g.theta, reference.theta, "{payoff}");
            assert!((g.vega - reference.vega).abs() < 1e-4, "{payoff}");
            assert!((g.rho - reference.rho).abs() < 1e-4, "{payoff}");
        }
    }

    #[test]
    fn mixed_classes_are_rejected_and_empty_batches_too() {
        let suite = PayoffSuite::build(crate::devices::gpu(), 32).expect("builds");
        let err = suite
            .price_risk(&[
                RiskRequest::price_only(OptionParams::example(), Payoff::American),
                RiskRequest::price_only(OptionParams::example(), Payoff::European),
            ])
            .expect_err("mixed classes");
        assert!(err.to_string().contains("mixed payoff classes"), "{err}");
        assert!(suite.price_risk(&[]).is_err());
    }

    #[test]
    fn distinct_payoff_parameters_ride_in_one_batch() {
        let suite = PayoffSuite::build(crate::devices::gpu(), 64).expect("builds");
        let levels = [105.0, 120.0, 150.0, 1e9];
        let reqs: Vec<RiskRequest> = levels
            .iter()
            .map(|&level| {
                let payoff = Payoff::Barrier { kind: BarrierKind::UpAndOut, level };
                RiskRequest::price_only(OptionParams::example(), payoff)
            })
            .collect();
        let (results, run) = suite.price_risk(&reqs).expect("prices");
        for (r, &level) in results.iter().zip(&levels) {
            let payoff = Payoff::Barrier { kind: BarrierKind::UpAndOut, level };
            let reference = price_payoff_f64(&OptionParams::example(), payoff, 64);
            assert!((r.price - reference).abs() < 1e-9, "level {level}");
        }
        // Tighter barriers are worth less.
        assert!(results[0].price < results[1].price);
        assert!(results[1].price < results[2].price);
        assert!(run.rmse < 1e-9, "payoff-aware reference: {}", run.rmse);
    }

    #[test]
    fn streaming_path_matches_the_american_path_bit_for_bit() {
        let suite = PayoffSuite::build(crate::devices::gpu(), 48).expect("builds");
        let options: Vec<OptionParams> = (0..5)
            .map(|i| OptionParams { spot: 90.0 + 5.0 * f64::from(i), ..OptionParams::example() })
            .collect();
        let iv_b = suite.accelerator(Payoff::American).price(&options).expect("IV.B prices");
        let iv_c = suite.streaming().price(&options).expect("IV.C prices");
        assert_eq!(iv_b.prices, iv_c.prices, "same device math, same bits");
    }

    #[test]
    fn pool_shares_compiled_programs_per_class() {
        let suites =
            PayoffSuite::pool(AcceleratorConfig::new(crate::devices::gpu()), 3).expect("builds");
        assert_eq!(suites.len(), 3);
        for payoff in all_payoffs() {
            let first = suites[0].accelerator(payoff).program();
            for s in &suites[1..] {
                assert!(
                    Arc::ptr_eq(first.module(), s.accelerator(payoff).program().module()),
                    "{payoff}: pool must share one compiled program"
                );
            }
        }
    }

    #[test]
    fn results_are_bit_identical_across_engines_and_worker_counts() {
        let runs: Vec<Vec<RiskResult>> = [
            (bop_ocl::Engine::Walk, 1),
            (bop_ocl::Engine::Bytecode, 1),
            (bop_ocl::Engine::Bytecode, 4),
            (bop_ocl::Engine::Lanes, 1),
            (bop_ocl::Engine::Lanes, 4),
        ]
        .into_iter()
        .map(|(engine, workers)| {
            let mut config = AcceleratorConfig::new(crate::devices::gpu());
            config.n_steps = 32;
            config.engine = Some(engine);
            config.workers = Some(workers);
            let suite = PayoffSuite::from_config(config).expect("builds");
            let reqs: Vec<RiskRequest> = all_payoffs()
                .into_iter()
                .map(|p| RiskRequest::with_greeks(OptionParams::example(), p))
                .collect();
            reqs.iter()
                .map(|r| {
                    let (results, _) = suite.price_risk(std::slice::from_ref(r)).expect("prices");
                    results[0]
                })
                .collect()
        })
        .collect();
        assert_eq!(runs[0], runs[1], "walk vs bytecode");
        assert_eq!(runs[1], runs[2], "1 vs 4 workers");
        assert_eq!(runs[0], runs[3], "walk vs lanes");
        assert_eq!(runs[3], runs[4], "lanes: 1 vs 4 workers");
    }
}
