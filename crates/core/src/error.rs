//! The single error type of the pricing stack.
//!
//! Every fallible operation in `bop-core` — and in the serving layer
//! built on top of it (`bop-serve`) — reports through [`Error`]. The
//! build- and run-time variants carry their underlying cause and expose
//! it through [`std::error::Error::source`], so callers can walk the
//! chain (`Error` → [`BuildError`] / [`RuntimeError`] → interpreter
//! faults) instead of parsing display strings. The admission-control
//! variants ([`Error::Rejected`], [`Error::DeadlineExceeded`]) are
//! structured, not stringly typed: a load shedder can read queue depth
//! and capacity straight off the rejection.

use bop_ocl::queue::RuntimeError;
use bop_ocl::{BuildError, FaultParseError, InjectedFault};
use std::fmt;

/// Error from building or running an accelerator, or from the serving
/// layer's admission control.
#[derive(Debug, Clone)]
pub enum Error {
    /// The kernel failed to compile or fit on the device.
    Build(BuildError),
    /// A command failed at run time.
    Runtime(RuntimeError),
    /// Invalid request (empty batch, bad option parameters, mismatched
    /// cluster members).
    Invalid(String),
    /// The service declined the request because its bounded submission
    /// queue was full (or it was shutting down).
    Rejected(Rejection),
    /// The request's deadline passed before a shard picked it up.
    DeadlineExceeded {
        /// How far past the deadline the request was when dropped,
        /// seconds.
        missed_by_s: f64,
    },
    /// A command was killed by the simulator's fault-injection layer
    /// (see [`bop_ocl::FaultPlan`]). Transient by construction — the
    /// serving layer treats exactly this variant as retryable.
    #[non_exhaustive]
    Fault {
        /// The injected fault; its `source()` chains to the engine-level
        /// trap for spurious-trap sites.
        fault: InjectedFault,
    },
    /// A configuration knob (builder argument or environment variable
    /// such as `BOP_SIM_FAULTS`) was malformed.
    #[non_exhaustive]
    Config {
        /// The knob that failed to parse (e.g. `"BOP_SIM_FAULTS"`).
        var: String,
        /// Why it was rejected.
        cause: FaultParseError,
    },
}

/// Details of a [`Error::Rejected`] admission failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Requests queued at the time of rejection.
    pub depth: usize,
    /// The queue's configured capacity, in requests.
    pub capacity: usize,
    /// `true` when the rejection was due to shutdown, not queue depth.
    pub shutting_down: bool,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shutting_down {
            write!(f, "service is shutting down")
        } else {
            write!(f, "queue full: {} of {} request slots in use", self.depth, self.capacity)
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Build(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::Rejected(r) => write!(f, "request rejected: {r}"),
            Error::DeadlineExceeded { missed_by_s } => {
                write!(f, "deadline exceeded by {missed_by_s:.6} s")
            }
            Error::Fault { fault } => write!(f, "{fault}"),
            Error::Config { var, cause } => write!(f, "invalid {var}: {cause}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Fault { fault } => Some(fault),
            Error::Config { cause, .. } => Some(cause),
            Error::Invalid(_) | Error::Rejected(_) | Error::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Error {
        Error::Build(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Error {
        match e {
            // Injected faults get their own top-level variant so retry
            // policies can match them without digging through the chain.
            RuntimeError::Fault(fault) => Error::Fault { fault },
            other => Error::Runtime(other),
        }
    }
}

impl Error {
    /// True for errors that are transient by construction (today:
    /// injected faults) and therefore worth retrying. Genuine runtime
    /// errors — real traps, invalid commands — are deterministic and are
    /// not retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Fault { .. })
    }
}

/// The pre-0.2 name of [`Error`].
#[deprecated(since = "0.2.0", note = "renamed to `bop_core::Error`")]
pub type AcceleratorError = Error;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as StdError;

    #[test]
    fn build_and_runtime_errors_chain_through_source() {
        let e = Error::from(BuildError::new("LUTs exhausted"));
        let src = e.source().expect("build cause");
        assert!(src.downcast_ref::<BuildError>().expect("BuildError").message.contains("LUTs"));

        let e = Error::from(RuntimeError::Invalid("unset kernel arg".into()));
        let src = e.source().expect("runtime cause");
        assert!(src.downcast_ref::<RuntimeError>().is_some());

        for e in [
            Error::Invalid("x".into()),
            Error::Rejected(Rejection { depth: 4, capacity: 4, shutting_down: false }),
            Error::DeadlineExceeded { missed_by_s: 0.25 },
        ] {
            assert!(e.source().is_none(), "{e} has no cause");
        }
    }

    #[test]
    fn fault_and_config_variants_chain_and_classify() {
        // An injected runtime fault maps to the dedicated retryable
        // variant, keeping the cause chain.
        let fault = InjectedFault {
            site: bop_ocl::FaultSite::TransferD2H,
            detail: "bit flip detected".into(),
            cause: None,
        };
        let e = Error::from(RuntimeError::Fault(fault));
        assert!(e.is_retryable());
        assert!(matches!(e, Error::Fault { .. }));
        let src = e.source().expect("fault cause");
        assert!(src.downcast_ref::<InjectedFault>().is_some());

        // Config errors carry the knob name and the parse cause.
        let cause = bop_ocl::FaultPlan::parse("rate=lots").expect_err("malformed");
        let e = Error::Config { var: "BOP_SIM_FAULTS".into(), cause };
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("BOP_SIM_FAULTS"), "{e}");
        let src = e.source().expect("config cause");
        assert!(src.downcast_ref::<FaultParseError>().is_some());

        // Non-fault runtime errors stay on the Runtime variant.
        let e = Error::from(RuntimeError::Invalid("bad".into()));
        assert!(!e.is_retryable());
        assert!(matches!(e, Error::Runtime(_)));
    }

    #[test]
    fn rejection_display_names_the_pressure() {
        let full = Rejection { depth: 8, capacity: 8, shutting_down: false };
        assert!(full.to_string().contains("8 of 8"));
        let closing = Rejection { depth: 0, capacity: 8, shutting_down: true };
        assert!(closing.to_string().contains("shutting down"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_resolves() {
        let e: AcceleratorError = Error::Invalid("legacy name".into());
        assert!(matches!(e, Error::Invalid(_)));
    }
}
