//! Multi-accelerator batches — the paper's future-work direction
//! ("Future work will focus on other hardware architectures supporting the
//! OpenCL standard, so as to compare their performances to the FPGA
//! device") taken one step further: run one batch across several devices
//! at once, split proportionally to each accelerator's measured marginal
//! rate.

use crate::accelerator::{Accelerator, PricingRun};
use crate::error::Error;
use bop_finance::binomial::tree_nodes;
use bop_finance::types::OptionParams;

/// A set of accelerators pricing one batch cooperatively.
pub struct MultiAccelerator {
    accelerators: Vec<Accelerator>,
}

/// Split `n_options` across members proportionally to their `rates`
/// (options/s). This is the scheduling core shared by
/// [`MultiAccelerator::split`] and the `bop-serve` shard pool.
///
/// Guarantees:
/// * shares sum to exactly `n_options`;
/// * while options remain, every member gets at least one — when
///   `n_options < rates.len()`, the fastest `n_options` members get one
///   each;
/// * non-finite or non-positive rates are tolerated: if *every* rate is
///   degenerate (zero, negative, NaN, infinite) the split falls back to
///   equal shares rather than dividing by zero.
pub fn weighted_shares(rates: &[f64], n_options: usize) -> Vec<usize> {
    let members = rates.len();
    if members == 0 {
        return Vec::new();
    }
    // Sanitize: a degenerate rate contributes no weight; a fully
    // degenerate cluster splits equally.
    let sane: Vec<f64> =
        rates.iter().map(|&r| if r.is_finite() && r > 0.0 { r } else { 0.0 }).collect();
    let total: f64 = sane.iter().sum();
    let weights: Vec<f64> = if total > 0.0 { sane } else { vec![1.0; members] };
    let total: f64 = weights.iter().sum();

    // Fastest-first order (stable on ties by index).
    let mut order: Vec<usize> = (0..members).collect();
    order.sort_by(|&a, &b| {
        weights[b].partial_cmp(&weights[a]).expect("sanitized weights are finite").then(a.cmp(&b))
    });

    if n_options < members {
        // Too few options to go around: the fastest n_options members
        // take one each.
        let mut shares = vec![0; members];
        for &i in order.iter().take(n_options) {
            shares[i] = 1;
        }
        return shares;
    }

    let mut shares: Vec<usize> =
        weights.iter().map(|&w| ((w / total) * n_options as f64).floor() as usize).collect();
    // Distribute the rounding remainder to the fastest members; the floor
    // sum never exceeds n_options, so this terminates.
    let mut remainder = n_options - shares.iter().sum::<usize>();
    for &i in order.iter().cycle() {
        if remainder == 0 {
            break;
        }
        shares[i] += 1;
        remainder -= 1;
    }
    // Every member gets at least one: donate from the largest share.
    for i in 0..members {
        while shares[i] == 0 {
            let donor = (0..members).max_by_key(|&j| shares[j]).expect("non-empty");
            if shares[donor] <= 1 {
                break; // nothing left to donate (cannot happen: n_options >= members)
            }
            shares[donor] -= 1;
            shares[i] += 1;
        }
    }
    shares
}

/// Projection of a cooperative batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProjection {
    /// Batch share given to each accelerator, in input order.
    pub shares: Vec<usize>,
    /// Per-accelerator batch time, seconds.
    pub device_times_s: Vec<f64>,
    /// Batch wall-clock (devices run concurrently): the slowest share.
    pub elapsed_s: f64,
    /// Combined throughput, options/s.
    pub options_per_s: f64,
    /// Combined power (all devices running), watts.
    pub watts: f64,
    /// Combined energy efficiency, options/J.
    pub options_per_j: f64,
    /// Combined node throughput, nodes/s.
    pub nodes_per_s: f64,
}

impl MultiAccelerator {
    /// Group accelerators into a cluster.
    ///
    /// # Errors
    /// Rejects empty clusters and mismatched lattice sizes or precisions
    /// (shares of one batch must be comparable).
    pub fn new(accelerators: Vec<Accelerator>) -> Result<MultiAccelerator, Error> {
        if accelerators.is_empty() {
            return Err(Error::Invalid("empty cluster".into()));
        }
        let n = accelerators[0].n_steps();
        let p = accelerators[0].precision();
        if accelerators.iter().any(|a| a.n_steps() != n || a.precision() != p) {
            return Err(Error::Invalid(
                "cluster members must share lattice size and precision".into(),
            ));
        }
        Ok(MultiAccelerator { accelerators })
    }

    /// The member accelerators.
    pub fn members(&self) -> &[Accelerator] {
        &self.accelerators
    }

    /// Split `n_options` proportionally to each member's marginal rate
    /// (measured by projection on a probe batch). Every member gets at
    /// least one option while options remain; shares sum to `n_options`.
    ///
    /// # Errors
    /// Propagates projection failures.
    pub fn split(&self, n_options: usize) -> Result<Vec<usize>, Error> {
        let rates: Vec<f64> = self
            .accelerators
            .iter()
            .map(|a| a.project(256).map(|p| p.options_per_s))
            .collect::<Result<_, _>>()?;
        Ok(weighted_shares(&rates, n_options))
    }

    /// Project a cooperative batch: devices run their shares concurrently.
    ///
    /// # Errors
    /// Propagates projection failures.
    pub fn project(&self, n_options: usize) -> Result<ClusterProjection, Error> {
        let shares = self.split(n_options)?;
        let mut device_times_s = Vec::with_capacity(shares.len());
        let mut watts = 0.0;
        for (acc, &share) in self.accelerators.iter().zip(&shares) {
            if share == 0 {
                // Idle members still burn power: the doc promises "all
                // devices running", so count the device's draw either way.
                device_times_s.push(0.0);
                watts += acc.report().power_watts;
                continue;
            }
            let p = acc.project(share)?;
            device_times_s.push(p.elapsed_s);
            watts += p.watts;
        }
        let elapsed_s = device_times_s.iter().cloned().fold(0.0, f64::max);
        let options_per_s = n_options as f64 / elapsed_s;
        Ok(ClusterProjection {
            shares,
            device_times_s,
            elapsed_s,
            options_per_s,
            watts,
            options_per_j: options_per_s / watts,
            nodes_per_s: options_per_s * tree_nodes(self.accelerators[0].n_steps()) as f64,
        })
    }

    /// Price a batch functionally across the cluster, preserving input
    /// order.
    ///
    /// # Errors
    /// Propagates member failures.
    pub fn price(&self, options: &[OptionParams]) -> Result<Vec<PricingRun>, Error> {
        if options.is_empty() {
            return Err(Error::Invalid("empty batch".into()));
        }
        let shares = self.split(options.len())?;
        let mut runs = Vec::with_capacity(shares.len());
        let mut offset = 0;
        for (acc, &share) in self.accelerators.iter().zip(&shares) {
            if share == 0 {
                continue;
            }
            let slice = &options[offset..offset + share];
            runs.push(acc.price(slice)?);
            offset += share;
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelArch, Precision};

    fn cluster(n_steps: usize) -> MultiAccelerator {
        let fpga = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(n_steps)
            .build()
            .expect("fpga builds");
        let gpu = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(n_steps)
            .build()
            .expect("gpu builds");
        MultiAccelerator::new(vec![fpga, gpu]).expect("cluster")
    }

    #[test]
    fn shares_are_proportional_to_speed_and_sum() {
        let c = cluster(256);
        let shares = c.split(1000).expect("splits");
        assert_eq!(shares.iter().sum::<usize>(), 1000);
        // The GPU is several times faster: it must take the bigger share.
        assert!(shares[1] > shares[0], "GPU share {} vs FPGA {}", shares[1], shares[0]);
        assert!(shares[0] > 0, "but the FPGA still contributes");
    }

    #[test]
    fn cluster_beats_its_fastest_member() {
        let c = cluster(256);
        let combined = c.project(2000).expect("projects");
        let solo_rates: Vec<f64> =
            c.members().iter().map(|a| a.project(2000).expect("projects").options_per_s).collect();
        let best_solo = solo_rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            combined.options_per_s > best_solo,
            "cooperation must add throughput: {} vs best solo {}",
            combined.options_per_s,
            best_solo
        );
        // Shares are balanced: devices finish within ~25% of each other.
        let max_t = combined.device_times_s.iter().cloned().fold(0.0, f64::max);
        let min_t =
            combined.device_times_s.iter().cloned().filter(|t| *t > 0.0).fold(f64::MAX, f64::min);
        assert!(max_t / min_t < 1.3, "imbalanced shares: {:?}", combined.device_times_s);
    }

    #[test]
    fn cooperative_prices_match_solo_prices() {
        let c = cluster(48);
        let options = bop_finance::workload::volatility_curve(
            &bop_finance::workload::WorkloadConfig::default(),
            1.0,
            8,
            3,
        );
        let runs = c.price(&options).expect("prices");
        let all: Vec<f64> = runs.iter().flat_map(|r| r.prices.clone()).collect();
        assert_eq!(all.len(), options.len());
        for (price, option) in all.iter().zip(&options) {
            let reference = bop_finance::binomial::price_american_f64(option, 48);
            assert!((price - reference).abs() < 1e-3, "{price} vs {reference}");
        }
    }

    #[test]
    fn single_member_cluster_takes_the_whole_batch() {
        let solo = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        let c = MultiAccelerator::new(vec![solo]).expect("cluster");
        assert_eq!(c.split(17).expect("splits"), vec![17]);
        let p = c.project(17).expect("projects");
        assert_eq!(p.shares, vec![17]);
        assert!(p.watts > 0.0 && p.options_per_s > 0.0);
    }

    #[test]
    fn wildly_asymmetric_rates_still_give_everyone_work() {
        // A rate ratio of 10^6 floors the slow member to zero; the
        // min-one rule must still hand it an option.
        let shares = weighted_shares(&[1.0, 1e6], 100);
        assert_eq!(shares.iter().sum::<usize>(), 100);
        assert_eq!(shares[0], 1, "slow member still gets one option");
        assert_eq!(shares[1], 99);
    }

    #[test]
    fn fewer_options_than_members_feeds_the_fastest() {
        let shares = weighted_shares(&[5.0, 100.0, 50.0, 1.0], 2);
        assert_eq!(shares, vec![0, 1, 1, 0], "fastest two members get one each");
        // Through the cluster API as well: two members, one option.
        let c = cluster(48);
        let shares = c.split(1).expect("splits");
        assert_eq!(shares.iter().sum::<usize>(), 1);
        let runs = c.price(&[bop_finance::types::OptionParams::example()]).expect("prices");
        assert_eq!(runs.iter().map(|r| r.prices.len()).sum::<usize>(), 1);
    }

    #[test]
    fn degenerate_rates_fall_back_to_equal_shares() {
        assert_eq!(weighted_shares(&[0.0, 0.0, 0.0], 9), vec![3, 3, 3]);
        assert_eq!(weighted_shares(&[f64::NAN, f64::NAN], 4), vec![2, 2]);
        assert_eq!(weighted_shares(&[f64::INFINITY, f64::INFINITY], 2), vec![1, 1]);
        // A single sane rate takes everything the floor gives it, but the
        // degenerate member still gets its minimum one.
        assert_eq!(weighted_shares(&[0.0, 10.0], 5), vec![1, 4]);
    }

    #[test]
    fn shares_always_sum_to_the_batch_size() {
        // Property sweep across rate shapes and batch sizes, including
        // n_options < members and n_options == 0.
        let rate_sets: [&[f64]; 5] = [
            &[1.0],
            &[1.0, 2.0, 3.0],
            &[1e-9, 1e9],
            &[0.0, 5.0, f64::NAN, 5.0],
            &[7.0, 7.0, 7.0, 7.0, 7.0],
        ];
        for rates in rate_sets {
            for n in [0usize, 1, 2, 3, 7, 100, 1001] {
                let shares = weighted_shares(rates, n);
                assert_eq!(shares.len(), rates.len());
                assert_eq!(shares.iter().sum::<usize>(), n, "rates {rates:?} n {n} -> {shares:?}");
                if n >= rates.len() {
                    assert!(
                        shares.iter().all(|&s| s > 0),
                        "min-one violated: rates {rates:?} n {n} -> {shares:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn idle_members_still_count_toward_cluster_power() {
        // One option on a two-member cluster: one share is zero, yet the
        // projection's watts must cover both devices ("all devices
        // running").
        let c = cluster(48);
        let p = c.project(1).expect("projects");
        assert_eq!(p.shares.iter().sum::<usize>(), 1);
        let full_draw: f64 = c.members().iter().map(|a| a.report().power_watts).sum();
        assert!(
            (p.watts - full_draw).abs() < 1e-9,
            "cluster watts {} must equal all-device draw {}",
            p.watts,
            full_draw
        );
    }

    #[test]
    fn mismatched_members_rejected() {
        let a = Accelerator::builder(crate::devices::fpga())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(64)
            .build()
            .expect("builds");
        let b = Accelerator::builder(crate::devices::gpu())
            .arch(KernelArch::Optimized)
            .precision(Precision::Double)
            .n_steps(128)
            .build()
            .expect("builds");
        assert!(matches!(MultiAccelerator::new(vec![a, b]), Err(Error::Invalid(_))));
        assert!(matches!(MultiAccelerator::new(vec![]), Err(Error::Invalid(_))));
    }
}
