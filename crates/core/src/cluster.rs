//! Multi-accelerator batches — the paper's future-work direction
//! ("Future work will focus on other hardware architectures supporting the
//! OpenCL standard, so as to compare their performances to the FPGA
//! device") taken one step further: run one batch across several devices
//! at once, split proportionally to each accelerator's measured marginal
//! rate.

use crate::accelerator::{Accelerator, AcceleratorError, PricingRun};
use bop_finance::binomial::tree_nodes;
use bop_finance::types::OptionParams;

/// A set of accelerators pricing one batch cooperatively.
pub struct MultiAccelerator {
    accelerators: Vec<Accelerator>,
}

/// Projection of a cooperative batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProjection {
    /// Batch share given to each accelerator, in input order.
    pub shares: Vec<usize>,
    /// Per-accelerator batch time, seconds.
    pub device_times_s: Vec<f64>,
    /// Batch wall-clock (devices run concurrently): the slowest share.
    pub elapsed_s: f64,
    /// Combined throughput, options/s.
    pub options_per_s: f64,
    /// Combined power (all devices running), watts.
    pub watts: f64,
    /// Combined energy efficiency, options/J.
    pub options_per_j: f64,
    /// Combined node throughput, nodes/s.
    pub nodes_per_s: f64,
}

impl MultiAccelerator {
    /// Group accelerators into a cluster.
    ///
    /// # Errors
    /// Rejects empty clusters and mismatched lattice sizes or precisions
    /// (shares of one batch must be comparable).
    pub fn new(accelerators: Vec<Accelerator>) -> Result<MultiAccelerator, AcceleratorError> {
        if accelerators.is_empty() {
            return Err(AcceleratorError::Invalid("empty cluster".into()));
        }
        let n = accelerators[0].n_steps();
        let p = accelerators[0].precision();
        if accelerators.iter().any(|a| a.n_steps() != n || a.precision() != p) {
            return Err(AcceleratorError::Invalid(
                "cluster members must share lattice size and precision".into(),
            ));
        }
        Ok(MultiAccelerator { accelerators })
    }

    /// The member accelerators.
    pub fn members(&self) -> &[Accelerator] {
        &self.accelerators
    }

    /// Split `n_options` proportionally to each member's marginal rate
    /// (measured by projection on a probe batch). Every member gets at
    /// least one option while options remain; shares sum to `n_options`.
    ///
    /// # Errors
    /// Propagates projection failures.
    pub fn split(&self, n_options: usize) -> Result<Vec<usize>, AcceleratorError> {
        let rates: Vec<f64> = self
            .accelerators
            .iter()
            .map(|a| a.project(256).map(|p| p.options_per_s))
            .collect::<Result<_, _>>()?;
        let total_rate: f64 = rates.iter().sum();
        let mut shares: Vec<usize> =
            rates.iter().map(|r| ((r / total_rate) * n_options as f64).floor() as usize).collect();
        // Distribute the rounding remainder to the fastest members.
        let mut remainder = n_options - shares.iter().sum::<usize>();
        let mut order: Vec<usize> = (0..rates.len()).collect();
        order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).expect("finite rates"));
        for &i in order.iter().cycle().take(rates.len() * 2) {
            if remainder == 0 {
                break;
            }
            shares[i] += 1;
            remainder -= 1;
        }
        Ok(shares)
    }

    /// Project a cooperative batch: devices run their shares concurrently.
    ///
    /// # Errors
    /// Propagates projection failures.
    pub fn project(&self, n_options: usize) -> Result<ClusterProjection, AcceleratorError> {
        let shares = self.split(n_options)?;
        let mut device_times_s = Vec::with_capacity(shares.len());
        let mut watts = 0.0;
        for (acc, &share) in self.accelerators.iter().zip(&shares) {
            if share == 0 {
                device_times_s.push(0.0);
                continue;
            }
            let p = acc.project(share)?;
            device_times_s.push(p.elapsed_s);
            watts += p.watts;
        }
        let elapsed_s = device_times_s.iter().cloned().fold(0.0, f64::max);
        let options_per_s = n_options as f64 / elapsed_s;
        Ok(ClusterProjection {
            shares,
            device_times_s,
            elapsed_s,
            options_per_s,
            watts,
            options_per_j: options_per_s / watts,
            nodes_per_s: options_per_s * tree_nodes(self.accelerators[0].n_steps()) as f64,
        })
    }

    /// Price a batch functionally across the cluster, preserving input
    /// order.
    ///
    /// # Errors
    /// Propagates member failures.
    pub fn price(&self, options: &[OptionParams]) -> Result<Vec<PricingRun>, AcceleratorError> {
        if options.is_empty() {
            return Err(AcceleratorError::Invalid("empty batch".into()));
        }
        let shares = self.split(options.len())?;
        let mut runs = Vec::with_capacity(shares.len());
        let mut offset = 0;
        for (acc, &share) in self.accelerators.iter().zip(&shares) {
            if share == 0 {
                continue;
            }
            let slice = &options[offset..offset + share];
            runs.push(acc.price(slice)?);
            offset += share;
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelArch, Precision};

    fn cluster(n_steps: usize) -> MultiAccelerator {
        let fpga = Accelerator::new(
            crate::devices::fpga(),
            KernelArch::Optimized,
            Precision::Double,
            n_steps,
            None,
        )
        .expect("fpga builds");
        let gpu = Accelerator::new(
            crate::devices::gpu(),
            KernelArch::Optimized,
            Precision::Double,
            n_steps,
            None,
        )
        .expect("gpu builds");
        MultiAccelerator::new(vec![fpga, gpu]).expect("cluster")
    }

    #[test]
    fn shares_are_proportional_to_speed_and_sum() {
        let c = cluster(256);
        let shares = c.split(1000).expect("splits");
        assert_eq!(shares.iter().sum::<usize>(), 1000);
        // The GPU is several times faster: it must take the bigger share.
        assert!(shares[1] > shares[0], "GPU share {} vs FPGA {}", shares[1], shares[0]);
        assert!(shares[0] > 0, "but the FPGA still contributes");
    }

    #[test]
    fn cluster_beats_its_fastest_member() {
        let c = cluster(256);
        let combined = c.project(2000).expect("projects");
        let solo_rates: Vec<f64> =
            c.members().iter().map(|a| a.project(2000).expect("projects").options_per_s).collect();
        let best_solo = solo_rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            combined.options_per_s > best_solo,
            "cooperation must add throughput: {} vs best solo {}",
            combined.options_per_s,
            best_solo
        );
        // Shares are balanced: devices finish within ~25% of each other.
        let max_t = combined.device_times_s.iter().cloned().fold(0.0, f64::max);
        let min_t =
            combined.device_times_s.iter().cloned().filter(|t| *t > 0.0).fold(f64::MAX, f64::min);
        assert!(max_t / min_t < 1.3, "imbalanced shares: {:?}", combined.device_times_s);
    }

    #[test]
    fn cooperative_prices_match_solo_prices() {
        let c = cluster(48);
        let options = bop_finance::workload::volatility_curve(
            &bop_finance::workload::WorkloadConfig::default(),
            1.0,
            8,
            3,
        );
        let runs = c.price(&options).expect("prices");
        let all: Vec<f64> = runs.iter().flat_map(|r| r.prices.clone()).collect();
        assert_eq!(all.len(), options.len());
        for (price, option) in all.iter().zip(&options) {
            let reference = bop_finance::binomial::price_american_f64(option, 48);
            assert!((price - reference).abs() < 1e-3, "{price} vs {reference}");
        }
    }

    #[test]
    fn mismatched_members_rejected() {
        let a = Accelerator::new(
            crate::devices::fpga(),
            KernelArch::Optimized,
            Precision::Double,
            64,
            None,
        )
        .expect("builds");
        let b = Accelerator::new(
            crate::devices::gpu(),
            KernelArch::Optimized,
            Precision::Double,
            128,
            None,
        )
        .expect("builds");
        assert!(matches!(MultiAccelerator::new(vec![a, b]), Err(AcceleratorError::Invalid(_))));
        assert!(matches!(MultiAccelerator::new(vec![]), Err(AcceleratorError::Invalid(_))));
    }
}
