//! Option parameter types.

use std::fmt;

/// Call (right to buy) or put (right to sell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionKind {
    /// Right to buy at the strike.
    Call,
    /// Right to sell at the strike.
    Put,
}

impl OptionKind {
    /// The payoff sign `phi`: `+1` for calls, `-1` for puts, so the payoff
    /// is `max(phi (S - K), 0)`.
    pub fn phi(self) -> f64 {
        match self {
            OptionKind::Call => 1.0,
            OptionKind::Put => -1.0,
        }
    }
}

impl fmt::Display for OptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptionKind::Call => "call",
            OptionKind::Put => "put",
        })
    }
}

/// European (exercise at expiry) or American (exercise any time) — the
/// latter is what makes the problem lattice-shaped, per the paper's
/// Section III.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExerciseStyle {
    /// Exercisable only at expiry.
    European,
    /// Exercisable at any time up to expiry.
    American,
}

/// A vanilla option to price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionParams {
    /// Spot price of the underlying, `S0`.
    pub spot: f64,
    /// Strike price, `K`.
    pub strike: f64,
    /// Annualised volatility, `sigma`.
    pub volatility: f64,
    /// Continuously-compounded risk-free rate, `r`.
    pub rate: f64,
    /// Time to expiry in years, `T`.
    pub expiry: f64,
    /// Continuous dividend yield of the underlying, `q` (zero for the
    /// paper's workloads; early exercise of American calls only pays when
    /// this is positive).
    pub dividend_yield: f64,
    /// Call or put.
    pub kind: OptionKind,
    /// European or American.
    pub style: ExerciseStyle,
}

impl OptionParams {
    /// An at-the-money American call with textbook market parameters —
    /// handy as a starting point in examples and tests.
    pub fn example() -> OptionParams {
        OptionParams {
            spot: 100.0,
            strike: 100.0,
            volatility: 0.2,
            rate: 0.05,
            expiry: 1.0,
            dividend_yield: 0.0,
            kind: OptionKind::Call,
            style: ExerciseStyle::American,
        }
    }

    /// Validate that the parameters define a priceable option.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidOptionError> {
        let checks = [
            (self.spot > 0.0, "spot must be positive"),
            (self.strike > 0.0, "strike must be positive"),
            (self.volatility > 0.0, "volatility must be positive"),
            (self.expiry > 0.0, "expiry must be positive"),
            (self.rate.is_finite(), "rate must be finite"),
            (
                self.dividend_yield.is_finite() && self.dividend_yield >= 0.0,
                "dividend yield must be finite and non-negative",
            ),
            (self.spot.is_finite(), "spot must be finite"),
            (self.strike.is_finite(), "strike must be finite"),
            (self.volatility.is_finite(), "volatility must be finite"),
            (self.expiry.is_finite(), "expiry must be finite"),
        ];
        for (ok, msg) in checks {
            if !ok {
                return Err(InvalidOptionError { message: msg });
            }
        }
        Ok(())
    }

    /// Intrinsic value at the current spot.
    pub fn intrinsic(&self) -> f64 {
        (self.kind.phi() * (self.spot - self.strike)).max(0.0)
    }

    /// Log-moneyness `ln(K / S0)`.
    pub fn log_moneyness(&self) -> f64 {
        (self.strike / self.spot).ln()
    }
}

/// Parameter validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidOptionError {
    message: &'static str,
}

impl fmt::Display for InvalidOptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for InvalidOptionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_is_valid() {
        assert!(OptionParams::example().validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = OptionParams::example();
        p.volatility = 0.0;
        assert!(p.validate().is_err());
        let mut p = OptionParams::example();
        p.spot = -1.0;
        assert!(p.validate().is_err());
        let mut p = OptionParams::example();
        p.expiry = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn intrinsic_values() {
        let mut p = OptionParams::example();
        p.spot = 110.0;
        assert_eq!(p.intrinsic(), 10.0);
        p.kind = OptionKind::Put;
        assert_eq!(p.intrinsic(), 0.0);
        p.spot = 90.0;
        assert_eq!(p.intrinsic(), 10.0);
    }

    #[test]
    fn phi_signs() {
        assert_eq!(OptionKind::Call.phi(), 1.0);
        assert_eq!(OptionKind::Put.phi(), -1.0);
    }
}
