//! # bop-finance — option pricing mathematics and workloads
//!
//! The financial substrate of the DATE 2014 reproduction:
//!
//! * [`types`] — option parameter types;
//! * [`binomial`] — the Cox-Ross-Rubinstein lattice model the paper
//!   accelerates, in the exact recurrence form of the paper's Equation (1),
//!   for American and European calls and puts, in `f64` and `f32`;
//! * [`payoff`] — the exercise/knockout taxonomy of the market-risk
//!   workload suite (vanilla, barrier, Bermudan) and its reference pricer;
//! * [`greeks`] — lattice sensitivities: delta/gamma/theta read from the
//!   tree, vega/rho by bump-and-reprice, for any payoff;
//! * [`black_scholes`] — the analytical European price used to validate
//!   lattice convergence and to drive the implied-volatility use case;
//! * [`implied_vol`] — the solver behind the paper's motivating scenario
//!   (a trader extracting a 2000-point volatility curve per second);
//! * [`workload`] — synthetic market-data generators for that scenario;
//! * [`metrics`] — RMSE and friends, the accuracy columns of Table II.
//!
//! The native pricer here is the "reference software" of the paper's test
//! environment (Section V.A): every accelerator result is checked against
//! it, and the CPU row of Table II is built on its timing model in
//! `bop-cpu`.

#![warn(missing_docs)]

pub mod binomial;
pub mod black_scholes;
pub mod fixedpoint;
pub mod greeks;
pub mod implied_vol;
pub mod metrics;
pub mod montecarlo;
pub mod payoff;
pub mod rng;
pub mod types;
pub mod workload;

pub use binomial::{price_american_f32, price_american_f64, BinomialTree, CrrParams};
pub use black_scholes::{bs_delta, bs_gamma, bs_price, bs_rho, bs_theta, bs_vega};
pub use greeks::{lattice_greeks, lattice_greeks_payoff, Greeks};
pub use implied_vol::{bs_implied_volatility, implied_volatility};
pub use metrics::{max_abs_error, rmse};
pub use payoff::{price_payoff_f64, BarrierKind, Payoff};
pub use types::{ExerciseStyle, OptionKind, OptionParams};
