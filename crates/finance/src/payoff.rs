//! The payoff taxonomy of the market-risk workload suite.
//!
//! The paper prices vanilla European/American options; the risk-analysis
//! follow-on line (Klaisoongnoen et al., PAPERS.md) extends the same
//! lattice to the payoffs a trading desk actually quotes. [`Payoff`]
//! names the exercise/knockout rule independently of the market
//! parameters in [`OptionParams`], so one request type can carry any of
//! them through the serving stack:
//!
//! * [`Payoff::European`] / [`Payoff::American`] — the vanilla styles,
//!   bit-compatible with [`crate::binomial::price_american_f64`];
//! * [`Payoff::Barrier`] — knock-out options (up-and-out / down-and-out),
//!   monitored at every lattice node, European exercise, no rebate;
//! * [`Payoff::Bermudan`] — early exercise restricted to a periodic
//!   schedule of lattice dates (`exercise_every` steps). `exercise_every
//!   == 1` degenerates to American bit-for-bit.
//!
//! [`price_payoff_f64`] is the reference pricer for all four, mirroring
//! the rolling-recurrence structure of the vanilla reference so the
//! degenerate payoffs reproduce it exactly.

use crate::binomial::CrrParams;
use crate::types::{ExerciseStyle, OptionParams};
use std::fmt;

/// Direction of a knock-out barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierKind {
    /// Knocked out when the asset trades at or above the barrier level.
    UpAndOut,
    /// Knocked out when the asset trades at or below the barrier level.
    DownAndOut,
}

impl BarrierKind {
    /// Knock direction as the sign used by the device kernels: the option
    /// is knocked out at asset price `s` iff `direction() * (s - level)
    /// >= 0`.
    pub fn direction(self) -> f64 {
        match self {
            BarrierKind::UpAndOut => 1.0,
            BarrierKind::DownAndOut => -1.0,
        }
    }
}

impl fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BarrierKind::UpAndOut => "up-and-out",
            BarrierKind::DownAndOut => "down-and-out",
        })
    }
}

/// Exercise/knockout rule of an option, independent of its market
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payoff {
    /// Exercise only at expiry.
    European,
    /// Exercise at any lattice date.
    American,
    /// European exercise with a knock-out barrier monitored at every
    /// lattice node (no rebate).
    Barrier {
        /// Knock direction.
        kind: BarrierKind,
        /// Barrier level in asset-price units.
        level: f64,
    },
    /// Early exercise allowed only at lattice dates `t` with
    /// `t % exercise_every == 0` (expiry always pays off).
    Bermudan {
        /// Exercise-date spacing in lattice steps; `1` is American.
        exercise_every: usize,
    },
}

impl Payoff {
    /// The vanilla payoff equivalent to an [`ExerciseStyle`].
    pub fn from_style(style: ExerciseStyle) -> Payoff {
        match style {
            ExerciseStyle::European => Payoff::European,
            ExerciseStyle::American => Payoff::American,
        }
    }

    /// Short class label (`european` / `american` / `barrier` /
    /// `bermudan`) used for metric and trace labels and for batching:
    /// payoffs with the same label share a kernel and a parameter-block
    /// layout.
    pub fn label(self) -> &'static str {
        match self {
            Payoff::European => "european",
            Payoff::American => "american",
            Payoff::Barrier { .. } => "barrier",
            Payoff::Bermudan { .. } => "bermudan",
        }
    }

    /// Validate the payoff's own parameters.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidPayoffError> {
        match self {
            Payoff::European | Payoff::American => Ok(()),
            Payoff::Barrier { level, .. } => {
                if level.is_finite() && *level > 0.0 {
                    Ok(())
                } else {
                    Err(InvalidPayoffError { message: "barrier level must be finite and positive" })
                }
            }
            Payoff::Bermudan { exercise_every } => {
                if *exercise_every >= 1 {
                    Ok(())
                } else {
                    Err(InvalidPayoffError { message: "exercise_every must be at least 1" })
                }
            }
        }
    }
}

impl fmt::Display for Payoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payoff::European => f.write_str("european"),
            Payoff::American => f.write_str("american"),
            Payoff::Barrier { kind, level } => write!(f, "barrier {kind} @ {level}"),
            Payoff::Bermudan { exercise_every } => {
                write!(f, "bermudan every {exercise_every} steps")
            }
        }
    }
}

/// Payoff validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPayoffError {
    message: &'static str,
}

impl fmt::Display for InvalidPayoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for InvalidPayoffError {}

/// Value of one lattice node under `payoff`.
///
/// `exercise` is `max(phi (s - strike), 0)`; `cont` is the discounted
/// continuation value (`None` at the leaves, where the exercise value is
/// the node value for every payoff unless knocked out).
#[inline]
pub(crate) fn node_value(
    payoff: Payoff,
    t: usize,
    s: f64,
    exercise: f64,
    cont: Option<f64>,
) -> f64 {
    let knocked = match payoff {
        Payoff::Barrier { kind, level } => kind.direction() * (s - level) >= 0.0,
        _ => false,
    };
    if knocked {
        return 0.0;
    }
    match cont {
        None => exercise,
        Some(cont) => match payoff {
            Payoff::European | Payoff::Barrier { .. } => cont,
            Payoff::American => exercise.max(cont),
            Payoff::Bermudan { exercise_every } => {
                if t.is_multiple_of(exercise_every) {
                    exercise.max(cont)
                } else {
                    cont
                }
            }
        },
    }
}

/// Price `option` under `payoff` on an `n_steps` CRR lattice in `f64` —
/// the reference pricer for the payoff-aware accelerator kernels.
///
/// For [`Payoff::European`] and [`Payoff::American`] this is bit-identical
/// to [`crate::binomial::price_american_f64`] with the matching `style`
/// (the `style` field of `option` is ignored — the payoff wins). A
/// [`Payoff::Bermudan`] with `exercise_every == 1` is bit-identical to
/// [`Payoff::American`].
///
/// # Panics
/// Panics if `n_steps` is zero or the option or payoff is invalid.
pub fn price_payoff_f64(option: &OptionParams, payoff: Payoff, n_steps: usize) -> f64 {
    payoff.validate().expect("invalid payoff parameters");
    let c = CrrParams::from_option(option, n_steps);
    let phi = option.kind.phi();
    let n = n_steps;
    // Leaves: V(N,j) for j = 0..=N, S = S0 u^{2j-N}.
    let mut values: Vec<f64> = (0..=n)
        .map(|j| {
            let s = option.spot * c.u.powi(2 * j as i32 - n as i32);
            node_value(payoff, n, s, (phi * (s - option.strike)).max(0.0), None)
        })
        .collect();
    // Backward induction, same rolling-spot recurrence as the vanilla
    // reference so the degenerate payoffs reproduce it bit-for-bit.
    let mut s_low = option.spot * c.u.powi(-(n as i32));
    let u2 = c.u * c.u;
    for t in (0..n).rev() {
        s_low *= c.u; // S(t,0) from S(t+1,0)
        let mut s = s_low;
        for j in 0..=t {
            let cont = c.pd * values[j + 1] + c.qd * values[j];
            values[j] = node_value(payoff, t, s, (phi * (s - option.strike)).max(0.0), Some(cont));
            s *= u2;
        }
    }
    values[0]
}

pub(crate) use node_value as payoff_node_value;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::price_american_f64;
    use crate::black_scholes::bs_price;
    use crate::types::OptionKind;

    fn opt() -> OptionParams {
        OptionParams::example()
    }

    #[test]
    fn vanilla_payoffs_are_bit_identical_to_the_style_reference() {
        for n in [16, 64, 257] {
            let mut euro = opt();
            euro.style = ExerciseStyle::European;
            assert_eq!(
                price_payoff_f64(&opt(), Payoff::European, n).to_bits(),
                price_american_f64(&euro, n).to_bits(),
            );
            let mut amer = opt();
            amer.kind = OptionKind::Put;
            assert_eq!(
                price_payoff_f64(&amer, Payoff::American, n).to_bits(),
                price_american_f64(&amer, n).to_bits(),
            );
        }
    }

    #[test]
    fn bermudan_every_step_is_american_and_interpolates_between_styles() {
        let mut o = opt();
        o.kind = OptionKind::Put; // puts carry a real early-exercise premium
        let n = 240;
        let amer = price_payoff_f64(&o, Payoff::American, n);
        let euro = price_payoff_f64(&o, Payoff::European, n);
        let every_1 = price_payoff_f64(&o, Payoff::Bermudan { exercise_every: 1 }, n);
        assert_eq!(every_1.to_bits(), amer.to_bits(), "every-step Bermudan is American");
        let mut last = amer;
        for every in [4, 16, 60] {
            let v = price_payoff_f64(&o, Payoff::Bermudan { exercise_every: every }, n);
            assert!(v <= last + 1e-12, "coarser schedules are worth less: {v} vs {last}");
            assert!(v >= euro - 1e-12, "but never less than European");
            last = v;
        }
    }

    #[test]
    fn distant_barriers_degenerate_to_european() {
        let n = 128;
        let euro = price_payoff_f64(&opt(), Payoff::European, n);
        let far_up = Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 1e9 };
        let far_dn = Payoff::Barrier { kind: BarrierKind::DownAndOut, level: 1e-6 };
        assert_eq!(price_payoff_f64(&opt(), far_up, n).to_bits(), euro.to_bits());
        assert_eq!(price_payoff_f64(&opt(), far_dn, n).to_bits(), euro.to_bits());
    }

    #[test]
    fn knocked_out_spot_prices_to_zero_and_barriers_cost_value() {
        let n = 128;
        let up = Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 130.0 };
        let v = price_payoff_f64(&opt(), up, n);
        let euro = price_payoff_f64(&opt(), Payoff::European, n);
        assert!(v > 0.0 && v < euro, "a live barrier strictly cheapens the option: {v} < {euro}");

        let mut dead = opt();
        dead.spot = 135.0; // already beyond the barrier
        assert_eq!(price_payoff_f64(&dead, up, n), 0.0);
        let dn = Payoff::Barrier { kind: BarrierKind::DownAndOut, level: 140.0 };
        assert_eq!(price_payoff_f64(&opt(), dn, n), 0.0, "spot below a down barrier is dead");
    }

    #[test]
    fn down_and_out_call_approaches_the_closed_form() {
        // Reflection identity for a down-and-out call with H < K, q = 0:
        // C_do = C_bs(S) - (H/S)^{2 lambda - 2} C_bs(H^2/S) with
        // lambda = (r + sigma^2/2) / sigma^2. Discrete monitoring biases
        // the lattice price up (fewer knock chances) and the barrier sits
        // between lattice layers (O(sqrt(dt)) placement error), so
        // compare with a loose tolerance at a deep lattice.
        let mut o = opt();
        o.style = ExerciseStyle::European;
        let h = 85.0;
        let lambda = (o.rate + 0.5 * o.volatility * o.volatility) / (o.volatility * o.volatility);
        let mut reflected = o;
        reflected.spot = h * h / o.spot;
        let closed = bs_price(&o) - (h / o.spot).powf(2.0 * lambda - 2.0) * bs_price(&reflected);
        let lattice =
            price_payoff_f64(&o, Payoff::Barrier { kind: BarrierKind::DownAndOut, level: h }, 4096);
        assert!(
            (lattice - closed).abs() < 0.4,
            "lattice {lattice} vs closed-form {closed} down-and-out call"
        );
        assert!(lattice >= closed - 1e-9, "discrete monitoring never knocks more often");
    }

    #[test]
    fn payoff_validation_and_labels() {
        assert!(Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 0.0 }.validate().is_err());
        assert!(Payoff::Barrier { kind: BarrierKind::UpAndOut, level: f64::NAN }
            .validate()
            .is_err());
        assert!(Payoff::Bermudan { exercise_every: 0 }.validate().is_err());
        assert!(Payoff::Bermudan { exercise_every: 3 }.validate().is_ok());
        assert_eq!(Payoff::from_style(ExerciseStyle::American).label(), "american");
        assert_eq!(Payoff::from_style(ExerciseStyle::European).label(), "european");
        assert_eq!(
            Payoff::Barrier { kind: BarrierKind::DownAndOut, level: 90.0 }.label(),
            "barrier"
        );
        assert_eq!(Payoff::Bermudan { exercise_every: 4 }.label(), "bermudan");
        assert_eq!(BarrierKind::UpAndOut.direction(), 1.0);
        assert_eq!(BarrierKind::DownAndOut.direction(), -1.0);
    }
}
