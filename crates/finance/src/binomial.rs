//! The Cox-Ross-Rubinstein binomial lattice, in the recurrence form of the
//! paper's Equation (1).
//!
//! With `N` time steps of `dt = T/N`, the asset moves up by
//! `u = exp(sigma sqrt(dt))` or down by `d = 1/u` per step, with
//! risk-neutral up-probability `p = (exp(r dt) - d) / (u - d)`. Nodes are
//! indexed `(t, j)` with `j = 0..=t` and `S(t,j) = S0 u^{2j - t}`. The
//! option value is computed backward from the leaves:
//!
//! ```text
//! V(N,j) = max(phi (S(N,j) - K), 0)
//! V(t,j) = max(phi (S(t,j) - K),  pd V(t+1,j+1) + qd V(t+1,j))
//! ```
//!
//! where `pd = e^{-r dt} p` and `qd = e^{-r dt} (1 - p)` — the paper's
//! `r p` and `r q` pre-discounted probabilities. The European variant
//! omits the early-exercise max. This module is the reference software of
//! the paper's Section V.A, in `f64` and `f32`.

use crate::payoff::{payoff_node_value, Payoff};
use crate::types::{ExerciseStyle, OptionParams};

/// Precomputed lattice coefficients for one option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrrParams {
    /// Time step, years.
    pub dt: f64,
    /// Up factor `u = exp(sigma sqrt(dt))`.
    pub u: f64,
    /// Down factor `d = 1/u`.
    pub d: f64,
    /// Risk-neutral up probability `p`.
    pub p: f64,
    /// Per-step discount factor `exp(-r dt)`.
    pub discount: f64,
    /// Pre-discounted up weight `discount * p` (the paper's `r p`).
    pub pd: f64,
    /// Pre-discounted down weight `discount * (1 - p)` (the paper's `r q`).
    pub qd: f64,
}

impl CrrParams {
    /// Compute the coefficients for `option` on an `n_steps` lattice.
    ///
    /// # Panics
    /// Panics if `n_steps` is zero or the option is invalid; validate
    /// first with [`OptionParams::validate`].
    pub fn from_option(option: &OptionParams, n_steps: usize) -> CrrParams {
        assert!(n_steps > 0, "lattice needs at least one step");
        option.validate().expect("invalid option parameters");
        let dt = option.expiry / n_steps as f64;
        let u = (option.volatility * dt.sqrt()).exp();
        let d = 1.0 / u;
        let growth = ((option.rate - option.dividend_yield) * dt).exp();
        let p = (growth - d) / (u - d);
        let discount = (-option.rate * dt).exp();
        CrrParams { dt, u, d, p, discount, pd: discount * p, qd: discount * (1.0 - p) }
    }

    /// True when `0 <= p <= 1` — the lattice is arbitrage-free and the
    /// backward induction is a proper expectation. Violated only for
    /// extreme rate/volatility combinations at coarse steps.
    pub fn is_risk_neutral(&self) -> bool {
        (0.0..=1.0).contains(&self.p)
    }
}

/// Price `option` on an `n_steps` CRR lattice in `f64`.
///
/// This is the reference implementation every accelerator in the workspace
/// is validated against.
///
/// ```
/// use bop_finance::{binomial, OptionParams};
/// let price = binomial::price_american_f64(&OptionParams::example(), 512);
/// assert!((price - 10.45).abs() < 0.05); // ATM 1y call, sigma 20%, r 5%
/// ```
///
/// # Panics
/// Panics if `n_steps` is zero or the option is invalid.
pub fn price_american_f64(option: &OptionParams, n_steps: usize) -> f64 {
    let c = CrrParams::from_option(option, n_steps);
    let phi = option.kind.phi();
    let n = n_steps;
    // Leaves: V(N,j) for j = 0..=N, S = S0 u^{2j-N}.
    let mut values: Vec<f64> = (0..=n)
        .map(|j| {
            let s = option.spot * c.u.powi(2 * j as i32 - n as i32);
            (phi * (s - option.strike)).max(0.0)
        })
        .collect();
    // Backward induction.
    let american = option.style == ExerciseStyle::American;
    // S(t,0) = S0 u^{-t}; track it to avoid pow in the loop.
    let mut s_low = option.spot * c.u.powi(-(n as i32));
    let u2 = c.u * c.u;
    for t in (0..n).rev() {
        s_low *= c.u; // S(t,0) from S(t+1,0)
        let mut s = s_low;
        for j in 0..=t {
            let cont = c.pd * values[j + 1] + c.qd * values[j];
            values[j] = if american { (phi * (s - option.strike)).max(cont) } else { cont };
            s *= u2;
        }
    }
    values[0]
}

/// Price `option` on an `n_steps` CRR lattice entirely in `f32` — the
/// single-precision reference column of the paper's Table II.
///
/// # Panics
/// Panics if `n_steps` is zero or the option is invalid.
pub fn price_american_f32(option: &OptionParams, n_steps: usize) -> f32 {
    let c = CrrParams::from_option(option, n_steps);
    let phi = option.kind.phi() as f32;
    let (spot, strike) = (option.spot as f32, option.strike as f32);
    let (u, pd, qd) = (c.u as f32, c.pd as f32, c.qd as f32);
    let n = n_steps;
    let mut values: Vec<f32> = (0..=n)
        .map(|j| {
            let s = spot * u.powi(2 * j as i32 - n as i32);
            (phi * (s - strike)).max(0.0)
        })
        .collect();
    let american = option.style == ExerciseStyle::American;
    let mut s_low = spot * u.powi(-(n as i32));
    let u2 = u * u;
    for t in (0..n).rev() {
        s_low *= u;
        let mut s = s_low;
        for j in 0..=t {
            let cont = pd * values[j + 1] + qd * values[j];
            values[j] = if american { (phi * (s - strike)).max(cont) } else { cont };
            s *= u2;
        }
    }
    values[0]
}

/// Number of nodes updated when pricing one option on an `n`-step lattice:
/// `n (n + 1) / 2` — the "tree nodes" unit of the paper's Table II
/// throughput row.
pub fn tree_nodes(n_steps: usize) -> u64 {
    (n_steps as u64) * (n_steps as u64 + 1) / 2
}

/// A fully materialised lattice, for inspection and for regenerating the
/// paper's Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BinomialTree {
    n_steps: usize,
    /// `S(t,j)` by flat index `t (t + 1) / 2 + j`.
    asset: Vec<f64>,
    /// `V(t,j)` by the same flat index.
    value: Vec<f64>,
}

impl BinomialTree {
    /// Build the full tree for `option`, exercising per its `style`.
    ///
    /// # Panics
    /// Panics if `n_steps` is zero or the option is invalid.
    pub fn build(option: &OptionParams, n_steps: usize) -> BinomialTree {
        BinomialTree::build_payoff(option, Payoff::from_style(option.style), n_steps)
    }

    /// Build the full tree for `option` under an arbitrary [`Payoff`]
    /// (the option's `style` field is ignored — the payoff wins). For
    /// the vanilla payoffs this is bit-identical to
    /// [`BinomialTree::build`].
    ///
    /// # Panics
    /// Panics if `n_steps` is zero or the option or payoff is invalid.
    pub fn build_payoff(option: &OptionParams, payoff: Payoff, n_steps: usize) -> BinomialTree {
        payoff.validate().expect("invalid payoff parameters");
        let c = CrrParams::from_option(option, n_steps);
        let phi = option.kind.phi();
        let total = (n_steps + 1) * (n_steps + 2) / 2;
        let mut asset = vec![0.0; total];
        let mut value = vec![0.0; total];
        let flat = |t: usize, j: usize| t * (t + 1) / 2 + j;
        for t in (0..=n_steps).rev() {
            for j in 0..=t {
                let s = option.spot * c.u.powi(2 * j as i32 - t as i32);
                asset[flat(t, j)] = s;
                let exercise = (phi * (s - option.strike)).max(0.0);
                let cont = (t < n_steps)
                    .then(|| c.pd * value[flat(t + 1, j + 1)] + c.qd * value[flat(t + 1, j)]);
                value[flat(t, j)] = payoff_node_value(payoff, t, s, exercise, cont);
            }
        }
        BinomialTree { n_steps, asset, value }
    }

    /// Number of time steps.
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// Asset price at node `(t, j)`.
    ///
    /// # Panics
    /// Panics if `j > t` or `t > n_steps`.
    pub fn asset(&self, t: usize, j: usize) -> f64 {
        assert!(t <= self.n_steps && j <= t, "node ({t},{j}) outside the tree");
        self.asset[t * (t + 1) / 2 + j]
    }

    /// Option value at node `(t, j)`.
    ///
    /// # Panics
    /// Panics if `j > t` or `t > n_steps`.
    pub fn value(&self, t: usize, j: usize) -> f64 {
        assert!(t <= self.n_steps && j <= t, "node ({t},{j}) outside the tree");
        self.value[t * (t + 1) / 2 + j]
    }

    /// The option price (root value).
    pub fn price(&self) -> f64 {
        self.value[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::bs_price;
    use crate::types::{ExerciseStyle, OptionKind};

    #[test]
    fn crr_params_are_consistent() {
        let c = CrrParams::from_option(&OptionParams::example(), 1024);
        assert!((c.u * c.d - 1.0).abs() < 1e-14, "recombining: u d = 1");
        assert!(c.is_risk_neutral());
        assert!((c.pd + c.qd - c.discount).abs() < 1e-14);
        assert!(c.discount < 1.0);
    }

    #[test]
    fn european_converges_to_black_scholes() {
        let mut opt = OptionParams::example();
        opt.style = ExerciseStyle::European;
        let bs = bs_price(&opt);
        let mut last_err = f64::INFINITY;
        for n in [64, 256, 1024] {
            let err = (price_american_f64(&opt, n) - bs).abs();
            assert!(err < last_err * 1.2, "error should (roughly) shrink with n={n}");
            last_err = err;
        }
        assert!(last_err < 2e-3, "1024-step lattice within 0.2 cents of BS: {last_err}");
    }

    #[test]
    fn american_call_no_dividends_equals_european() {
        let mut amer = OptionParams::example();
        amer.kind = OptionKind::Call;
        let mut euro = amer;
        euro.style = ExerciseStyle::European;
        let pa = price_american_f64(&amer, 512);
        let pe = price_american_f64(&euro, 512);
        assert!((pa - pe).abs() < 1e-10, "no early exercise premium for calls: {pa} vs {pe}");
    }

    #[test]
    fn american_put_carries_early_exercise_premium() {
        let mut amer = OptionParams::example();
        amer.kind = OptionKind::Put;
        let mut euro = amer;
        euro.style = ExerciseStyle::European;
        let pa = price_american_f64(&amer, 512);
        let pe = price_american_f64(&euro, 512);
        assert!(pa > pe + 1e-4, "American put must exceed European: {pa} vs {pe}");
        // And never below intrinsic.
        assert!(pa >= amer.intrinsic());
    }

    #[test]
    fn deep_itm_put_is_worth_about_intrinsic() {
        let mut p = OptionParams::example();
        p.kind = OptionKind::Put;
        p.strike = 200.0;
        let price = price_american_f64(&p, 512);
        assert!(price >= 100.0 - 1e-9);
        assert!(price < 101.5);
    }

    #[test]
    fn f32_tracks_f64_loosely() {
        let opt = OptionParams::example();
        let p64 = price_american_f64(&opt, 256);
        let p32 = price_american_f32(&opt, 256) as f64;
        assert!((p64 - p32).abs() < 5e-3, "f32 drift too large: {p64} vs {p32}");
        assert!((p64 - p32).abs() > 0.0, "precisions should differ measurably");
    }

    #[test]
    fn tree_matches_flat_pricer_and_figure_one_shape() {
        let opt = OptionParams::example();
        let tree = BinomialTree::build(&opt, 16);
        assert!((tree.price() - price_american_f64(&opt, 16)).abs() < 1e-12);
        // Figure 1's structural claims: recombining, monotone S in j.
        assert!((tree.asset(2, 1) - opt.spot).abs() < 1e-12, "up-down returns to S0");
        for t in 0..=16 {
            for j in 1..=t {
                assert!(tree.asset(t, j) > tree.asset(t, j - 1));
            }
        }
        assert_eq!(tree.n_steps(), 16);
    }

    #[test]
    fn tree_node_count_formula() {
        assert_eq!(tree_nodes(1024), 524_800);
        assert_eq!(tree_nodes(2), 3);
    }

    #[test]
    fn price_increases_with_volatility_and_maturity() {
        let base = OptionParams::example();
        let p0 = price_american_f64(&base, 256);
        let mut high_vol = base;
        high_vol.volatility = 0.4;
        assert!(price_american_f64(&high_vol, 256) > p0);
        let mut long_t = base;
        long_t.expiry = 2.0;
        assert!(price_american_f64(&long_t, 256) > p0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = price_american_f64(&OptionParams::example(), 0);
    }
}
