//! Fixed-point lattice pricing — the "custom data types" the paper
//! deliberately left on the table.
//!
//! Section V.B: "Further gain in efficiency could be achieved by manual
//! fine tuning (i.e. custom data types), as seen in classic FPGA designs.
//! We chose not to do so as it would not yield significant enough benefits
//! compared with the necessary development time." This module implements
//! that ablation: the same CRR backward induction in signed fixed-point
//! arithmetic with a configurable number of fraction bits, so the
//! accuracy-vs-width trade-off the paper alludes to can be measured. On a
//! real FPGA a fixed-point multiplier costs a fraction of a double
//! multiplier (roughly 4 vs 13 DSP18 elements at 64-bit), which is exactly
//! the kind of saving the related work the paper cites ([9], [12])
//! exploits.

use crate::binomial::CrrParams;
use crate::types::{ExerciseStyle, OptionParams};

/// A signed fixed-point value with a runtime fraction width.
///
/// Arithmetic goes through `i128` intermediates, mirroring a DSP-block
/// multiplier with a wide accumulator and a final truncating shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i64,
    frac_bits: u32,
}

impl Fixed {
    /// Encode an `f64` (round-to-nearest).
    ///
    /// # Panics
    /// Panics if `frac_bits >= 63` or the value does not fit.
    pub fn from_f64(x: f64, frac_bits: u32) -> Fixed {
        assert!(frac_bits < 63, "fraction width too large");
        let scaled = x * (1u64 << frac_bits) as f64;
        assert!(
            scaled.abs() < i64::MAX as f64 / 2.0,
            "value {x} overflows Q{}.{frac_bits}",
            63 - frac_bits
        );
        Fixed { raw: scaled.round() as i64, frac_bits }
    }

    /// Decode back to `f64`.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Maximum.
    pub fn max(self, other: Fixed) -> Fixed {
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// The zero of this format.
    pub fn zero(frac_bits: u32) -> Fixed {
        Fixed { raw: 0, frac_bits }
    }
}

impl std::ops::Mul for Fixed {
    type Output = Fixed;

    /// Fixed-point multiply (truncating, like a hardware multiplier).
    ///
    /// # Panics
    /// Panics on mismatched fraction widths.
    fn mul(self, other: Fixed) -> Fixed {
        assert_eq!(self.frac_bits, other.frac_bits, "mixed fixed-point formats");
        let wide = self.raw as i128 * other.raw as i128;
        Fixed { raw: (wide >> self.frac_bits) as i64, frac_bits: self.frac_bits }
    }
}

impl std::ops::Add for Fixed {
    type Output = Fixed;

    /// Wrapping add (a hardware adder; debug builds overflow-check encode).
    ///
    /// # Panics
    /// Panics on mismatched fraction widths.
    fn add(self, other: Fixed) -> Fixed {
        assert_eq!(self.frac_bits, other.frac_bits, "mixed fixed-point formats");
        Fixed { raw: self.raw.wrapping_add(other.raw), frac_bits: self.frac_bits }
    }
}

impl std::ops::Sub for Fixed {
    type Output = Fixed;

    /// Wrapping subtract.
    ///
    /// # Panics
    /// Panics on mismatched fraction widths.
    fn sub(self, other: Fixed) -> Fixed {
        assert_eq!(self.frac_bits, other.frac_bits, "mixed fixed-point formats");
        Fixed { raw: self.raw.wrapping_sub(other.raw), frac_bits: self.frac_bits }
    }
}

/// Price `option` on an `n_steps` CRR lattice entirely in fixed point with
/// `frac_bits` fraction bits. Leaves are computed in `f64` on the "host"
/// and quantised (as kernel IV.A does); the backward induction — the part
/// that would live in FPGA fabric — runs in fixed point.
///
/// # Panics
/// Panics if `n_steps` is zero, the option is invalid, or the format
/// cannot represent the prices involved.
pub fn price_american_fixed(option: &OptionParams, n_steps: usize, frac_bits: u32) -> f64 {
    let c = CrrParams::from_option(option, n_steps);
    let phi = option.kind.phi();
    let n = n_steps;
    let fx = |x: f64| Fixed::from_f64(x, frac_bits);

    let pd = fx(c.pd);
    let qd = fx(c.qd);
    let u = fx(c.u);
    let strike = fx(option.strike);
    let american = option.style == ExerciseStyle::American;

    // Host-side leaves, quantised on entry.
    let mut values: Vec<Fixed> = (0..=n)
        .map(|j| {
            let s = option.spot * c.u.powi(2 * j as i32 - n as i32);
            fx((phi * (s - option.strike)).max(0.0))
        })
        .collect();
    // Track S(t,0) in fixed point too (one multiply per row, like the
    // kernels).
    let mut s_low = fx(option.spot * c.u.powi(-(n as i32)));
    let u2 = u * u;
    for t in (0..n).rev() {
        s_low = s_low * u;
        let mut s = s_low;
        for j in 0..=t {
            let cont = pd * values[j + 1] + qd * values[j];
            values[j] = if american {
                let ex = if phi > 0.0 { s - strike } else { strike - s };
                ex.max(cont)
            } else {
                cont
            };
            s = s * u2;
        }
    }
    values[0].to_f64()
}

/// One point of the precision sweep: fraction bits vs absolute error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointPoint {
    /// Fraction bits used.
    pub frac_bits: u32,
    /// Absolute price error against the `f64` reference.
    pub abs_error: f64,
}

/// Sweep fraction widths for one option, reporting the error curve the
/// paper's "custom data types" remark implies.
pub fn precision_sweep(
    option: &OptionParams,
    n_steps: usize,
    widths: &[u32],
) -> Vec<FixedPointPoint> {
    let reference = crate::binomial::price_american_f64(option, n_steps);
    widths
        .iter()
        .map(|&frac_bits| FixedPointPoint {
            frac_bits,
            abs_error: (price_american_fixed(option, n_steps, frac_bits) - reference).abs(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::price_american_f64;

    #[test]
    fn fixed_round_trips_and_multiplies() {
        let a = Fixed::from_f64(1.5, 32);
        assert_eq!(a.to_f64(), 1.5);
        let b = Fixed::from_f64(2.25, 32);
        assert_eq!((a * b).to_f64(), 3.375);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!((b - a).to_f64(), 0.75);
        assert_eq!(a.max(b), b);
        assert_eq!(Fixed::zero(32).to_f64(), 0.0);
    }

    #[test]
    fn wide_formats_match_the_double_reference() {
        let o = OptionParams::example();
        let n = 256;
        let reference = price_american_f64(&o, n);
        let fixed = price_american_fixed(&o, n, 44);
        assert!(
            (fixed - reference).abs() < 1e-6,
            "44 fraction bits should be plenty: {fixed} vs {reference}"
        );
    }

    #[test]
    fn error_shrinks_with_width() {
        let o = OptionParams::example();
        let sweep = precision_sweep(&o, 128, &[12, 16, 24, 32, 44]);
        for w in sweep.windows(2) {
            assert!(
                w[1].abs_error <= w[0].abs_error * 1.5 + 1e-12,
                "error should (roughly) shrink with width: {sweep:?}"
            );
        }
        assert!(sweep[0].abs_error > sweep.last().expect("nonempty").abs_error);
        // The narrow end is visibly wrong, the wide end visibly right.
        assert!(sweep[0].abs_error > 1e-3);
        assert!(sweep.last().expect("nonempty").abs_error < 1e-6);
    }

    #[test]
    fn american_floor_respected_in_fixed_point() {
        let mut o = OptionParams::example();
        o.kind = crate::types::OptionKind::Put;
        o.strike = 150.0;
        let p = price_american_fixed(&o, 128, 32);
        assert!(p >= o.intrinsic() - 1e-6, "never below intrinsic: {p}");
    }

    #[test]
    #[should_panic(expected = "fraction width too large")]
    fn oversized_format_rejected() {
        let _ = Fixed::from_f64(1.0, 63);
    }
}
