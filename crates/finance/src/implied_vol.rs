//! Implied-volatility inversion — the paper's motivating use case.
//!
//! "When a volatility curve of an option with a specific set of parameters
//! is known, a trader can replace the constant volatility used to model
//! the evolution of this option with the computed volatility" (paper,
//! Section I). Given a market price, this module recovers the volatility
//! that reproduces it under a pricing function — Newton's method with the
//! Black-Scholes vega as the slope estimate, bracketed by bisection for
//! robustness, generic over the pricer so it works with the analytical
//! model, the native lattice, or an accelerator.

use crate::black_scholes::{bs_price, bs_vega};
use crate::types::OptionParams;
use std::fmt;

/// Failure of the implied-volatility search.
#[derive(Debug, Clone, PartialEq)]
pub enum ImpliedVolError {
    /// The target price is below intrinsic or above the spot — no
    /// volatility can produce it.
    PriceOutOfRange {
        /// The unobtainable target.
        target: f64,
        /// Attainable range.
        bounds: (f64, f64),
    },
    /// The iteration failed to converge within the budget.
    NoConvergence {
        /// Last bracket width.
        width: f64,
    },
}

impl fmt::Display for ImpliedVolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImpliedVolError::PriceOutOfRange { target, bounds } => {
                write!(f, "price {target} outside attainable range [{}, {}]", bounds.0, bounds.1)
            }
            ImpliedVolError::NoConvergence { width } => {
                write!(f, "no convergence (bracket width {width})")
            }
        }
    }
}

impl std::error::Error for ImpliedVolError {}

/// Volatility search bounds.
const VOL_LO: f64 = 1e-4;
const VOL_HI: f64 = 4.0;
const TOLERANCE: f64 = 1e-9;
const MAX_ITERS: usize = 100;

/// Recover the volatility at which `pricer` reproduces `target_price` for
/// `option` (its `volatility` field is ignored).
///
/// `pricer` is any monotone-in-volatility pricing function — pass
/// `|o| bs_price(o)` for the analytical model, or an accelerator's batch
/// pricer for the paper's scenario.
///
/// ```
/// use bop_finance::{bs_price, implied_volatility, ExerciseStyle, OptionParams};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut option = OptionParams::example();
/// option.style = ExerciseStyle::European;
/// option.volatility = 0.3;
/// let market_price = bs_price(&option);
/// let recovered = implied_volatility(&option, market_price, |o| bs_price(o))?;
/// assert!((recovered - 0.3).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`ImpliedVolError`] when the target price is unattainable or
/// the search fails to converge.
pub fn implied_volatility<F>(
    option: &OptionParams,
    target_price: f64,
    mut pricer: F,
) -> Result<f64, ImpliedVolError>
where
    F: FnMut(&OptionParams) -> f64,
{
    let at = |vol: f64, pricer: &mut F| {
        let mut o = *option;
        o.volatility = vol;
        pricer(&o)
    };
    let hi_price = at(VOL_HI, &mut pricer);
    // Lattice pricers lose risk-neutrality below sigma^2 < r dt (the CRR
    // up-probability exceeds 1 and backward induction diverges); probe the
    // lower bracket upward until the pricer behaves.
    let mut lo = VOL_LO;
    let mut lo_price = at(lo, &mut pricer);
    while !(lo_price.is_finite() && lo_price <= hi_price) && lo < VOL_HI / 8.0 {
        lo *= 4.0;
        lo_price = at(lo, &mut pricer);
    }
    if target_price < lo_price - TOLERANCE || target_price > hi_price + TOLERANCE {
        return Err(ImpliedVolError::PriceOutOfRange {
            target: target_price,
            bounds: (lo_price, hi_price),
        });
    }

    let mut hi = VOL_HI;
    // Start Newton from the classic Brenner-Subrahmanyam seed.
    let mut vol = ((2.0 * std::f64::consts::PI / option.expiry).sqrt() * target_price
        / option.spot)
        .clamp(0.05, 1.0);
    for _ in 0..MAX_ITERS {
        let price = at(vol, &mut pricer);
        let diff = price - target_price;
        if diff.abs() < TOLERANCE {
            return Ok(vol);
        }
        if diff > 0.0 {
            hi = vol;
        } else {
            lo = vol;
        }
        // Newton step using the analytical vega as slope estimate (a good
        // preconditioner even when `pricer` is a lattice).
        let mut o = *option;
        o.volatility = vol;
        let vega = bs_vega(&o);
        let newton = if vega > 1e-12 { vol - diff / vega } else { f64::NAN };
        vol = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi) // bisection fallback
        };
        if hi - lo < 1e-12 {
            return Ok(vol);
        }
    }
    Err(ImpliedVolError::NoConvergence { width: hi - lo })
}

/// Convenience: implied volatility under the Black-Scholes model.
///
/// # Errors
/// See [`implied_volatility`].
pub fn bs_implied_volatility(
    option: &OptionParams,
    target_price: f64,
) -> Result<f64, ImpliedVolError> {
    implied_volatility(option, target_price, bs_price)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::price_american_f64;
    use crate::types::{ExerciseStyle, OptionKind};

    #[test]
    fn round_trip_through_black_scholes() {
        for true_vol in [0.08, 0.2, 0.55, 1.2] {
            let mut o = OptionParams::example();
            o.style = ExerciseStyle::European;
            o.volatility = true_vol;
            let price = bs_price(&o);
            let recovered = bs_implied_volatility(&o, price).expect("solves");
            assert!((recovered - true_vol).abs() < 1e-7, "vol {true_vol}: recovered {recovered}");
        }
    }

    #[test]
    fn round_trip_through_the_lattice() {
        let mut o = OptionParams::example();
        o.kind = OptionKind::Put;
        o.volatility = 0.3;
        let price = price_american_f64(&o, 256);
        let recovered =
            implied_volatility(&o, price, |opt| price_american_f64(opt, 256)).expect("solves");
        assert!((recovered - 0.3).abs() < 1e-6, "recovered {recovered}");
    }

    #[test]
    fn unattainable_price_is_rejected() {
        let o = OptionParams::example();
        let err = bs_implied_volatility(&o, 1e4).expect_err("too expensive");
        assert!(matches!(err, ImpliedVolError::PriceOutOfRange { .. }));
        let err = bs_implied_volatility(&o, -1.0).expect_err("negative");
        assert!(matches!(err, ImpliedVolError::PriceOutOfRange { .. }));
    }

    #[test]
    fn works_across_moneyness() {
        for strike in [60.0, 90.0, 100.0, 120.0, 180.0] {
            let mut o = OptionParams::example();
            o.style = ExerciseStyle::European;
            o.strike = strike;
            o.volatility = 0.25;
            let price = bs_price(&o);
            let recovered = bs_implied_volatility(&o, price).expect("solves");
            assert!((recovered - 0.25).abs() < 1e-6, "strike {strike}: {recovered}");
        }
    }
}
