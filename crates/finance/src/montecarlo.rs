//! Monte Carlo pricing — the method the paper's related work contrasts
//! with the binomial lattice.
//!
//! Section II: "The Monte Carlo method and its optimizations have been
//! extensively studied due to its massive parallelism ... However, the
//! acceleration factors that can be achieved are counterbalanced by the
//! slow convergence rate of this method." This module makes that argument
//! measurable: a GBM terminal-value sampler with antithetic variates for
//! European options. Note the honest form of the comparison: at equal
//! *work* both methods scale as `work^-1/2` (MC error ~ `paths^-1/2`;
//! lattice error ~ `1/steps` with `steps^2/2` node updates) — the
//! lattice's advantage on this low-dimensional problem is the constant:
//! measured here at roughly an order of magnitude in error at equal work
//! (i.e. ~50-100x less work for equal error), which is why the paper's
//! related work reserves Monte Carlo for "complex model evaluation or ...
//! problems with high dimensionality".
//!
//! (American options need regression-based MC — Longstaff-Schwartz — which
//! is exactly the "harder to implement efficiently" point; the comparison
//! here uses European options where both methods are straightforward.)

use crate::rng::SplitMix64;
use crate::types::OptionParams;

/// Result of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McResult {
    /// Price estimate.
    pub price: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// Paths drawn (after antithetic doubling).
    pub paths: usize,
}

/// Sample a standard normal via Box-Muller (no external distributions
/// crate needed).
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    let u1 = rng.next_f64_open0();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Price a **European** option by sampling the GBM terminal distribution
/// with antithetic variates. The `style` field of `option` is ignored.
///
/// # Panics
/// Panics if `pairs` is zero or the option is invalid.
pub fn price_european_mc(option: &OptionParams, pairs: usize, seed: u64) -> McResult {
    assert!(pairs > 0, "need at least one antithetic pair");
    option.validate().expect("invalid option parameters");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let drift = (option.rate - option.dividend_yield - 0.5 * option.volatility * option.volatility)
        * option.expiry;
    let vol_sqrt_t = option.volatility * option.expiry.sqrt();
    let discount = (-option.rate * option.expiry).exp();
    let phi = option.kind.phi();

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..pairs {
        let z = standard_normal(&mut rng);
        let payoff = |z: f64| {
            let s_t = option.spot * (drift + vol_sqrt_t * z).exp();
            (phi * (s_t - option.strike)).max(0.0)
        };
        // Antithetic pair averaged before accumulation (variance reduction).
        let sample = 0.5 * (payoff(z) + payoff(-z));
        sum += sample;
        sum_sq += sample * sample;
    }
    let n = pairs as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    McResult {
        price: discount * mean,
        std_error: discount * (variance / n).sqrt(),
        paths: pairs * 2,
    }
}

/// One point of the convergence comparison: equal "work" (node updates vs
/// path draws) for the two methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Work budget (lattice node updates = MC path draws).
    pub work: u64,
    /// Absolute lattice error vs Black-Scholes.
    pub lattice_error: f64,
    /// Absolute MC error vs Black-Scholes.
    pub mc_error: f64,
    /// MC standard error (the *expected* error scale).
    pub mc_std_error: f64,
}

/// Compare lattice vs Monte Carlo error at equal work on a European
/// option — the quantitative form of the paper's Section II argument.
///
/// # Panics
/// Panics if the option is invalid (must be European-priceable).
pub fn convergence_comparison(
    option: &OptionParams,
    budgets: &[u64],
    seed: u64,
) -> Vec<ConvergencePoint> {
    let mut euro = *option;
    euro.style = crate::types::ExerciseStyle::European;
    let analytic = crate::black_scholes::bs_price(&euro);
    budgets
        .iter()
        .map(|&work| {
            // Lattice with n(n+1)/2 = work  =>  n ~ sqrt(2 work).
            let n_steps = (((2 * work) as f64).sqrt() as usize).max(2);
            let lattice = crate::binomial::price_american_f64(&euro, n_steps);
            let mc = price_european_mc(&euro, (work / 2).max(1) as usize, seed);
            ConvergencePoint {
                work,
                lattice_error: (lattice - analytic).abs(),
                mc_error: (mc.price - analytic).abs(),
                mc_std_error: mc.std_error,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::bs_price;
    use crate::types::ExerciseStyle;

    fn euro() -> OptionParams {
        OptionParams { style: ExerciseStyle::European, ..OptionParams::example() }
    }

    #[test]
    fn mc_price_brackets_black_scholes() {
        let o = euro();
        let analytic = bs_price(&o);
        let r = price_european_mc(&o, 200_000, 42);
        assert!(
            (r.price - analytic).abs() < 4.0 * r.std_error + 1e-3,
            "MC {} +/- {} vs BS {analytic}",
            r.price,
            r.std_error
        );
        assert!(r.std_error > 0.0);
        assert_eq!(r.paths, 400_000);
    }

    #[test]
    fn std_error_shrinks_like_inverse_sqrt() {
        let o = euro();
        let small = price_european_mc(&o, 10_000, 7);
        let large = price_european_mc(&o, 160_000, 7);
        let ratio = small.std_error / large.std_error;
        assert!((2.5..6.0).contains(&ratio), "16x paths -> ~4x smaller std error, got {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let o = euro();
        let a = price_european_mc(&o, 1000, 3);
        let b = price_european_mc(&o, 1000, 3);
        let c = price_european_mc(&o, 1000, 4);
        assert_eq!(a, b);
        assert_ne!(a.price, c.price);
    }

    #[test]
    fn puts_work_too() {
        let mut o = euro();
        o.kind = crate::types::OptionKind::Put;
        let analytic = bs_price(&o);
        let r = price_european_mc(&o, 100_000, 11);
        assert!((r.price - analytic).abs() < 5.0 * r.std_error + 1e-3);
    }

    #[test]
    fn lattice_beats_mc_at_equal_work() {
        // The paper's Section II argument, measured: at the same work
        // budget the lattice error is far below the MC error for this
        // low-dimensional problem.
        let points = convergence_comparison(&euro(), &[10_000, 100_000, 1_000_000], 5);
        for p in &points {
            assert!(
                p.lattice_error < p.mc_std_error,
                "work {}: lattice {} should beat MC's expected error {}",
                p.work,
                p.lattice_error,
                p.mc_std_error
            );
        }
        // Both methods scale as ~work^-1/2 at equal work; the lattice's
        // advantage is the constant (roughly an order of magnitude in
        // error, i.e. ~50-100x in work-for-equal-error).
        let last = points.last().expect("points");
        assert!(
            last.mc_std_error / last.lattice_error.max(1e-12) > 3.0,
            "the lattice's constant advantage should be decisive at 1e6 work: {} vs {}",
            last.lattice_error,
            last.mc_std_error
        );
        // And the MC expected error indeed shrank ~10x over 100x work.
        let mc_gain = points[0].mc_std_error / last.mc_std_error.max(1e-12);
        assert!((5.0..20.0).contains(&mc_gain), "sqrt scaling: {mc_gain}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_paths_rejected() {
        let _ = price_european_mc(&euro(), 0, 0);
    }
}
