//! Black-Scholes analytical pricing for European options.
//!
//! Used to validate lattice convergence and as the model behind the
//! implied-volatility use case of the paper's introduction. The normal CDF
//! is implemented from scratch (series for small arguments, a rational
//! erfc approximation elsewhere, |error| < 2e-7 — far below the lattice
//! discretisation error it is compared against) since no external math
//! crates are used.

use crate::types::{OptionKind, OptionParams};

/// Standard normal cumulative distribution function.
///
/// Accuracy is better than 2e-7 absolute over the whole real line (exact
/// series for |x| < 0.7).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Complementary error function: exact series for small arguments, a
/// rational approximation in the tails (|abs err| < 1.2e-7).
// The nested Abramowitz-Stegun polynomial makes rustfmt's layout search
// effectively non-terminating; keep the hand formatting.
#[rustfmt::skip]
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    if z < 0.5 {
        return 1.0 - erf_small(x);
    }
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// Taylor/series erf for small arguments (|x| < 0.5), |err| < 1e-16.
fn erf_small(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for k in 1..30 {
        term *= -x2 / k as f64;
        let add = term / (2 * k + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// The Black-Scholes `d1`, `d2` pair.
fn d1_d2(o: &OptionParams) -> (f64, f64) {
    let sqrt_t = o.expiry.sqrt();
    let d1 = ((o.spot / o.strike).ln()
        + (o.rate - o.dividend_yield + 0.5 * o.volatility * o.volatility) * o.expiry)
        / (o.volatility * sqrt_t);
    (d1, d1 - o.volatility * sqrt_t)
}

/// Black-Scholes price of a **European** option with `option`'s
/// parameters. The `style` field is ignored (there is no closed form for
/// American options — that is the paper's whole premise).
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_price(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (d1, d2) = d1_d2(option);
    let df = (-option.rate * option.expiry).exp();
    let qf = (-option.dividend_yield * option.expiry).exp();
    match option.kind {
        OptionKind::Call => option.spot * qf * norm_cdf(d1) - option.strike * df * norm_cdf(d2),
        OptionKind::Put => option.strike * df * norm_cdf(-d2) - option.spot * qf * norm_cdf(-d1),
    }
}

/// Black-Scholes vega (price sensitivity to volatility), used by the
/// implied-volatility Newton iteration.
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_vega(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (d1, _) = d1_d2(option);
    option.spot
        * (-option.dividend_yield * option.expiry).exp()
        * norm_pdf(d1)
        * option.expiry.sqrt()
}

/// Black-Scholes delta `dV/dS` of a **European** option: `e^{-qT} N(d1)`
/// for calls, `e^{-qT} (N(d1) - 1)` for puts.
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_delta(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (d1, _) = d1_d2(option);
    let qf = (-option.dividend_yield * option.expiry).exp();
    match option.kind {
        OptionKind::Call => qf * norm_cdf(d1),
        OptionKind::Put => qf * (norm_cdf(d1) - 1.0),
    }
}

/// Black-Scholes gamma `d²V/dS²` (identical for calls and puts).
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_gamma(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (d1, _) = d1_d2(option);
    let qf = (-option.dividend_yield * option.expiry).exp();
    qf * norm_pdf(d1) / (option.spot * option.volatility * option.expiry.sqrt())
}

/// Black-Scholes theta `dV/dt` per year (negative for long vanilla
/// options away from deep-ITM puts).
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_theta(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (d1, d2) = d1_d2(option);
    let df = (-option.rate * option.expiry).exp();
    let qf = (-option.dividend_yield * option.expiry).exp();
    let decay = -qf * option.spot * norm_pdf(d1) * option.volatility / (2.0 * option.expiry.sqrt());
    match option.kind {
        OptionKind::Call => {
            decay - option.rate * option.strike * df * norm_cdf(d2)
                + option.dividend_yield * option.spot * qf * norm_cdf(d1)
        }
        OptionKind::Put => {
            decay + option.rate * option.strike * df * norm_cdf(-d2)
                - option.dividend_yield * option.spot * qf * norm_cdf(-d1)
        }
    }
}

/// Black-Scholes rho `dV/dr`: `K T e^{-rT} N(d2)` for calls,
/// `-K T e^{-rT} N(-d2)` for puts.
///
/// # Panics
/// Panics if the option parameters are invalid.
pub fn bs_rho(option: &OptionParams) -> f64 {
    option.validate().expect("invalid option parameters");
    let (_, d2) = d1_d2(option);
    let df = (-option.rate * option.expiry).exp();
    match option.kind {
        OptionKind::Call => option.strike * option.expiry * df * norm_cdf(d2),
        OptionKind::Put => -option.strike * option.expiry * df * norm_cdf(-d2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ExerciseStyle, OptionKind, OptionParams};

    #[test]
    fn norm_cdf_reference_points() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((norm_cdf(1.0) - 0.841344746068543).abs() < 1e-6);
        assert!((norm_cdf(-1.0) - 0.158655253931457).abs() < 1e-6);
        assert!((norm_cdf(2.0) - 0.977249868051821).abs() < 1e-6);
        assert!(norm_cdf(8.0) > 1.0 - 1e-14);
        assert!(norm_cdf(-8.0) < 1e-14);
    }

    #[test]
    fn norm_cdf_is_monotone_and_symmetric() {
        let mut last = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = norm_cdf(x);
            assert!(v >= last - 1e-12);
            assert!((v + norm_cdf(-x) - 1.0).abs() < 1e-9, "symmetry at {x}");
            last = v;
            x += 0.05;
        }
    }

    #[test]
    fn textbook_call_price() {
        // Hull's classic example: S=42, K=40, r=0.1, sigma=0.2, T=0.5.
        let o = OptionParams {
            spot: 42.0,
            strike: 40.0,
            volatility: 0.2,
            rate: 0.1,
            expiry: 0.5,
            dividend_yield: 0.0,
            kind: OptionKind::Call,
            style: ExerciseStyle::European,
        };
        assert!((bs_price(&o) - 4.759).abs() < 2e-3, "got {}", bs_price(&o));
        let put = OptionParams { kind: OptionKind::Put, ..o };
        assert!((bs_price(&put) - 0.808).abs() < 2e-3, "got {}", bs_price(&put));
    }

    #[test]
    fn put_call_parity() {
        let call = OptionParams::example();
        let put = OptionParams { kind: OptionKind::Put, ..call };
        let lhs = bs_price(&call) - bs_price(&put);
        let rhs = call.spot - call.strike * (-call.rate * call.expiry).exp();
        assert!((lhs - rhs).abs() < 1e-9, "parity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn vega_is_positive_and_peaks_near_the_money() {
        let atm = OptionParams::example();
        let mut otm = atm;
        otm.strike = 160.0;
        assert!(bs_vega(&atm) > 0.0);
        assert!(bs_vega(&atm) > bs_vega(&otm));
    }

    #[test]
    fn closed_form_greeks_match_central_differences() {
        let o = OptionParams { style: ExerciseStyle::European, ..OptionParams::example() };
        let put = OptionParams { kind: OptionKind::Put, ..o };
        let h = 1e-5;
        for o in [o, put] {
            let bump = |f: &dyn Fn(&mut OptionParams, f64)| {
                let mut up = o;
                f(&mut up, h);
                let mut dn = o;
                f(&mut dn, -h);
                (bs_price(&up) - bs_price(&dn)) / (2.0 * h)
            };
            assert!((bs_delta(&o) - bump(&|p, e| p.spot += e)).abs() < 1e-6);
            assert!((bs_rho(&o) - bump(&|p, e| p.rate += e)).abs() < 1e-5);
            // Theta is -dV/dT (value decays as calendar time passes).
            assert!((bs_theta(&o) + bump(&|p, e| p.expiry += e)).abs() < 1e-5);
            let delta_slope = {
                let mut up = o;
                up.spot += h;
                let mut dn = o;
                dn.spot -= h;
                (bs_delta(&up) - bs_delta(&dn)) / (2.0 * h)
            };
            assert!((bs_gamma(&o) - delta_slope).abs() < 1e-6);
        }
    }

    #[test]
    fn greek_signs_are_textbook() {
        let call = OptionParams { style: ExerciseStyle::European, ..OptionParams::example() };
        let put = OptionParams { kind: OptionKind::Put, ..call };
        assert!(bs_delta(&call) > 0.0 && bs_delta(&call) < 1.0);
        assert!(bs_delta(&put) < 0.0 && bs_delta(&put) > -1.0);
        assert!(bs_gamma(&call) > 0.0);
        assert!((bs_gamma(&call) - bs_gamma(&put)).abs() < 1e-12, "gamma is kind-free");
        assert!(bs_theta(&call) < 0.0);
        assert!(bs_rho(&call) > 0.0);
        assert!(bs_rho(&put) < 0.0);
    }
}
