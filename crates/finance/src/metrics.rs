//! Accuracy metrics — the RMSE column of the paper's Table II.

/// Root-mean-square error between `got` and `reference`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(got: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(got.len(), reference.len(), "rmse over mismatched lengths");
    assert!(!got.is_empty(), "rmse of an empty set");
    let sum: f64 = got.iter().zip(reference).map(|(a, b)| (a - b) * (a - b)).sum();
    (sum / got.len() as f64).sqrt()
}

/// Largest absolute error between `got` and `reference`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn max_abs_error(got: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(got.len(), reference.len(), "max error over mismatched lengths");
    assert!(!got.is_empty(), "max error of an empty set");
    got.iter().zip(reference).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

/// Mean absolute error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_abs_error(got: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(got.len(), reference.len(), "mean error over mismatched lengths");
    assert!(!got.is_empty(), "mean error of an empty set");
    got.iter().zip(reference).map(|(a, b)| (a - b).abs()).sum::<f64>() / got.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_inputs() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(max_abs_error(&v, &v), 0.0);
        assert_eq!(mean_abs_error(&v, &v), 0.0);
    }

    #[test]
    fn known_values() {
        let got = [1.0, 2.0, 3.0, 4.0];
        let reference = [1.0, 2.0, 3.0, 2.0]; // single error of 2
        assert!((rmse(&got, &reference) - 1.0).abs() < 1e-12);
        assert_eq!(max_abs_error(&got, &reference), 2.0);
        assert_eq!(mean_abs_error(&got, &reference), 0.5);
    }

    #[test]
    fn rmse_dominated_by_outliers_vs_mean() {
        let got = [0.0, 0.0, 0.0, 10.0];
        let reference = [0.0; 4];
        assert!(rmse(&got, &reference) > mean_abs_error(&got, &reference));
        assert!(rmse(&got, &reference) <= max_abs_error(&got, &reference));
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
