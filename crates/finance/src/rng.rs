//! A small deterministic pseudo-random generator for workload synthesis
//! and Monte Carlo sampling.
//!
//! The workspace builds offline with no registry dependencies, so instead
//! of the `rand` crate this module provides the one thing the repo needs:
//! a seedable, reproducible stream of uniform doubles. The generator is
//! SplitMix64 (Steele, Lea & Flood, *Fast splittable pseudorandom number
//! generators*, OOPSLA 2014) — a 64-bit state avalanche mixer with
//! equidistributed outputs, period 2^64, and no correlations detectable at
//! the sample counts used here. Statistical quality is far beyond what
//! jittered strike ladders and antithetic GBM sampling require.

/// A seedable SplitMix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Every seed yields an independent,
    /// reproducible stream.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` with 53 bits of mantissa entropy.
    pub fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard uniform-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform double in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform double in the open interval `(0, 1]` — safe to pass to
    /// `ln` (Box-Muller needs a strictly positive argument).
    pub fn next_f64_open0(&mut self) -> f64 {
        1.0 - self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_stays_in_range_and_fills_it() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut lo_seen = f64::MAX;
        let mut hi_seen = f64::MIN;
        for _ in 0..10_000 {
            let x = rng.uniform(-0.25, 0.75);
            assert!((-0.25..0.75).contains(&x));
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
        }
        assert!(lo_seen < -0.2, "lower quarter reached: {lo_seen}");
        assert!(hi_seen > 0.7, "upper edge reached: {hi_seen}");
    }

    #[test]
    fn mean_and_variance_look_uniform() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn open0_never_returns_zero_shape() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64_open0();
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn empty_range_rejected() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = rng.uniform(1.0, 1.0);
    }
}
