//! Option sensitivities (Greeks) from the binomial lattice.
//!
//! An extension beyond the paper (its use case stops at prices and implied
//! volatilities), but the natural next thing a trader computes from the
//! same tree: delta, gamma and theta fall out of the first lattice levels
//! for free (no extra pricing runs), while vega and rho use symmetric
//! parameter bumps.

use crate::binomial::{price_american_f64, BinomialTree};
use crate::types::OptionParams;

/// First- and second-order sensitivities of an option price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Greeks {
    /// Price, for reference.
    pub price: f64,
    /// dV/dS.
    pub delta: f64,
    /// d²V/dS².
    pub gamma: f64,
    /// dV/dt (per year; negative for long options).
    pub theta: f64,
    /// dV/dsigma (per unit of volatility).
    pub vega: f64,
    /// dV/dr (per unit of rate).
    pub rho: f64,
}

/// Relative bump used for vega/rho finite differences.
const BUMP: f64 = 1e-4;

/// Compute the Greeks of `option` on an `n_steps` lattice.
///
/// Delta, gamma and theta come from the tree itself (the standard
/// lattice estimators using nodes (1,·) and (2,·)); vega and rho are
/// central finite differences with re-pricing.
///
/// # Panics
/// Panics if `n_steps < 2` or the option is invalid.
pub fn lattice_greeks(option: &OptionParams, n_steps: usize) -> Greeks {
    assert!(n_steps >= 2, "greeks need at least two lattice steps");
    let tree = BinomialTree::build(option, n_steps);
    let dt = option.expiry / n_steps as f64;

    let (s_up, s_dn) = (tree.asset(1, 1), tree.asset(1, 0));
    let (v_up, v_dn) = (tree.value(1, 1), tree.value(1, 0));
    let delta = (v_up - v_dn) / (s_up - s_dn);

    // Gamma from the three nodes at t = 2.
    let (s_uu, s_ud, s_dd) = (tree.asset(2, 2), tree.asset(2, 1), tree.asset(2, 0));
    let (v_uu, v_ud, v_dd) = (tree.value(2, 2), tree.value(2, 1), tree.value(2, 0));
    let d_up = (v_uu - v_ud) / (s_uu - s_ud);
    let d_dn = (v_ud - v_dd) / (s_ud - s_dd);
    let gamma = (d_up - d_dn) / (0.5 * (s_uu - s_dd));

    // Theta: V(2,1) sits at the initial spot, two steps of calendar time
    // later (the recombining-tree trick).
    let theta = (v_ud - tree.price()) / (2.0 * dt);

    // Vega and rho by symmetric bumps.
    let bump_price = |f: &dyn Fn(&mut OptionParams, f64)| {
        let mut up = *option;
        f(&mut up, BUMP);
        let mut dn = *option;
        f(&mut dn, -BUMP);
        (price_american_f64(&up, n_steps) - price_american_f64(&dn, n_steps)) / (2.0 * BUMP)
    };
    let vega = bump_price(&|o, h| o.volatility += h);
    let rho = bump_price(&|o, h| o.rate += h);

    Greeks { price: tree.price(), delta, gamma, theta, vega, rho }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::{bs_price, bs_vega};
    use crate::types::{ExerciseStyle, OptionKind};

    fn european_example() -> OptionParams {
        OptionParams { style: ExerciseStyle::European, ..OptionParams::example() }
    }

    #[test]
    fn delta_bounds_and_signs() {
        let n = 512;
        let call = lattice_greeks(&OptionParams::example(), n);
        assert!((0.0..=1.0).contains(&call.delta), "call delta in [0,1]: {}", call.delta);
        let mut put = OptionParams::example();
        put.kind = OptionKind::Put;
        let put_greeks = lattice_greeks(&put, n);
        assert!((-1.0..=0.0).contains(&put_greeks.delta), "put delta in [-1,0]");
        assert!(call.gamma > 0.0, "long options are convex");
        assert!(put_greeks.gamma > 0.0);
        assert!(call.theta < 0.0, "time decay");
        assert!(call.vega > 0.0);
        assert!(call.rho > 0.0, "call rho positive");
        assert!(put_greeks.rho < 0.0, "American put rho negative");
    }

    #[test]
    fn european_greeks_match_black_scholes() {
        let o = european_example();
        let n = 1024;
        let g = lattice_greeks(&o, n);
        // Analytic BS delta for a call: e^{-qT} N(d1).
        let eps = 1e-4;
        let mut up = o;
        up.spot += eps;
        let mut dn = o;
        dn.spot -= eps;
        let bs_delta = (bs_price(&up) - bs_price(&dn)) / (2.0 * eps);
        assert!((g.delta - bs_delta).abs() < 5e-3, "{} vs {}", g.delta, bs_delta);
        assert!((g.vega - bs_vega(&o)).abs() < 0.2, "{} vs {}", g.vega, bs_vega(&o));
    }

    #[test]
    fn deep_itm_call_delta_approaches_one() {
        let mut o = OptionParams::example();
        o.strike = 40.0;
        let g = lattice_greeks(&o, 256);
        assert!(g.delta > 0.97, "deep ITM delta: {}", g.delta);
        assert!(g.gamma.abs() < 0.01, "deep ITM gamma vanishes");
    }

    #[test]
    fn dividends_create_early_exercise_premium_for_calls() {
        // Without dividends an American call is European; with a fat
        // dividend yield, early exercise gains value.
        let mut with_div = OptionParams::example();
        with_div.dividend_yield = 0.08;
        let mut euro = with_div;
        euro.style = ExerciseStyle::European;
        let amer_price = price_american_f64(&with_div, 512);
        let euro_price = price_american_f64(&euro, 512);
        assert!(
            amer_price > euro_price + 1e-4,
            "dividends make American calls worth more: {amer_price} vs {euro_price}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_steps_panics() {
        let _ = lattice_greeks(&OptionParams::example(), 1);
    }
}
