//! Option sensitivities (Greeks) from the binomial lattice.
//!
//! An extension beyond the paper (its use case stops at prices and implied
//! volatilities), but the natural next thing a trader computes from the
//! same tree: delta, gamma and theta fall out of the first lattice levels
//! for free (no extra pricing runs), while vega and rho use symmetric
//! parameter bumps. The bump scenarios are public so the accelerator's
//! bump-and-reprice path ([`bump_scenarios`]) prices exactly the same
//! perturbed options as the software reference, and every estimator works
//! for any [`Payoff`], not just the vanilla styles.

use crate::binomial::BinomialTree;
use crate::payoff::{price_payoff_f64, Payoff};
use crate::types::OptionParams;

/// First- and second-order sensitivities of an option price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Greeks {
    /// Price, for reference.
    pub price: f64,
    /// dV/dS.
    pub delta: f64,
    /// d²V/dS².
    pub gamma: f64,
    /// dV/dt (per year; negative for long options).
    pub theta: f64,
    /// dV/dsigma (per unit of volatility).
    pub vega: f64,
    /// dV/dr (per unit of rate).
    pub rho: f64,
}

/// Absolute bump used for the vega/rho finite differences — shared by the
/// software reference and the accelerator bump-and-reprice path so both
/// price the identical perturbed options.
pub const VEGA_RHO_BUMP: f64 = 1e-4;

/// The four bumped scenarios behind vega and rho, in the fixed order
/// `[vol+, vol-, rate+, rate-]`. [`assemble_greeks`] consumes prices for
/// these scenarios in the same order.
pub fn bump_scenarios(option: &OptionParams) -> [OptionParams; 4] {
    let mut vol_up = *option;
    vol_up.volatility += VEGA_RHO_BUMP;
    let mut vol_dn = *option;
    vol_dn.volatility -= VEGA_RHO_BUMP;
    let mut rate_up = *option;
    rate_up.rate += VEGA_RHO_BUMP;
    let mut rate_dn = *option;
    rate_dn.rate -= VEGA_RHO_BUMP;
    [vol_up, vol_dn, rate_up, rate_dn]
}

/// Delta, gamma and theta read directly from the first levels of a built
/// lattice (the standard estimators using nodes `(1,·)` and `(2,·)`).
///
/// # Panics
/// Panics if the tree has fewer than two steps.
pub fn tree_greeks(tree: &BinomialTree, dt: f64) -> (f64, f64, f64) {
    assert!(tree.n_steps() >= 2, "greeks need at least two lattice steps");
    let (s_up, s_dn) = (tree.asset(1, 1), tree.asset(1, 0));
    let (v_up, v_dn) = (tree.value(1, 1), tree.value(1, 0));
    let delta = (v_up - v_dn) / (s_up - s_dn);

    // Gamma from the three nodes at t = 2.
    let (s_uu, s_ud, s_dd) = (tree.asset(2, 2), tree.asset(2, 1), tree.asset(2, 0));
    let (v_uu, v_ud, v_dd) = (tree.value(2, 2), tree.value(2, 1), tree.value(2, 0));
    let d_up = (v_uu - v_ud) / (s_uu - s_ud);
    let d_dn = (v_ud - v_dd) / (s_ud - s_dd);
    let gamma = (d_up - d_dn) / (0.5 * (s_uu - s_dd));

    // Theta: V(2,1) sits at the initial spot, two steps of calendar time
    // later (the recombining-tree trick).
    let theta = (v_ud - tree.price()) / (2.0 * dt);
    (delta, gamma, theta)
}

/// Combine tree-read delta/gamma/theta with externally priced bump
/// scenarios into a full [`Greeks`].
///
/// `price` is the base price to report (e.g. the accelerator's);
/// `bumped` are the prices of [`bump_scenarios`] in their fixed order.
/// This is how the serving layer assembles Greeks: the first-order spot
/// and time sensitivities come from the host-side lattice, vega and rho
/// from bump-and-reprice batches on the device.
///
/// # Panics
/// Panics if the tree has fewer than two steps.
pub fn assemble_greeks(price: f64, tree: &BinomialTree, dt: f64, bumped: [f64; 4]) -> Greeks {
    let (delta, gamma, theta) = tree_greeks(tree, dt);
    let [vol_up, vol_dn, rate_up, rate_dn] = bumped;
    Greeks {
        price,
        delta,
        gamma,
        theta,
        vega: (vol_up - vol_dn) / (2.0 * VEGA_RHO_BUMP),
        rho: (rate_up - rate_dn) / (2.0 * VEGA_RHO_BUMP),
    }
}

/// Compute the Greeks of `option` on an `n_steps` lattice, exercising
/// per the option's `style`.
///
/// Delta, gamma and theta come from the tree itself (the standard
/// lattice estimators using nodes (1,·) and (2,·)); vega and rho are
/// central finite differences with re-pricing.
///
/// # Panics
/// Panics if `n_steps < 2` or the option is invalid.
pub fn lattice_greeks(option: &OptionParams, n_steps: usize) -> Greeks {
    lattice_greeks_payoff(option, Payoff::from_style(option.style), n_steps)
}

/// Compute the Greeks of `option` under an arbitrary [`Payoff`] on an
/// `n_steps` lattice (the option's `style` field is ignored). For the
/// vanilla payoffs this is bit-identical to [`lattice_greeks`].
///
/// # Panics
/// Panics if `n_steps < 2` or the option or payoff is invalid.
pub fn lattice_greeks_payoff(option: &OptionParams, payoff: Payoff, n_steps: usize) -> Greeks {
    assert!(n_steps >= 2, "greeks need at least two lattice steps");
    let tree = BinomialTree::build_payoff(option, payoff, n_steps);
    let dt = option.expiry / n_steps as f64;
    let bumped = bump_scenarios(option).map(|o| price_payoff_f64(&o, payoff, n_steps));
    assemble_greeks(tree.price(), &tree, dt, bumped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::black_scholes::{bs_price, bs_vega};
    use crate::payoff::BarrierKind;
    use crate::types::{ExerciseStyle, OptionKind};

    fn european_example() -> OptionParams {
        OptionParams { style: ExerciseStyle::European, ..OptionParams::example() }
    }

    #[test]
    fn delta_bounds_and_signs() {
        let n = 512;
        let call = lattice_greeks(&OptionParams::example(), n);
        assert!((0.0..=1.0).contains(&call.delta), "call delta in [0,1]: {}", call.delta);
        let mut put = OptionParams::example();
        put.kind = OptionKind::Put;
        let put_greeks = lattice_greeks(&put, n);
        assert!((-1.0..=0.0).contains(&put_greeks.delta), "put delta in [-1,0]");
        assert!(call.gamma > 0.0, "long options are convex");
        assert!(put_greeks.gamma > 0.0);
        assert!(call.theta < 0.0, "time decay");
        assert!(call.vega > 0.0);
        assert!(call.rho > 0.0, "call rho positive");
        assert!(put_greeks.rho < 0.0, "American put rho negative");
    }

    #[test]
    fn european_greeks_match_black_scholes() {
        let o = european_example();
        let n = 1024;
        let g = lattice_greeks(&o, n);
        // Analytic BS delta for a call: e^{-qT} N(d1).
        let eps = 1e-4;
        let mut up = o;
        up.spot += eps;
        let mut dn = o;
        dn.spot -= eps;
        let bs_delta = (bs_price(&up) - bs_price(&dn)) / (2.0 * eps);
        assert!((g.delta - bs_delta).abs() < 5e-3, "{} vs {}", g.delta, bs_delta);
        assert!((g.vega - bs_vega(&o)).abs() < 0.2, "{} vs {}", g.vega, bs_vega(&o));
    }

    #[test]
    fn payoff_greeks_reduce_to_style_greeks_bit_for_bit() {
        let n = 96;
        let amer = OptionParams::example();
        let via_style = lattice_greeks(&amer, n);
        let via_payoff = lattice_greeks_payoff(&amer, Payoff::American, n);
        assert_eq!(via_style, via_payoff);
        let euro = european_example();
        assert_eq!(lattice_greeks(&euro, n), lattice_greeks_payoff(&euro, Payoff::European, n));
    }

    #[test]
    fn assemble_greeks_matches_the_one_shot_path() {
        let o = OptionParams::example();
        let payoff = Payoff::Bermudan { exercise_every: 4 };
        let n = 64;
        let direct = lattice_greeks_payoff(&o, payoff, n);
        let tree = BinomialTree::build_payoff(&o, payoff, n);
        let bumped = bump_scenarios(&o).map(|b| price_payoff_f64(&b, payoff, n));
        let assembled = assemble_greeks(tree.price(), &tree, o.expiry / n as f64, bumped);
        assert_eq!(direct, assembled);
    }

    #[test]
    fn barrier_greeks_are_finite_and_the_barrier_dampens_vega() {
        let up_out = Payoff::Barrier { kind: BarrierKind::UpAndOut, level: 125.0 };
        let g = lattice_greeks_payoff(&OptionParams::example(), up_out, 256);
        for v in [g.price, g.delta, g.gamma, g.theta, g.vega, g.rho] {
            assert!(v.is_finite());
        }
        // The knock-out cap eats most of the volatility upside. (The
        // sign itself is unpinned: small vol bumps move the lattice
        // layers across the barrier, so barrier vega on a lattice has a
        // sawtooth component.)
        let vanilla = lattice_greeks_payoff(&OptionParams::example(), Payoff::European, 256);
        assert!(g.vega < 0.5 * vanilla.vega, "{} vs vanilla {}", g.vega, vanilla.vega);
        assert!(g.price > 0.0 && g.price < vanilla.price);
    }

    #[test]
    fn deep_itm_call_delta_approaches_one() {
        let mut o = OptionParams::example();
        o.strike = 40.0;
        let g = lattice_greeks(&o, 256);
        assert!(g.delta > 0.97, "deep ITM delta: {}", g.delta);
        assert!(g.gamma.abs() < 0.01, "deep ITM gamma vanishes");
    }

    #[test]
    fn dividends_create_early_exercise_premium_for_calls() {
        // Without dividends an American call is European; with a fat
        // dividend yield, early exercise gains value.
        let mut with_div = OptionParams::example();
        with_div.dividend_yield = 0.08;
        let mut euro = with_div;
        euro.style = ExerciseStyle::European;
        let amer_price = crate::binomial::price_american_f64(&with_div, 512);
        let euro_price = crate::binomial::price_american_f64(&euro, 512);
        assert!(
            amer_price > euro_price + 1e-4,
            "dividends make American calls worth more: {amer_price} vs {euro_price}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_steps_panics() {
        let _ = lattice_greeks(&OptionParams::example(), 1);
    }
}
