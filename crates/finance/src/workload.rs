//! Synthetic market-data workloads.
//!
//! The paper's use case prices 2000 option values per volatility curve, one
//! curve per second, "generated from market data and reference prices"
//! that we do not have. This module builds the closest synthetic
//! equivalent: strikes laddered across moneyness with a parametric
//! volatility smile, optionally across several maturities (a surface).
//! Generation is deterministic per seed.

use crate::rng::SplitMix64;
use crate::types::{ExerciseStyle, OptionKind, OptionParams};

/// A parametric volatility smile: `sigma(K) = sigma0 + skew m + curv m^2`
/// with `m = ln(K / S0)`, clamped to a sane band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolatilitySmile {
    /// At-the-money volatility.
    pub sigma0: f64,
    /// Linear skew (negative for equity-like markets).
    pub skew: f64,
    /// Smile curvature.
    pub curvature: f64,
}

impl VolatilitySmile {
    /// A typical equity-index smile.
    pub fn equity() -> VolatilitySmile {
        VolatilitySmile { sigma0: 0.22, skew: -0.12, curvature: 0.25 }
    }

    /// The smile volatility at log-moneyness `m`.
    pub fn vol_at(&self, m: f64) -> f64 {
        (self.sigma0 + self.skew * m + self.curvature * m * m).clamp(0.02, 2.0)
    }
}

/// Workload generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Spot of the underlying.
    pub spot: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Smile parameters.
    pub smile: VolatilitySmile,
    /// Moneyness range: strikes span `spot * exp(±range)`.
    pub moneyness_range: f64,
    /// Relative jitter on strikes/vols (models noisy quotes), 0 disables.
    pub jitter: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            spot: 100.0,
            rate: 0.03,
            smile: VolatilitySmile::equity(),
            moneyness_range: 0.35,
            jitter: 0.01,
        }
    }
}

/// Generate one volatility curve: `n_options` American calls at a single
/// maturity with strikes laddered across the moneyness range — the
/// "2000 option values per volatility curve" batch of the paper's
/// introduction.
pub fn volatility_curve(
    config: &WorkloadConfig,
    expiry: f64,
    n_options: usize,
    seed: u64,
) -> Vec<OptionParams> {
    assert!(n_options > 0, "empty workload");
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n_options)
        .map(|i| {
            let frac = if n_options == 1 { 0.5 } else { i as f64 / (n_options - 1) as f64 };
            let m = (2.0 * frac - 1.0) * config.moneyness_range;
            let jitter = |rng: &mut SplitMix64| {
                if config.jitter > 0.0 {
                    1.0 + rng.uniform(-config.jitter, config.jitter)
                } else {
                    1.0
                }
            };
            let strike = config.spot * m.exp() * jitter(&mut rng);
            let volatility = config.smile.vol_at(m) * jitter(&mut rng);
            OptionParams {
                spot: config.spot,
                strike,
                volatility,
                rate: config.rate,
                expiry,
                dividend_yield: 0.0,
                kind: OptionKind::Call,
                style: ExerciseStyle::American,
            }
        })
        .collect()
}

/// Generate a full surface: `maturities.len()` curves of `per_curve`
/// options each.
pub fn volatility_surface(
    config: &WorkloadConfig,
    maturities: &[f64],
    per_curve: usize,
    seed: u64,
) -> Vec<OptionParams> {
    maturities
        .iter()
        .enumerate()
        .flat_map(|(i, &t)| volatility_curve(config, t, per_curve, seed.wrapping_add(i as u64)))
        .collect()
}

/// The paper's standard batch: 2000 American options, one curve, one year.
pub fn paper_batch(seed: u64) -> Vec<OptionParams> {
    volatility_curve(&WorkloadConfig::default(), 1.0, 2000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_deterministic_per_seed() {
        let c = WorkloadConfig::default();
        let a = volatility_curve(&c, 1.0, 100, 7);
        let b = volatility_curve(&c, 1.0, 100, 7);
        let other = volatility_curve(&c, 1.0, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, other);
    }

    #[test]
    fn all_generated_options_are_valid() {
        for opt in paper_batch(42) {
            opt.validate().expect("generated option must be valid");
        }
    }

    #[test]
    fn paper_batch_has_2000_options() {
        assert_eq!(paper_batch(1).len(), 2000);
    }

    #[test]
    fn strikes_ladder_across_the_range() {
        let c = WorkloadConfig { jitter: 0.0, ..Default::default() };
        let opts = volatility_curve(&c, 1.0, 51, 0);
        assert!(opts.first().expect("nonempty").strike < c.spot * 0.75);
        assert!(opts.last().expect("nonempty").strike > c.spot * 1.3);
        for w in opts.windows(2) {
            assert!(w[1].strike > w[0].strike, "strikes strictly increasing without jitter");
        }
    }

    #[test]
    fn smile_shape_skews_down_and_curves_up() {
        let s = VolatilitySmile::equity();
        let atm = s.vol_at(0.0);
        assert!(s.vol_at(-0.3) > atm, "low strikes richer (skew)");
        assert!(s.vol_at(0.4) > s.vol_at(0.2), "far wing lifted by curvature");
        assert!(s.vol_at(-10.0) <= 2.0, "clamped");
    }

    #[test]
    fn surface_stacks_curves() {
        let c = WorkloadConfig::default();
        let s = volatility_surface(&c, &[0.25, 0.5, 1.0], 10, 3);
        assert_eq!(s.len(), 30);
        assert_eq!(s[0].expiry, 0.25);
        assert_eq!(s[29].expiry, 1.0);
    }
}
