//! Optimizing pass pipeline over IR modules.
//!
//! This is the simulator's stand-in for the scalar optimisations Altera's
//! offline kernel compiler applies before scheduling: constant folding,
//! dead-code elimination, local (basic-block) common-subexpression
//! elimination and branch simplification. Each pass is a pure
//! `Module -> Module` function; a [`Pipeline`] names an ordered list of
//! passes and records per-pass [`PassStats`] in a [`PipelineReport`] —
//! the moral equivalent of the pass summary an `aoc` build log prints.
//!
//! The per-function entry points (`fold_constants_in`, ...) are shared
//! with the `bop-clc` front-end, which applies the same cleanups at
//! lowering time; running the pipeline again over already-optimised IR is
//! a no-op, which keeps the dynamic operation counts (and therefore the
//! device timing models) stable no matter which layer ran the passes.
//!
//! The IR is a register machine, not SSA: a register may be redefined, so
//! every pass tracks validity ranges explicitly (constant knowledge and
//! value numbers die at redefinition; liveness is a whole-function
//! property).

mod cfg_simplify;
mod compact;
mod dom;
mod mem2reg;
mod out_of_ssa;
mod ssa_prop;
mod util;

pub use cfg_simplify::{cfg_simplify, cfg_simplify_in};
pub use compact::{compact_regs, compact_regs_in};
pub use mem2reg::{mem2reg, mem2reg_in};
pub use out_of_ssa::{out_of_ssa, out_of_ssa_in};
pub use ssa_prop::{ssa_prop, ssa_prop_in};

use crate::eval;
use crate::ir::{BlockId, Function, Inst, Module, RegId, Terminator};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Per-pass before/after counters, collected by [`Pipeline::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (e.g. `"const-fold"`).
    pub name: &'static str,
    /// Instructions in the module before the pass.
    pub insts_before: usize,
    /// Instructions in the module after the pass.
    pub insts_after: usize,
    /// Basic blocks in the module before the pass.
    pub blocks_before: usize,
    /// Basic blocks in the module after the pass.
    pub blocks_after: usize,
    /// Multiply-defined ("local variable") registers before the pass.
    pub multidef_before: usize,
    /// Multiply-defined registers after the pass; `mem2reg` reports its
    /// promotions as the drop in this counter.
    pub multidef_after: usize,
}

impl PassStats {
    /// Whether the pass changed the module's shape (instruction, block
    /// or multiply-defined register count; rewrites in place, e.g.
    /// folding a `Bin` into a `Const`, do not show up here).
    pub fn shrank(&self) -> bool {
        self.insts_after < self.insts_before
            || self.blocks_after < self.blocks_before
            || self.multidef_after < self.multidef_before
    }

    /// Registers this pass promoted out of multiply-defined form.
    pub fn locals_promoted(&self) -> usize {
        self.multidef_before.saturating_sub(self.multidef_after)
    }

    /// Blocks this pass merged away (or otherwise removed).
    pub fn blocks_merged(&self) -> usize {
        self.blocks_before.saturating_sub(self.blocks_after)
    }
}

/// The report of one [`Pipeline::run`]: which pipeline ran and what each
/// pass did. Attached to `BuildReport` by the OpenCL-style runtime so
/// hosts can print it next to the fitter summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Name of the pipeline that ran (e.g. `"standard"`).
    pub pipeline: String,
    /// Per-pass statistics, in execution order.
    pub passes: Vec<PassStats>,
}

impl PipelineReport {
    /// Total instructions removed across the whole pipeline.
    pub fn insts_removed(&self) -> usize {
        match (self.passes.first(), self.passes.last()) {
            (Some(first), Some(last)) => first.insts_before.saturating_sub(last.insts_after),
            _ => 0,
        }
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pass pipeline `{}`:", self.pipeline)?;
        if self.passes.is_empty() {
            return writeln!(f, "  (no passes)");
        }
        for p in &self.passes {
            writeln!(
                f,
                "  {:<18} insts {:>4} -> {:<4} blocks {:>3} -> {:<3} multidef {:>3} -> {:<3}",
                p.name,
                p.insts_before,
                p.insts_after,
                p.blocks_before,
                p.blocks_after,
                p.multidef_before,
                p.multidef_after
            )?;
        }
        writeln!(f, "  total: {} instruction(s) removed", self.insts_removed())
    }
}

/// One named pass: a pure `Module -> Module` transform.
#[derive(Clone, Copy)]
pub struct Pass {
    /// Display name, also used in [`PassStats`].
    pub name: &'static str,
    /// The transform itself.
    pub run: fn(Module) -> Module,
}

impl fmt::Debug for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pass").field("name", &self.name).finish()
    }
}

/// An ordered, named list of passes.
#[derive(Debug, Clone)]
pub struct Pipeline {
    name: String,
    passes: Vec<Pass>,
}

impl Pipeline {
    /// A pipeline from an explicit pass list.
    pub fn new(name: &str, passes: Vec<Pass>) -> Pipeline {
        Pipeline { name: name.to_string(), passes }
    }

    /// The default pipeline: constant folding, branch simplification,
    /// dead-code elimination.
    pub fn standard() -> Pipeline {
        Pipeline::new(
            "standard",
            vec![
                Pass { name: "const-fold", run: constant_fold },
                Pass { name: "simplify-branches", run: branch_simplification },
                Pass { name: "dce", run: dead_code_elimination },
            ],
        )
    }

    /// The standard pipeline with local CSE (and the copy propagation it
    /// needs) inserted after folding. CSE is opt-in for the same reason it
    /// is in the front-end: removing redundant operators changes the FPGA
    /// resource estimates.
    pub fn with_cse() -> Pipeline {
        Pipeline::new(
            "standard+cse",
            vec![
                Pass { name: "const-fold", run: constant_fold },
                Pass { name: "local-cse", run: local_cse },
                Pass { name: "simplify-branches", run: branch_simplification },
                Pass { name: "dce", run: dead_code_elimination },
            ],
        )
    }

    /// An empty pipeline (used when optimisation is disabled).
    pub fn none() -> Pipeline {
        Pipeline::new("none", vec![])
    }

    /// The pipeline matching a front-end option pair.
    pub fn for_options(no_opt: bool, cse: bool) -> Pipeline {
        if no_opt {
            Pipeline::none()
        } else if cse {
            Pipeline::with_cse()
        } else {
            Pipeline::standard()
        }
    }

    /// The SSA pipeline: CFG cleanup, promotion of mutable registers to
    /// SSA (`mem2reg`), global constant/copy propagation over the SSA
    /// form, then lowering back to executable phi-free IR and dense
    /// register renumbering. Interleaved `cfg-simplify`/`dce` rounds
    /// clean up what each structural phase exposes.
    pub fn ssa() -> Pipeline {
        Pipeline::new("ssa", Self::ssa_passes(false))
    }

    /// [`Pipeline::ssa`] with local CSE inserted after propagation. CSE
    /// stays opt-in for the same reason as in [`Pipeline::with_cse`]:
    /// removing redundant operators changes FPGA resource estimates.
    pub fn ssa_with_cse() -> Pipeline {
        Pipeline::new("ssa+cse", Self::ssa_passes(true))
    }

    fn ssa_passes(cse: bool) -> Vec<Pass> {
        let mut passes = vec![
            Pass { name: "cfg-simplify", run: cfg_simplify },
            Pass { name: "mem2reg", run: mem2reg },
            Pass { name: "ssa-prop", run: ssa_prop },
            Pass { name: "const-fold", run: constant_fold },
        ];
        if cse {
            passes.push(Pass { name: "local-cse", run: local_cse });
        }
        passes.extend([
            Pass { name: "cfg-simplify", run: cfg_simplify },
            Pass { name: "dce", run: dead_code_elimination },
            Pass { name: "out-of-ssa", run: out_of_ssa },
            Pass { name: "cfg-simplify", run: cfg_simplify },
            Pass { name: "dce", run: dead_code_elimination },
            Pass { name: "compact-regs", run: compact_regs },
        ]);
        passes
    }

    /// The pipeline the OpenCL-style runtime uses for `Program::build`:
    /// the SSA pipeline, with the same `no_opt`/`cse` switches as
    /// [`Pipeline::for_options`] (which is kept as-is for the front-end
    /// and for callers that want the legacy non-SSA pipeline).
    pub fn for_build(no_opt: bool, cse: bool) -> Pipeline {
        if no_opt {
            Pipeline::none()
        } else if cse {
            Pipeline::ssa_with_cse()
        } else {
            Pipeline::ssa()
        }
    }

    /// The pipeline's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The passes, in execution order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Run every pass in order, collecting per-pass statistics.
    pub fn run(&self, mut module: Module) -> (Module, PipelineReport) {
        let mut report = PipelineReport {
            pipeline: self.name.clone(),
            passes: Vec::with_capacity(self.passes.len()),
        };
        for pass in &self.passes {
            let insts_before = module_insts(&module);
            let blocks_before = module_blocks(&module);
            let multidef_before = module_multidef(&module);
            module = (pass.run)(module);
            report.passes.push(PassStats {
                name: pass.name,
                insts_before,
                insts_after: module_insts(&module),
                blocks_before,
                blocks_after: module_blocks(&module),
                multidef_before,
                multidef_after: module_multidef(&module),
            });
        }
        (module, report)
    }
}

fn module_insts(m: &Module) -> usize {
    m.functions.iter().map(Function::inst_count).sum()
}

fn module_blocks(m: &Module) -> usize {
    m.functions.iter().map(|f| f.blocks.len()).sum()
}

/// Multiply-defined registers across the module (mutable "locals" in the
/// register-machine sense; zero once a function is in SSA form).
fn module_multidef(m: &Module) -> usize {
    m.functions
        .iter()
        .map(|f| {
            let mut defs = vec![0u32; f.reg_types.len()];
            for block in &f.blocks {
                for inst in &block.insts {
                    if let Some(d) = inst.dst() {
                        defs[d.index()] += 1;
                    }
                }
            }
            defs.iter().filter(|&&c| c >= 2).count()
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Module-level passes
// ---------------------------------------------------------------------------

/// Constant folding over every function (see [`fold_constants_in`]).
pub fn constant_fold(mut m: Module) -> Module {
    for f in &mut m.functions {
        fold_constants_in(f);
    }
    m
}

/// Dead-code elimination over every function (see
/// [`eliminate_dead_code_in`]).
pub fn dead_code_elimination(mut m: Module) -> Module {
    for f in &mut m.functions {
        eliminate_dead_code_in(f);
    }
    m
}

/// Local CSE plus the copy propagation that lets DCE remove the copies it
/// introduces (see [`local_cse_in`] and [`propagate_copies_in`]).
pub fn local_cse(mut m: Module) -> Module {
    for f in &mut m.functions {
        local_cse_in(f);
        propagate_copies_in(f);
    }
    m
}

/// Branch simplification over every function (see
/// [`simplify_branches_in`]).
pub fn branch_simplification(mut m: Module) -> Module {
    for f in &mut m.functions {
        simplify_branches_in(f);
    }
    m
}

// ---------------------------------------------------------------------------
// Per-function passes (shared with the bop-clc front-end)
// ---------------------------------------------------------------------------

/// Fold instructions whose operands are compile-time constants.
///
/// Works per basic block with a forward scan: a register is "known" while
/// it provably holds a constant within the block; any other write
/// invalidates it. Folded instructions become [`Inst::Const`]; DCE cleans
/// up the now-unused inputs. Trapping instructions (integer division by
/// zero) are left in place, not folded into a compile error.
pub fn fold_constants_in(func: &mut Function) {
    for block in &mut func.blocks {
        let mut known: HashMap<RegId, Value> = HashMap::new();
        for inst in &mut block.insts {
            let folded: Option<Value> = match &*inst {
                Inst::Const { val, .. } => Some(*val),
                Inst::Mov { src, .. } => known.get(src).copied(),
                Inst::Bin { op, ty, a, b, .. } => match (known.get(a), known.get(b)) {
                    (Some(x), Some(y)) => eval::eval_bin(*op, *ty, *x, *y).ok(),
                    _ => None,
                },
                Inst::Un { op, ty, a, .. } => known.get(a).map(|x| eval::eval_un(*op, *ty, *x)),
                Inst::Cmp { op, ty, a, b, .. } => match (known.get(a), known.get(b)) {
                    (Some(x), Some(y)) => Some(Value::Bool(eval::eval_cmp(*op, *ty, *x, *y))),
                    _ => None,
                },
                Inst::Select { cond, a, b, .. } => match known.get(cond) {
                    Some(Value::Bool(true)) => known.get(a).copied(),
                    Some(Value::Bool(false)) => known.get(b).copied(),
                    _ => None,
                },
                Inst::Cast { a, from, to, .. } => {
                    known.get(a).map(|x| eval::eval_cast(*x, *from, *to))
                }
                // Calls, loads, queries, geps: not folded (queries vary per
                // item; calls depend on the device math library).
                _ => None,
            };
            if let Some(dst) = inst.dst() {
                match folded {
                    Some(val) if !matches!(inst, Inst::Const { .. }) => {
                        *inst = Inst::Const { dst, val };
                        known.insert(dst, val);
                    }
                    Some(val) => {
                        known.insert(dst, val);
                    }
                    None => {
                        known.remove(&dst);
                    }
                }
            }
        }
    }
}

/// Remove pure instructions whose results are never read.
///
/// "Never read" is a whole-function property (the IR is a register machine,
/// not SSA, so a register written in one block may be read in another).
/// Stores and barriers are never removed; loads are pure and removable.
pub fn eliminate_dead_code_in(func: &mut Function) {
    loop {
        let mut used: HashSet<RegId> = HashSet::new();
        for block in &func.blocks {
            for inst in &block.insts {
                for r in inst.sources() {
                    used.insert(r);
                }
            }
            if let Terminator::Branch { cond, .. } = &block.term {
                used.insert(*cond);
            }
        }
        let mut removed = false;
        for block in &mut func.blocks {
            let before = block.insts.len();
            block.insts.retain(|inst| match inst {
                // Pipe ops mutate FIFO state (and a blocked read unblocks
                // a peer kernel), so both are kept even if unused.
                Inst::Store { .. }
                | Inst::Barrier
                | Inst::PipeRead { .. }
                | Inst::PipeWrite { .. } => true,
                other => match other.dst() {
                    Some(dst) => used.contains(&dst),
                    None => true,
                },
            });
            removed |= block.insts.len() != before;
        }
        if !removed {
            return;
        }
    }
}

/// Local value numbering: eliminate redundant pure computations within
/// each basic block (common-subexpression elimination).
///
/// The IR is a mutable register machine, so classical CSE needs value
/// numbers: a replacement `dst = rep` is only valid while the
/// representative register still holds the value number the expression
/// produced. Loads are not eliminated (memory may change between them);
/// math builtins and work-item queries are pure and participate.
pub fn local_cse_in(func: &mut Function) {
    use crate::ir::{Builtin, CmpOp, UnOp, WiQuery};
    use crate::types::ScalarType;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Key {
        Const(u64, ScalarType),
        Bin(crate::ir::BinOp, ScalarType, u32, u32),
        Un(UnOp, ScalarType, u32),
        Cmp(CmpOp, ScalarType, u32, u32),
        Select(ScalarType, u32, u32, u32),
        Cast(ScalarType, ScalarType, u32),
        Call(Builtin, ScalarType, Vec<u32>),
        WorkItem(WiQuery, u8),
        Gep(ScalarType, u32, u32),
    }

    for block in &mut func.blocks {
        let mut next_vn: u32 = 0;
        let mut vn_of: HashMap<RegId, u32> = HashMap::new();
        let mut table: HashMap<Key, (u32, RegId)> = HashMap::new();

        fn vn(vn_of: &mut HashMap<RegId, u32>, next_vn: &mut u32, r: RegId) -> u32 {
            *vn_of.entry(r).or_insert_with(|| {
                *next_vn += 1;
                *next_vn
            })
        }

        for inst in &mut block.insts {
            let key = match &*inst {
                Inst::Const { val, .. } => val.scalar_type().map(|ty| {
                    let bits = match val {
                        Value::Bool(b) => *b as u64,
                        Value::I32(x) => *x as u32 as u64,
                        Value::I64(x) => *x as u64,
                        Value::F32(x) => x.to_bits() as u64,
                        Value::F64(x) => x.to_bits(),
                        Value::Ptr(_) => unreachable!("filtered by scalar_type"),
                    };
                    Key::Const(bits, ty)
                }),
                Inst::Bin { op, ty, a, b, .. } => {
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Bin(*op, *ty, va, vb))
                }
                Inst::Un { op, ty, a, .. } => {
                    Some(Key::Un(*op, *ty, vn(&mut vn_of, &mut next_vn, *a)))
                }
                Inst::Cmp { op, ty, a, b, .. } => {
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Cmp(*op, *ty, va, vb))
                }
                Inst::Select { ty, cond, a, b, .. } => {
                    let vc = vn(&mut vn_of, &mut next_vn, *cond);
                    let (va, vb) =
                        (vn(&mut vn_of, &mut next_vn, *a), vn(&mut vn_of, &mut next_vn, *b));
                    Some(Key::Select(*ty, vc, va, vb))
                }
                Inst::Cast { a, from, to, .. } => {
                    Some(Key::Cast(*from, *to, vn(&mut vn_of, &mut next_vn, *a)))
                }
                Inst::Call { func: f, ty, args, .. } => {
                    let vargs = args.iter().map(|r| vn(&mut vn_of, &mut next_vn, *r)).collect();
                    Some(Key::Call(*f, *ty, vargs))
                }
                Inst::WorkItem { query, dim, .. } => Some(Key::WorkItem(*query, *dim)),
                Inst::Gep { base, index, elem, .. } => {
                    let (vb, vi) =
                        (vn(&mut vn_of, &mut next_vn, *base), vn(&mut vn_of, &mut next_vn, *index));
                    Some(Key::Gep(*elem, vb, vi))
                }
                // Loads, stores, movs, barriers, pipe ops and phis are
                // not value-numbered expressions.
                Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Mov { .. }
                | Inst::Barrier
                | Inst::PipeRead { .. }
                | Inst::PipeWrite { .. }
                | Inst::Phi { .. } => None,
            };

            match (key, inst.dst()) {
                (Some(key), Some(dst)) => {
                    if let Some(&(expr_vn, rep)) = table.get(&key) {
                        if rep != dst && vn_of.get(&rep) == Some(&expr_vn) {
                            // The representative still holds this value.
                            *inst = Inst::Mov { dst, src: rep };
                            vn_of.insert(dst, expr_vn);
                            continue;
                        }
                    }
                    next_vn += 1;
                    table.insert(key, (next_vn, dst));
                    vn_of.insert(dst, next_vn);
                }
                (None, Some(dst)) => {
                    // Unknown value (load, mov): give the destination a
                    // fresh number, invalidating stale representatives.
                    match inst {
                        Inst::Mov { src, .. } => {
                            let v = vn(&mut vn_of, &mut next_vn, *src);
                            vn_of.insert(dst, v);
                        }
                        _ => {
                            next_vn += 1;
                            vn_of.insert(dst, next_vn);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Copy propagation: rewrite uses of `Mov` destinations to read the
/// original register while the copy is still valid, so DCE can remove the
/// `Mov` itself. Runs after CSE (which introduces the copies).
pub fn propagate_copies_in(func: &mut Function) {
    for block in &mut func.blocks {
        // dst -> original source (fully resolved through chains).
        let mut copy_of: HashMap<RegId, RegId> = HashMap::new();
        for i in 0..block.insts.len() {
            // Rewrite sources first (uses see the state before this inst).
            let resolve =
                |copy_of: &HashMap<RegId, RegId>, r: RegId| copy_of.get(&r).copied().unwrap_or(r);
            let inst = &mut block.insts[i];
            match inst {
                Inst::Mov { src, .. } => *src = resolve(&copy_of, *src),
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    *a = resolve(&copy_of, *a);
                    *b = resolve(&copy_of, *b);
                }
                Inst::Un { a, .. } => *a = resolve(&copy_of, *a),
                Inst::Select { cond, a, b, .. } => {
                    *cond = resolve(&copy_of, *cond);
                    *a = resolve(&copy_of, *a);
                    *b = resolve(&copy_of, *b);
                }
                Inst::Cast { a, .. } => *a = resolve(&copy_of, *a),
                Inst::Call { args, .. } => {
                    for r in args.iter_mut() {
                        *r = resolve(&copy_of, *r);
                    }
                }
                Inst::Gep { base, index, .. } => {
                    *base = resolve(&copy_of, *base);
                    *index = resolve(&copy_of, *index);
                }
                Inst::Load { ptr, .. } => *ptr = resolve(&copy_of, *ptr),
                Inst::Store { ptr, val, .. } => {
                    *ptr = resolve(&copy_of, *ptr);
                    *val = resolve(&copy_of, *val);
                }
                Inst::PipeRead { pipe, .. } => *pipe = resolve(&copy_of, *pipe),
                Inst::PipeWrite { pipe, val, .. } => {
                    *pipe = resolve(&copy_of, *pipe);
                    *val = resolve(&copy_of, *val);
                }
                // Phi args are *not* rewritten: they read their source at
                // the end of the predecessor block, outside this block's
                // copy map.
                Inst::Const { .. } | Inst::WorkItem { .. } | Inst::Barrier | Inst::Phi { .. } => {}
            }
            // Then update the copy map with this instruction's effect.
            if let Some(dst) = block.insts[i].dst() {
                // Any write invalidates copies *of* dst and copies *from*
                // dst (its old value is gone).
                copy_of.remove(&dst);
                copy_of.retain(|_, src| *src != dst);
                if let Inst::Mov { dst, src } = &block.insts[i] {
                    if dst != src {
                        copy_of.insert(*dst, *src);
                    }
                }
            }
        }
        // Rewrite the terminator condition too.
        if let Terminator::Branch { cond, .. } = &mut block.term {
            if let Some(src) = copy_of.get(cond) {
                *cond = *src;
            }
        }
    }
}

/// Branch simplification: fold branches on compile-time-constant
/// conditions into jumps, collapse branches whose arms coincide, and
/// remove blocks that become unreachable (remapping block ids).
///
/// The constant scan is the same per-block forward walk as
/// [`fold_constants_in`], so a condition is only treated as constant when
/// the register provably still holds that constant at the terminator.
pub fn simplify_branches_in(func: &mut Function) {
    // A block-less function is invalid IR; leave it for the verifier to
    // report instead of panicking on the missing entry block below.
    if func.blocks.is_empty() {
        return;
    }
    // 1. Rewrite terminators.
    for block in &mut func.blocks {
        let mut known: HashMap<RegId, Value> = HashMap::new();
        for inst in &block.insts {
            if let Some(dst) = inst.dst() {
                match inst {
                    Inst::Const { val, .. } => {
                        known.insert(dst, *val);
                    }
                    Inst::Mov { src, .. } => match known.get(src).copied() {
                        Some(v) => {
                            known.insert(dst, v);
                        }
                        None => {
                            known.remove(&dst);
                        }
                    },
                    _ => {
                        known.remove(&dst);
                    }
                }
            }
        }
        if let Terminator::Branch { cond, then_bb, else_bb } = block.term {
            if then_bb == else_bb {
                block.term = Terminator::Jump(then_bb);
            } else if let Some(Value::Bool(taken)) = known.get(&cond) {
                block.term = Terminator::Jump(if *taken { then_bb } else { else_bb });
            }
        }
    }

    // 2. Drop unreachable blocks and remap ids.
    let mut reachable = vec![false; func.blocks.len()];
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for succ in func.blocks[b].term.successors() {
            work.push(succ.index());
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap: HashMap<usize, u32> = HashMap::new();
    let mut kept = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap.insert(i, kept);
            kept += 1;
        }
    }
    let blocks = std::mem::take(&mut func.blocks);
    func.blocks = blocks
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, mut block)| {
            match &mut block.term {
                Terminator::Jump(t) => *t = BlockId(remap[&t.index()]),
                Terminator::Branch { then_bb, else_bb, .. } => {
                    *then_bb = BlockId(remap[&then_bb.index()]);
                    *else_bb = BlockId(remap[&else_bb.index()]);
                }
                Terminator::Return => {}
            }
            block
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use crate::ir::{BinOp, CmpOp};
    use crate::mathlib::ExactMath;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    fn run_one(func: &Function) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut wg =
            WorkGroupRun::new(func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    /// out[0] = 3.0 behind a constant-false branch guarding out[0] = 7.0.
    fn const_branch_function() -> Function {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let cond = b.cmp(CmpOp::Gt, ScalarType::I64, one, two); // false
        let dead = b.create_block();
        let live = b.create_block();
        b.branch(cond, dead, live);
        b.switch_to(dead);
        let seven = b.const_f64(7.0);
        let z = b.const_i64(0);
        let s = b.gep(out, z, ScalarType::F64);
        b.store(s, seven, ScalarType::F64);
        b.ret();
        b.switch_to(live);
        let three = b.const_f64(3.0);
        let z2 = b.const_i64(0);
        let s2 = b.gep(out, z2, ScalarType::F64);
        b.store(s2, three, ScalarType::F64);
        b.ret();
        b.finish().expect("valid")
    }

    #[test]
    fn standard_pipeline_folds_constant_branch_away() {
        let m = Module::from_functions("t", vec![const_branch_function()]);
        let blocks_before = m.functions[0].blocks.len();
        let (opt, report) = Pipeline::standard().run(m);
        verify_module(&opt).expect("post-pass IR verifies");
        let f = &opt.functions[0];
        assert!(f.blocks.len() < blocks_before, "dead branch arm removed");
        assert!(f.blocks.iter().all(|b| !matches!(b.term, Terminator::Branch { .. })));
        assert_eq!(run_one(f), 3.0);
        assert_eq!(report.pipeline, "standard");
        assert_eq!(report.passes.len(), 3);
        assert!(report.passes.iter().any(|p| p.shrank()), "something shrank");
        assert!(report.insts_removed() > 0);
    }

    #[test]
    fn equal_arm_branch_becomes_jump() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        let v = b.load(slot, ScalarType::F64);
        let c = b.cmp(CmpOp::Gt, ScalarType::F64, v, v); // not constant-known
        let join = b.create_block();
        b.branch(c, join, join);
        b.switch_to(join);
        let one = b.const_f64(1.0);
        b.store(slot, one, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid");
        let m = Module::from_functions("t", vec![f]);
        let (opt, _) = Pipeline::standard().run(m);
        verify_module(&opt).expect("verifies");
        assert!(opt.functions[0]
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Branch { .. })));
        assert_eq!(run_one(&opt.functions[0]), 1.0);
    }

    #[test]
    fn pipeline_is_idempotent_on_its_own_output() {
        let m = Module::from_functions("t", vec![const_branch_function()]);
        let (once, _) = Pipeline::standard().run(m);
        let (twice, report) = Pipeline::standard().run(once.clone());
        assert_eq!(once, twice, "second run is a no-op");
        assert!(report.passes.iter().all(|p| !p.shrank()));
    }

    #[test]
    fn cse_pipeline_removes_redundant_work() {
        // out[0] = v*v + v*v with the product computed twice.
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        let v = b.load(slot, ScalarType::F64);
        let p1 = b.bin(BinOp::Mul, ScalarType::F64, v, v);
        let p2 = b.bin(BinOp::Mul, ScalarType::F64, v, v);
        let sum = b.fadd(p1, p2, ScalarType::F64);
        b.store(slot, sum, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid");
        let m = Module::from_functions("t", vec![f]);
        let muls = |m: &Module| {
            m.functions[0]
                .blocks
                .iter()
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
                .count()
        };
        assert_eq!(muls(&m), 2);
        let (plain, _) = Pipeline::standard().run(m.clone());
        assert_eq!(muls(&plain), 2, "standard pipeline leaves duplicates");
        let (cse, report) = Pipeline::with_cse().run(m);
        verify_module(&cse).expect("verifies");
        assert_eq!(muls(&cse), 1, "CSE merges the duplicate product");
        assert_eq!(report.pipeline, "standard+cse");
    }

    #[test]
    fn for_options_selects_the_documented_pipelines() {
        assert_eq!(Pipeline::for_options(true, true).name(), "none");
        assert_eq!(Pipeline::for_options(false, false).name(), "standard");
        assert_eq!(Pipeline::for_options(false, true).name(), "standard+cse");
        assert!(Pipeline::none().passes().is_empty());
    }

    #[test]
    fn for_build_selects_the_ssa_pipelines() {
        assert_eq!(Pipeline::for_build(true, true).name(), "none");
        assert_eq!(Pipeline::for_build(false, false).name(), "ssa");
        assert_eq!(Pipeline::for_build(false, true).name(), "ssa+cse");
    }

    /// A loop with multiply-defined counter/accumulator registers: the
    /// SSA pipeline must promote them, lower back out of phi form, and
    /// preserve the computed value exactly.
    fn loop_function() -> Function {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let zero_f = b.const_f64(0.0);
        let zero_i = b.const_i64(0);
        let i = b.fresh(Type::Scalar(ScalarType::I64));
        let a = b.fresh(Type::Scalar(ScalarType::F64));
        b.mov_into(i, zero_i);
        b.mov_into(a, zero_f);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(head);
        b.switch_to(head);
        let five = b.const_i64(5);
        let done = b.cmp(CmpOp::Ge, ScalarType::I64, i, five);
        b.branch(done, exit, body);
        b.switch_to(body);
        let one = b.const_i64(1);
        let i2 = b.bin(BinOp::Add, ScalarType::I64, i, one);
        b.mov_into(i, i2);
        let fi = b.cast(i, ScalarType::I64, ScalarType::F64);
        let a2 = b.fadd(a, fi, ScalarType::F64);
        b.mov_into(a, a2);
        b.jump(head);
        b.switch_to(exit);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, a, ScalarType::F64);
        b.ret();
        b.finish().expect("valid")
    }

    #[test]
    fn ssa_pipeline_promotes_locals_and_preserves_semantics() {
        let f = loop_function();
        let expected = run_one(&f);
        assert_eq!(expected, 15.0);
        let m = Module::from_functions("t", vec![f]);
        let (opt, report) = Pipeline::ssa().run(m);
        verify_module(&opt).expect("post-pipeline IR verifies");
        let f = &opt.functions[0];
        assert!(
            f.blocks.iter().flat_map(|b| &b.insts).all(|i| !matches!(i, Inst::Phi { .. })),
            "executable output is phi-free"
        );
        assert_eq!(run_one(f), expected, "value is bit-identical");
        let mem2reg = report.passes.iter().find(|p| p.name == "mem2reg").expect("mem2reg ran");
        assert!(mem2reg.locals_promoted() >= 2, "counter and accumulator promoted");
        assert!(
            mem2reg.multidef_after == 0,
            "mem2reg output is strict SSA (out-of-ssa may reintroduce edge copies later)"
        );
    }

    #[test]
    fn ssa_pipeline_rerun_preserves_semantics_and_does_not_grow() {
        let m = Module::from_functions("t", vec![loop_function()]);
        let (once, _) = Pipeline::ssa().run(m);
        let expected = run_one(&once.functions[0]);
        let insts_once = once.functions[0].inst_count();
        // The SSA round trip is not structurally idempotent (out-of-ssa
        // rebuilds edge copies that mem2reg re-promotes), but a rerun
        // must stay semantics-preserving and must not bloat the code.
        let (twice, _) = Pipeline::ssa().run(once.clone());
        verify_module(&twice).expect("verifies");
        assert_eq!(run_one(&twice.functions[0]), expected);
        assert!(twice.functions[0].inst_count() <= insts_once, "rerun does not grow the function");
    }

    #[test]
    fn report_displays_every_pass() {
        let m = Module::from_functions("t", vec![const_branch_function()]);
        let (_, report) = Pipeline::standard().run(m);
        let text = report.to_string();
        assert!(text.contains("pass pipeline `standard`"));
        for name in ["const-fold", "simplify-branches", "dce"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
