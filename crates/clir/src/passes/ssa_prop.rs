//! Global (whole-function) constant and copy propagation for SSA-formed
//! IR.
//!
//! After `mem2reg` most registers are singly defined, so block-local
//! validity tracking is unnecessary: a singly-defined constant holds its
//! value at every program point its definition dominates. This pass
//! folds instructions whose operands are dominating singly-defined
//! constants, simplifies phis whose arguments agree, and forwards `Mov`
//! chains whose copies dominate every use. It never invents or reorders
//! floating-point arithmetic — folding uses the same `eval` kernels the
//! engines execute, so results stay bit-identical.
//!
//! Registers the promoter left multiply-defined (or never defined:
//! zero-init) simply fail the single-definition checks and are left
//! untouched, so the pass is safe on any verified IR, phi-bearing or
//! not.

use super::dom::Cfg;
use super::util::for_each_src_mut;
use crate::eval;
use crate::ir::{Function, Inst, Module, RegId, Terminator};
use crate::value::Value;
use std::collections::HashMap;

/// Run [`ssa_prop_in`] over every function of the module.
pub fn ssa_prop(mut m: Module) -> Module {
    for f in &mut m.functions {
        ssa_prop_in(f);
    }
    m
}

/// Iterate global constant folding and copy forwarding to a fixpoint
/// (bounded; each round strictly simplifies the function).
pub fn ssa_prop_in(func: &mut Function) {
    if func.blocks.is_empty() {
        return;
    }
    for _ in 0..16 {
        let folded = fold_round(func);
        let copied = copy_round(func);
        if !(folded || copied) {
            return;
        }
    }
}

/// A definition site: `(block, instruction index)`. Parameters are
/// implicitly defined before everything (`None` site).
type Site = (usize, usize);

struct Defs {
    /// Static definition count per register (parameters count once).
    count: Vec<u32>,
    /// Site of the single definition; `None` for parameters (which
    /// dominate every site).
    site: Vec<Option<Site>>,
}

fn collect_defs(func: &Function) -> Defs {
    let nregs = func.reg_types.len();
    let mut count = vec![0u32; nregs];
    let mut site: Vec<Option<Site>> = vec![None; nregs];
    for c in count.iter_mut().take(func.params.len()) {
        *c += 1;
    }
    for (bi, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(dst) = inst.dst() {
                count[dst.index()] += 1;
                site[dst.index()] = Some((bi, i));
            }
        }
    }
    Defs { count, site }
}

/// Does the (single) definition of `r` dominate `at`?
fn def_dominates(cfg: &Cfg, defs: &Defs, r: RegId, at: Site) -> bool {
    match defs.site[r.index()] {
        None => true, // parameter: defined at entry, before everything
        Some(site) => cfg.dominates_site(site, at),
    }
}

/// Fold instructions whose operands are dominating singly-defined
/// constants; simplify phis whose arguments all agree.
fn fold_round(func: &mut Function) -> bool {
    let cfg = Cfg::new(func);
    let defs = collect_defs(func);
    // Singly-defined constant registers.
    let mut konst: Vec<Option<Value>> = vec![None; func.reg_types.len()];
    for block in &func.blocks {
        for inst in &block.insts {
            if let Inst::Const { dst, val } = inst {
                if defs.count[dst.index()] == 1 {
                    konst[dst.index()] = Some(*val);
                }
            }
        }
    }
    let lookup = |r: RegId, at: Site| -> Option<Value> {
        match konst[r.index()] {
            Some(v) if def_dominates(&cfg, &defs, r, at) => Some(v),
            _ => None,
        }
    };

    let mut changed = false;
    for b in 0..func.blocks.len() {
        if !cfg.reachable(b) {
            continue;
        }
        let nphis =
            func.blocks[b].insts.iter().take_while(|i| matches!(i, Inst::Phi { .. })).count();
        let pred_end: HashMap<usize, Site> =
            cfg.preds[b].iter().map(|&p| (p, (p, func.blocks[p].insts.len()))).collect();
        for i in 0..func.blocks[b].insts.len() {
            let at: Site = (b, i);
            let new_inst: Option<Inst> = match &func.blocks[b].insts[i] {
                Inst::Mov { dst, src } => {
                    lookup(*src, at).map(|val| Inst::Const { dst: *dst, val })
                }
                Inst::Bin { op, ty, dst, a, b: rb } => match (lookup(*a, at), lookup(*rb, at)) {
                    (Some(x), Some(y)) => eval::eval_bin(*op, *ty, x, y)
                        .ok()
                        .map(|val| Inst::Const { dst: *dst, val }),
                    _ => None,
                },
                Inst::Un { op, ty, dst, a } => lookup(*a, at)
                    .map(|x| Inst::Const { dst: *dst, val: eval::eval_un(*op, *ty, x) }),
                Inst::Cmp { op, ty, dst, a, b: rb } => match (lookup(*a, at), lookup(*rb, at)) {
                    (Some(x), Some(y)) => Some(Inst::Const {
                        dst: *dst,
                        val: Value::Bool(eval::eval_cmp(*op, *ty, x, y)),
                    }),
                    _ => None,
                },
                Inst::Select { dst, cond, a, b: rb, .. } => match lookup(*cond, at) {
                    Some(Value::Bool(c)) => {
                        Some(Inst::Mov { dst: *dst, src: if c { *a } else { *rb } })
                    }
                    _ => None,
                },
                Inst::Cast { dst, a, from, to } => lookup(*a, at)
                    .map(|x| Inst::Const { dst: *dst, val: eval::eval_cast(x, *from, *to) }),
                Inst::Phi { dst, args, .. } => {
                    if args.is_empty() {
                        None // unreachable-pred artifact; DCE's problem
                    } else if let Some(val) = args
                        .iter()
                        .map(|&(p, r)| lookup(r, pred_end[&p.index()]))
                        .try_fold(None::<Value>, |acc, v| match (acc, v?) {
                            (None, v) => Some(Some(v)),
                            (Some(a), v) if value_bits_eq(a, v) => Some(Some(v)),
                            _ => None,
                        })
                        .flatten()
                    {
                        // Every incoming edge delivers the same constant.
                        Some(Inst::Const { dst: *dst, val })
                    } else {
                        let first = args[0].1;
                        let same_reg = args.iter().all(|&(_, r)| r == first);
                        // A phi of one register is a copy — but only if
                        // that register is singly defined (its value
                        // cannot differ per edge) and is not another phi
                        // of this very block (its head position would
                        // read the post-merge value).
                        let first_is_local_phi =
                            func.blocks[b].insts[..nphis].iter().any(|ph| ph.dst() == Some(first));
                        if same_reg
                            && first != *dst
                            && defs.count[first.index()] <= 1
                            && !first_is_local_phi
                        {
                            Some(Inst::Mov { dst: *dst, src: first })
                        } else {
                            None
                        }
                    }
                }
                _ => None,
            };
            if let Some(inst) = new_inst {
                func.blocks[b].insts[i] = inst;
                changed = true;
            }
        }
        if changed {
            // Phi replacements may have left non-phis inside the head
            // zone; restore contiguity (stable, and safe: replacement
            // consts/movs never read a phi destination of this block).
            let head = &mut func.blocks[b].insts[..nphis];
            head.sort_by_key(|i| !matches!(i, Inst::Phi { .. }));
        }
    }
    changed
}

fn value_bits_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::F32(x), Value::F32(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Forward `Mov` copies: a singly-defined destination whose copy
/// dominates every use reads identically from the source, provided the
/// source is itself singly defined (or never defined, i.e. zero-init)
/// with a definition dominating the copy.
fn copy_round(func: &mut Function) -> bool {
    let cfg = Cfg::new(func);
    let defs = collect_defs(func);

    // Use sites per register. Phi arguments read at the *end of the
    // predecessor*; terminator conditions read at the end of their block.
    let mut uses: HashMap<RegId, Vec<Site>> = HashMap::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        let end = (bi, block.insts.len());
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Phi { args, .. } = inst {
                for &(p, r) in args {
                    let p = p.index();
                    uses.entry(r).or_default().push((p, func.blocks[p].insts.len()));
                }
            } else {
                for r in inst.sources() {
                    uses.entry(r).or_default().push((bi, i));
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            uses.entry(*cond).or_default().push(end);
        }
    }

    // Plan substitutions dst -> src, then apply them transitively.
    let mut sub: HashMap<RegId, RegId> = HashMap::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        if !cfg.reachable(bi) {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            let Inst::Mov { dst, src } = inst else {
                continue;
            };
            let (dst, src) = (*dst, *src);
            if dst == src || defs.count[dst.index()] != 1 {
                continue;
            }
            let site: Site = (bi, i);
            let src_ok = match defs.count[src.index()] {
                0 => true, // zero-init: constant everywhere
                1 => def_dominates(&cfg, &defs, src, site),
                _ => false,
            };
            if !src_ok {
                continue;
            }
            let dominated = uses
                .get(&dst)
                .map(|sites| sites.iter().all(|&u| cfg.dominates_site(site, u)))
                .unwrap_or(true);
            if dominated {
                sub.insert(dst, src);
            }
        }
    }
    if sub.is_empty() {
        return false;
    }
    let resolve = |mut r: RegId| -> RegId {
        let mut hops = 0;
        while let Some(&s) = sub.get(&r) {
            r = s;
            hops += 1;
            if hops > sub.len() {
                break; // defensive: substitution cycles are impossible
            }
        }
        r
    };
    let mut changed = false;
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            for_each_src_mut(inst, |r| {
                let n = resolve(*r);
                if n != *r {
                    *r = n;
                    changed = true;
                }
            });
        }
        if let Terminator::Branch { cond, .. } = &mut block.term {
            let n = resolve(*cond);
            if n != *cond {
                *cond = n;
                changed = true;
            }
        }
    }
    // Rewriting may have produced self-moves; drop them (a self-move is
    // a no-op but keeps itself alive through naive liveness).
    for block in &mut func.blocks {
        let before = block.insts.len();
        block.insts.retain(|i| !matches!(i, Inst::Mov { dst, src } if dst == src));
        changed |= block.insts.len() != before;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::BinOp;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    #[test]
    fn cross_block_constants_fold_and_copies_forward() {
        // Entry defines constants; a later block combines them through a
        // mov chain. Block-local folding cannot see across the edge.
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let two = b.const_f64(2.0);
        let three = b.const_f64(3.0);
        let tail = b.create_block();
        b.jump(tail);
        b.switch_to(tail);
        let c2 = b.fresh(Type::Scalar(ScalarType::F64));
        b.mov_into(c2, two);
        let sum = b.bin(BinOp::Add, ScalarType::F64, c2, three);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, sum, ScalarType::F64);
        b.ret();
        let mut f = b.finish().expect("valid");

        ssa_prop_in(&mut f);
        let m = Module::from_functions("t", vec![f]);
        verify_module(&m).expect("verifies");
        let folded = m.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Const { val: Value::F64(v), .. } if *v == 5.0));
        assert!(folded, "2.0 + 3.0 folds across the block boundary");
    }
}
