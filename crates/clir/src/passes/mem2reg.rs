//! Promotion of mutable registers to SSA form (`mem2reg`).
//!
//! The IR is a register machine: the front-end freely redefines a
//! register (loop counters, accumulators, reassigned locals). This pass
//! rewrites every multiply-defined register into a family of
//! singly-defined ones, inserting [`Inst::Phi`] nodes at join points via
//! semi-pruned SSA construction (iterated dominance frontiers of the
//! definition sites, restricted to registers live across block
//! boundaries).
//!
//! Semantics preserved exactly:
//! - Kernel parameters occupy registers `0..n` and act as implicit
//!   definitions at function entry; their ids are pinned (the renaming
//!   stack for a parameter starts as `[param]`), so the ABI register
//!   assignment survives promotion.
//! - A register read on a path with no prior definition observes the
//!   engines' zero-init value. Renaming models this by falling back to
//!   the *original* register id when the stack is empty: after renaming,
//!   the original id is never written, so it holds exactly the zero-init
//!   value of its declared type.
//!
//! The output is phi-bearing IR; the `out-of-ssa` pass lowers it back to
//! executable (phi-free) form before any engine or device sees it.

use super::cfg_simplify::remove_unreachable_in;
use super::dom::Cfg;
use super::util::{for_each_src_mut, set_dst};
use crate::ir::{BlockId, Function, Inst, Module, RegId, Terminator};
use std::collections::HashMap;

/// Run [`mem2reg_in`] over every function of the module.
pub fn mem2reg(mut m: Module) -> Module {
    for f in &mut m.functions {
        mem2reg_in(f);
    }
    m
}

/// Promote every multiply-defined register of `func` to SSA values with
/// phi placement. No-op when the function is already in SSA form or when
/// the entry block has predecessors (the implicit parameter definitions
/// would need phi arguments from outside the CFG).
pub fn mem2reg_in(func: &mut Function) {
    if func.blocks.is_empty() {
        return;
    }
    // Phi argument lists must cover every predecessor; drop unreachable
    // blocks first so renaming (which walks the dominator tree) visits
    // every remaining predecessor.
    remove_unreachable_in(func);

    let cfg = Cfg::new(func);
    if !cfg.preds[0].is_empty() {
        return; // a loop back to the entry: leave the function alone
    }

    // Static definition counts; parameters are implicit entry defs.
    let nregs = func.reg_types.len();
    let mut def_count = vec![0u32; nregs];
    for c in def_count.iter_mut().take(func.params.len()) {
        *c += 1;
    }
    let mut def_blocks: Vec<Vec<usize>> = vec![Vec::new(); nregs];
    for (bi, block) in func.blocks.iter().enumerate() {
        for inst in &block.insts {
            if let Some(dst) = inst.dst() {
                def_count[dst.index()] += 1;
                if !def_blocks[dst.index()].contains(&bi) {
                    def_blocks[dst.index()].push(bi);
                }
            }
        }
    }
    let promoted: Vec<bool> = def_count.iter().map(|&c| c >= 2).collect();
    if !promoted.iter().any(|&p| p) {
        return;
    }
    // Parameters count their implicit entry definition as a def site.
    for (p, blocks) in def_blocks.iter_mut().enumerate().take(func.params.len()) {
        if promoted[p] && !blocks.contains(&0) {
            blocks.push(0);
        }
    }

    // Semi-pruned "globals": promoted registers read in some block before
    // any definition in that block (they are live across an edge, so they
    // may need phis; purely block-local registers never do).
    let mut global = vec![false; nregs];
    for block in &func.blocks {
        let mut defined_here = vec![false; nregs];
        for inst in &block.insts {
            for src in inst.sources() {
                if !defined_here[src.index()] {
                    global[src.index()] = true;
                }
            }
            if let Some(dst) = inst.dst() {
                defined_here[dst.index()] = true;
            }
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            if !defined_here[cond.index()] {
                global[cond.index()] = true;
            }
        }
    }

    // Phi placement at the iterated dominance frontier of each promoted
    // global's definition sites.
    let df = cfg.dominance_frontiers();
    // phi_orig[b] = original register of each phi placed at b's head, in
    // insertion order (ascending register id, for determinism).
    let mut phi_orig: Vec<Vec<RegId>> = vec![Vec::new(); func.blocks.len()];
    for v in 0..nregs {
        if !(promoted[v] && global[v]) {
            continue;
        }
        let mut work = def_blocks[v].clone();
        let mut placed = vec![false; func.blocks.len()];
        while let Some(b) = work.pop() {
            for &d in &df[b] {
                if !placed[d] {
                    placed[d] = true;
                    phi_orig[d].push(RegId(v as u32));
                    work.push(d);
                }
            }
        }
    }
    for (bi, origs) in phi_orig.iter_mut().enumerate() {
        origs.sort_by_key(|r| r.index());
        for (k, &v) in origs.iter().enumerate() {
            let ty = func.reg_types[v.index()];
            func.blocks[bi].insts.insert(k, Inst::Phi { ty, dst: v, args: Vec::new() });
        }
    }

    // Rename along the dominator tree. The stack top is the current SSA
    // name; an empty stack reads the original (zero-init) register.
    let mut stacks: HashMap<RegId, Vec<RegId>> = HashMap::new();
    for (p, &pr) in promoted.iter().enumerate().take(func.params.len()) {
        if pr {
            stacks.insert(RegId(p as u32), vec![RegId(p as u32)]);
        }
    }
    let cur = |stacks: &HashMap<RegId, Vec<RegId>>, v: RegId| -> RegId {
        stacks.get(&v).and_then(|s| s.last().copied()).unwrap_or(v)
    };

    // Explicit DFS with enter/exit actions (pushes are popped on exit).
    enum Step {
        Enter(usize),
        Exit(Vec<RegId>),
    }
    let mut dfs = vec![Step::Enter(0)];
    while let Some(step) = dfs.pop() {
        match step {
            Step::Exit(pushed) => {
                for v in pushed {
                    stacks.get_mut(&v).expect("pushed implies stack").pop();
                }
            }
            Step::Enter(b) => {
                let mut pushed: Vec<RegId> = Vec::new();
                let nphis = phi_orig[b].len();
                // Indexing is deliberate: the body takes disjoint mutable
                // borrows of insts[i] and reg_types in the same iteration.
                #[allow(clippy::needless_range_loop)]
                for i in 0..func.blocks[b].insts.len() {
                    let is_phi = i < nphis;
                    if !is_phi {
                        let inst = &mut func.blocks[b].insts[i];
                        for_each_src_mut(inst, |r| {
                            if promoted[r.index()] {
                                *r = cur(&stacks, *r);
                            }
                        });
                    }
                    let dst = func.blocks[b].insts[i].dst();
                    if let Some(dst) = dst {
                        // Phi destinations always carry a promoted
                        // original; plain defs only rename if promoted.
                        if is_phi || promoted[dst.index()] {
                            let orig = if is_phi { phi_orig[b][i] } else { dst };
                            let fresh = RegId(func.reg_types.len() as u32);
                            func.reg_types.push(func.reg_types[orig.index()]);
                            set_dst(&mut func.blocks[b].insts[i], fresh);
                            stacks.entry(orig).or_default().push(fresh);
                            pushed.push(orig);
                        }
                    }
                }
                if let Terminator::Branch { cond, .. } = &mut func.blocks[b].term {
                    if promoted[cond.index()] {
                        *cond = cur(&stacks, *cond);
                    }
                }
                // Fill successor phi arguments with the values live at
                // the end of this block.
                for si in 0..cfg.succs[b].len() {
                    let s = cfg.succs[b][si];
                    for (k, &v) in phi_orig[s].iter().enumerate() {
                        let arg = cur(&stacks, v);
                        if let Inst::Phi { args, .. } = &mut func.blocks[s].insts[k] {
                            if !args.iter().any(|&(p, _)| p == BlockId(b as u32)) {
                                args.push((BlockId(b as u32), arg));
                            }
                        }
                    }
                }
                dfs.push(Step::Exit(pushed));
                // Children in reverse so the DFS visits them in order.
                for &c in cfg.children[b].iter().rev() {
                    dfs.push(Step::Enter(c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use crate::ir::{BinOp, CmpOp};
    use crate::mathlib::ExactMath;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    fn run_one(func: &Function) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut wg =
            WorkGroupRun::new(func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    /// out[0] = sum of 1..=4 accumulated through a loop with two
    /// multiply-defined registers (counter and accumulator).
    fn loop_function() -> Function {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let acc = b.const_f64(0.0);
        let i0 = b.const_i64(0);
        let i = b.fresh(Type::Scalar(ScalarType::I64));
        let a = b.fresh(Type::Scalar(ScalarType::F64));
        b.mov_into(i, i0);
        b.mov_into(a, acc);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(head);
        b.switch_to(head);
        let four = b.const_i64(4);
        let done = b.cmp(CmpOp::Ge, ScalarType::I64, i, four);
        b.branch(done, exit, body);
        b.switch_to(body);
        let one = b.const_i64(1);
        let i2 = b.bin(BinOp::Add, ScalarType::I64, i, one);
        b.mov_into(i, i2);
        let fi = b.cast(i, ScalarType::I64, ScalarType::F64);
        let a2 = b.fadd(a, fi, ScalarType::F64);
        b.mov_into(a, a2);
        b.jump(head);
        b.switch_to(exit);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, a, ScalarType::F64);
        b.ret();
        b.finish().expect("valid")
    }

    fn multidef_regs(f: &Function) -> usize {
        let mut defs = vec![0u32; f.reg_types.len()];
        for block in &f.blocks {
            for inst in &block.insts {
                if let Some(d) = inst.dst() {
                    defs[d.index()] += 1;
                }
            }
        }
        defs.iter().filter(|&&c| c >= 2).count()
    }

    #[test]
    fn loop_accumulator_is_promoted_with_phis_and_result_is_preserved() {
        let f = loop_function();
        let expected = run_one(&f);
        assert_eq!(expected, 10.0);
        assert!(multidef_regs(&f) >= 2, "loop has multiply-defined registers");

        let mut g = f.clone();
        mem2reg_in(&mut g);
        let m = Module::from_functions("t", vec![g]);
        verify_module(&m).expect("phi-bearing IR verifies");
        let g = &m.functions[0];
        assert_eq!(multidef_regs(g), 0, "every register is singly defined");
        let phis = g
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Phi { .. }))
            .count();
        assert!(phis >= 2, "loop head merges counter and accumulator, got {phis}");
    }

    #[test]
    fn straight_line_reassignment_promotes_without_phis() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let x = b.fresh(Type::Scalar(ScalarType::F64));
        let one = b.const_f64(1.0);
        b.mov_into(x, one);
        let two = b.const_f64(2.0);
        let sum = b.fadd(x, two, ScalarType::F64);
        b.mov_into(x, sum);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, x, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid");

        let mut g = f.clone();
        mem2reg_in(&mut g);
        let m = Module::from_functions("t", vec![g.clone()]);
        verify_module(&m).expect("verifies");
        assert_eq!(multidef_regs(&g), 0);
        assert!(g.blocks.iter().flat_map(|b| &b.insts).all(|i| !matches!(i, Inst::Phi { .. })));
        assert_eq!(run_one(&g), 3.0);
    }

    #[test]
    fn read_before_any_definition_still_observes_zero_init() {
        // x is read before its only defs on the not-taken path: the
        // promoted form must still produce 0.0 for that read.
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        let v = b.load(slot, ScalarType::F64);
        let x = b.fresh(Type::Scalar(ScalarType::F64));
        let zero = b.const_f64(0.0);
        let c = b.cmp(CmpOp::Gt, ScalarType::F64, v, zero); // false for v = 0
        let assign = b.create_block();
        let join = b.create_block();
        b.branch(c, assign, join);
        b.switch_to(assign);
        let seven = b.const_f64(7.0);
        b.mov_into(x, seven);
        let eight = b.const_f64(8.0);
        b.mov_into(x, eight);
        b.jump(join);
        b.switch_to(join);
        b.store(slot, x, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid");
        assert_eq!(run_one(&f), 0.0, "x is zero-init on the fallthrough path");

        let mut g = f.clone();
        mem2reg_in(&mut g);
        let m = Module::from_functions("t", vec![g.clone()]);
        verify_module(&m).expect("verifies");
        assert_eq!(multidef_regs(&g), 0);
    }
}
