//! Phi-aware CFG simplification.
//!
//! Iterates four rewrites to a fixpoint:
//!
//! 1. **Branch folding** — `br c, t, t` becomes `jump t`; a branch whose
//!    condition provably holds a compile-time boolean (block-locally, or
//!    via a dominating singly-defined constant) becomes a jump, and the
//!    dead edge's phi arguments are pruned.
//! 2. **Unreachable-block removal** — blocks the entry cannot reach are
//!    dropped, block ids are remapped, and phi arguments from removed
//!    predecessors are pruned.
//! 3. **Single-predecessor phi conversion** — a phi in a block with one
//!    predecessor is a plain copy; it becomes a `Mov` so later merges
//!    see phi-free blocks.
//! 4. **Straight-line merge / empty-block skip** — a block whose only
//!    successor has no other predecessors absorbs it; an empty block
//!    that just jumps on is skipped (only when the target carries no
//!    phis, so argument lists never need re-deriving).
//!
//! Unlike the legacy `simplify_branches_in` (kept for the `standard`
//! pipeline), every rewrite here maintains the phi invariants checked by
//! the verifier, so the pass is safe anywhere in the SSA pipeline.

use super::dom::Cfg;
use crate::ir::{BlockId, Function, Inst, Module, RegId, Terminator};
use crate::value::Value;
use std::collections::HashMap;

/// Run [`cfg_simplify_in`] over every function of the module.
pub fn cfg_simplify(mut m: Module) -> Module {
    for f in &mut m.functions {
        cfg_simplify_in(f);
    }
    m
}

/// Simplify the control-flow graph of one function (see module docs).
pub fn cfg_simplify_in(func: &mut Function) {
    if func.blocks.is_empty() {
        return;
    }
    loop {
        let mut changed = false;
        changed |= fold_branches(func);
        changed |= remove_unreachable_in(func);
        changed |= single_pred_phis_to_movs(func);
        changed |= merge_straight_line(func);
        changed |= skip_empty_blocks(func);
        if !changed {
            return;
        }
    }
}

/// The constant (if any) a register holds at a block's terminator,
/// derived from a forward block-local scan (same discipline as
/// `fold_constants_in`: any other write kills the knowledge).
fn local_known_at_term(func: &Function, b: usize) -> HashMap<RegId, Value> {
    let mut known: HashMap<RegId, Value> = HashMap::new();
    for inst in &func.blocks[b].insts {
        if let Some(dst) = inst.dst() {
            match inst {
                Inst::Const { val, .. } => {
                    known.insert(dst, *val);
                }
                Inst::Mov { src, .. } => match known.get(src).copied() {
                    Some(v) => {
                        known.insert(dst, v);
                    }
                    None => {
                        known.remove(&dst);
                    }
                },
                _ => {
                    known.remove(&dst);
                }
            }
        }
    }
    known
}

/// Fold equal-arm and constant-condition branches into jumps, pruning
/// phi arguments along the removed edge.
fn fold_branches(func: &mut Function) -> bool {
    let cfg = Cfg::new(func);
    // Singly-defined boolean constants, for conditions defined in another
    // block (valid wherever the definition dominates).
    let nregs = func.reg_types.len();
    let mut def_count = vec![0u32; nregs];
    for c in def_count.iter_mut().take(func.params.len()) {
        *c += 1;
    }
    let mut const_def: Vec<Option<(Value, (usize, usize))>> = vec![None; nregs];
    for (bi, block) in func.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(dst) = inst.dst() {
                def_count[dst.index()] += 1;
                if let Inst::Const { val, .. } = inst {
                    const_def[dst.index()] = Some((*val, (bi, i)));
                }
            }
        }
    }

    let mut changed = false;
    for b in 0..func.blocks.len() {
        let Terminator::Branch { cond, then_bb, else_bb } = func.blocks[b].term else {
            continue;
        };
        if then_bb == else_bb {
            func.blocks[b].term = Terminator::Jump(then_bb);
            changed = true;
            continue;
        }
        let local = local_known_at_term(func, b).get(&cond).copied();
        let global = match const_def[cond.index()] {
            Some((val, site))
                if def_count[cond.index()] == 1
                    && cfg.dominates_site(site, (b, func.blocks[b].insts.len())) =>
            {
                Some(val)
            }
            _ => None,
        };
        if let Some(Value::Bool(taken)) = local.or(global) {
            let (to, dead) = if taken { (then_bb, else_bb) } else { (else_bb, then_bb) };
            func.blocks[b].term = Terminator::Jump(to);
            prune_phi_args(func, dead.index(), b);
            changed = true;
        }
    }
    changed
}

/// Remove phi arguments in block `b` coming from predecessor `pred`.
fn prune_phi_args(func: &mut Function, b: usize, pred: usize) {
    for inst in &mut func.blocks[b].insts {
        if let Inst::Phi { args, .. } = inst {
            args.retain(|&(p, _)| p.index() != pred);
        }
    }
}

/// Drop blocks unreachable from the entry, remapping block ids in
/// terminators and phi arguments and pruning phi arguments from removed
/// predecessors. Returns whether anything was removed. Shared with
/// `mem2reg`, which needs a fully-reachable CFG before renaming.
pub(crate) fn remove_unreachable_in(func: &mut Function) -> bool {
    let mut reachable = vec![false; func.blocks.len()];
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for succ in func.blocks[b].term.successors() {
            work.push(succ.index());
        }
    }
    if reachable.iter().all(|&r| r) {
        return false;
    }
    let mut remap: HashMap<usize, u32> = HashMap::new();
    let mut kept = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap.insert(i, kept);
            kept += 1;
        }
    }
    let blocks = std::mem::take(&mut func.blocks);
    func.blocks = blocks
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, mut block)| {
            for inst in &mut block.insts {
                if let Inst::Phi { args, .. } = inst {
                    args.retain(|&(p, _)| reachable[p.index()]);
                    for (p, _) in args.iter_mut() {
                        *p = BlockId(remap[&p.index()]);
                    }
                }
            }
            match &mut block.term {
                Terminator::Jump(t) => *t = BlockId(remap[&t.index()]),
                Terminator::Branch { then_bb, else_bb, .. } => {
                    *then_bb = BlockId(remap[&then_bb.index()]);
                    *else_bb = BlockId(remap[&else_bb.index()]);
                }
                Terminator::Return => {}
            }
            block
        })
        .collect();
    true
}

/// Convert phis in single-predecessor blocks to plain copies.
///
/// Safe sequentially: in a reachable single-predecessor block no phi
/// argument can name another phi destination of the same block (that
/// would require the block to dominate its only predecessor, which would
/// make both unreachable).
fn single_pred_phis_to_movs(func: &mut Function) -> bool {
    let cfg = Cfg::new(func);
    let mut changed = false;
    for b in 0..func.blocks.len() {
        if cfg.preds[b].len() != 1 {
            continue;
        }
        for inst in &mut func.blocks[b].insts {
            if let Inst::Phi { dst, args, .. } = inst {
                assert_eq!(args.len(), 1, "verified phi has one arg per predecessor");
                *inst = Inst::Mov { dst: *dst, src: args[0].1 };
                changed = true;
            }
        }
    }
    changed
}

/// Merge `b -> s` when `b` ends in `jump s` and `s` has no other
/// predecessor. `s`'s instructions and terminator move into `b`; phi
/// arguments in `s`'s successors are relabelled from `s` to `b`; `s` is
/// left empty and unreachable (removed on the next fixpoint round).
fn merge_straight_line(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::new(func);
        let mut merged = false;
        for b in 0..func.blocks.len() {
            if !cfg.reachable(b) {
                continue;
            }
            let Terminator::Jump(s) = func.blocks[b].term else {
                continue;
            };
            let s = s.index();
            if s == 0 || s == b || cfg.preds[s] != vec![b] {
                continue;
            }
            if func.blocks[s].insts.iter().any(|i| matches!(i, Inst::Phi { .. })) {
                continue; // converted to movs on a later round
            }
            let mut insts = std::mem::take(&mut func.blocks[s].insts);
            let term = std::mem::replace(&mut func.blocks[s].term, Terminator::Return);
            func.blocks[b].insts.append(&mut insts);
            func.blocks[b].term = term;
            // `s`'s former successors now see `b` as the predecessor.
            for succ in func.blocks[b].term.successors() {
                for inst in &mut func.blocks[succ.index()].insts {
                    if let Inst::Phi { args, .. } = inst {
                        for (p, _) in args.iter_mut() {
                            if p.index() == s {
                                *p = BlockId(b as u32);
                            }
                        }
                    }
                }
            }
            merged = true;
            changed = true;
            break; // CFG facts are stale; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Retarget edges through empty forwarding blocks (`jump`-only, no
/// instructions). Skipped when the final target has phis: the forwarded
/// predecessors would need freshly derived argument entries.
fn skip_empty_blocks(func: &mut Function) -> bool {
    let mut changed = false;
    for e in 1..func.blocks.len() {
        if !func.blocks[e].insts.is_empty() {
            continue;
        }
        let Terminator::Jump(t) = func.blocks[e].term else {
            continue;
        };
        let t = t.index();
        if t == e || func.blocks[t].insts.iter().any(|i| matches!(i, Inst::Phi { .. })) {
            continue;
        }
        // Never forward into another empty jump-only block: cycles of
        // empty blocks (a legal spin loop) would make retargeting
        // oscillate forever.
        if func.blocks[t].insts.is_empty() && matches!(func.blocks[t].term, Terminator::Jump(_)) {
            continue;
        }
        for b in 0..func.blocks.len() {
            if b == e {
                continue;
            }
            match &mut func.blocks[b].term {
                Terminator::Jump(x) if x.index() == e => {
                    *x = BlockId(t as u32);
                    changed = true;
                }
                Terminator::Branch { then_bb, else_bb, .. } => {
                    if then_bb.index() == e {
                        *then_bb = BlockId(t as u32);
                        changed = true;
                    }
                    if else_bb.index() == e {
                        *else_bb = BlockId(t as u32);
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    /// Chain entry -> a -> b -> ret with an unreachable arm, for the
    /// merge + unreachable rewrites.
    #[test]
    fn chain_collapses_to_one_block() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let a_bb = b.create_block();
        let b_bb = b.create_block();
        b.jump(a_bb);
        b.switch_to(a_bb);
        let one = b.const_f64(1.0);
        b.jump(b_bb);
        b.switch_to(b_bb);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, one, ScalarType::F64);
        b.ret();
        let mut f = b.finish().expect("valid");
        assert_eq!(f.blocks.len(), 3);
        cfg_simplify_in(&mut f);
        let m = Module::from_functions("t", vec![f]);
        verify_module(&m).expect("verifies");
        assert_eq!(m.functions[0].blocks.len(), 1, "straight line merges into the entry");
    }

    #[test]
    fn cross_block_constant_condition_folds_the_branch() {
        // The condition is a constant defined in the entry; the branch
        // sits in a later block, out of reach of block-local folding.
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let c = b.const_bool(false);
        let mid = b.create_block();
        let dead = b.create_block();
        let live = b.create_block();
        b.jump(mid);
        b.switch_to(mid);
        b.branch(c, dead, live);
        b.switch_to(dead);
        b.ret();
        b.switch_to(live);
        let three = b.const_f64(3.0);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, three, ScalarType::F64);
        b.ret();
        let mut f = b.finish().expect("valid");
        cfg_simplify_in(&mut f);
        let m = Module::from_functions("t", vec![f]);
        verify_module(&m).expect("verifies");
        let f = &m.functions[0];
        assert!(f.blocks.iter().all(|b| !matches!(b.term, Terminator::Branch { .. })));
        assert!(
            f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i, Inst::Store { .. })),
            "live arm survives"
        );
    }
}
