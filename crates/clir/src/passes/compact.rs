//! Dense register renumbering after the SSA round trip.
//!
//! `mem2reg` and `out-of-ssa` allocate fresh registers freely; once DCE
//! has settled, many ids are unreferenced. This pass renumbers every
//! *referenced* register densely, preserving relative order (parameters
//! keep their pinned `0..n` ABI slots) and each register's declared
//! type — the type table drives zero-init semantics, so an unwritten
//! register must keep reading the zero value of its original type.
//! Engines size their register files from `reg_types`, so compaction
//! directly shrinks every per-work-item frame.

use super::util::{for_each_src_mut, set_dst};
use crate::ir::{Function, Module, RegId, Terminator};

/// Run [`compact_regs_in`] over every function of the module.
pub fn compact_regs(mut m: Module) -> Module {
    for f in &mut m.functions {
        compact_regs_in(f);
    }
    m
}

/// Renumber referenced registers densely, dropping unreferenced ids
/// from the type table.
pub fn compact_regs_in(func: &mut Function) {
    let nregs = func.reg_types.len();
    let mut used = vec![false; nregs];
    used[..func.params.len()].fill(true);
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            for_each_src_mut(inst, |r| used[r.index()] = true);
            if let Some(d) = inst.dst() {
                used[d.index()] = true;
            }
        }
        if let Terminator::Branch { cond, .. } = &block.term {
            used[cond.index()] = true;
        }
    }
    if used.iter().all(|&u| u) {
        return;
    }
    let mut map = vec![u32::MAX; nregs];
    let mut new_types = Vec::with_capacity(nregs);
    for (old, &u) in used.iter().enumerate() {
        if u {
            map[old] = new_types.len() as u32;
            new_types.push(func.reg_types[old]);
        }
    }
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            for_each_src_mut(inst, |r| *r = RegId(map[r.index()]));
            if let Some(d) = inst.dst() {
                set_dst(inst, RegId(map[d.index()]));
            }
        }
        if let Terminator::Branch { cond, .. } = &mut block.term {
            *cond = RegId(map[cond.index()]);
        }
    }
    func.reg_types = new_types;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    #[test]
    fn unreferenced_registers_are_dropped_and_params_stay_pinned() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        // Burn some register ids that nothing ever references.
        for _ in 0..5 {
            b.fresh(Type::Scalar(ScalarType::F64));
        }
        let one = b.const_f64(1.0);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, one, ScalarType::F64);
        b.ret();
        let mut f = b.finish().expect("valid");
        let before = f.reg_types.len();
        compact_regs_in(&mut f);
        assert_eq!(f.reg_types.len(), before - 5);
        assert_eq!(f.params.len(), 1);
        let m = Module::from_functions("t", vec![f]);
        verify_module(&m).expect("verifies after renumbering");
    }
}
