//! Small shared helpers for passes that rewrite register operands.

use crate::ir::{Inst, RegId};

/// Visit every *source* (read) register of `inst` mutably, including phi
/// arguments. Destinations are not visited.
pub(crate) fn for_each_src_mut(inst: &mut Inst, mut f: impl FnMut(&mut RegId)) {
    match inst {
        Inst::Const { .. } | Inst::WorkItem { .. } | Inst::Barrier => {}
        Inst::Mov { src, .. } => f(src),
        Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
            f(a);
            f(b);
        }
        Inst::Un { a, .. } | Inst::Cast { a, .. } => f(a),
        Inst::Select { cond, a, b, .. } => {
            f(cond);
            f(a);
            f(b);
        }
        Inst::Call { args, .. } => {
            for r in args.iter_mut() {
                f(r);
            }
        }
        Inst::Gep { base, index, .. } => {
            f(base);
            f(index);
        }
        Inst::Load { ptr, .. } => f(ptr),
        Inst::Store { ptr, val, .. } => {
            f(ptr);
            f(val);
        }
        Inst::PipeRead { pipe, .. } => f(pipe),
        Inst::PipeWrite { pipe, val, .. } => {
            f(pipe);
            f(val);
        }
        Inst::Phi { args, .. } => {
            for (_, r) in args.iter_mut() {
                f(r);
            }
        }
    }
}

/// Overwrite the destination register of a value-producing instruction.
/// Panics on `Store`/`Barrier`, which produce no value.
pub(crate) fn set_dst(inst: &mut Inst, new: RegId) {
    match inst {
        Inst::Const { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Select { dst, .. }
        | Inst::Cast { dst, .. }
        | Inst::Call { dst, .. }
        | Inst::WorkItem { dst, .. }
        | Inst::Gep { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::PipeRead { dst, .. }
        | Inst::Phi { dst, .. } => *dst = new,
        Inst::Store { .. } | Inst::Barrier | Inst::PipeWrite { .. } => {
            unreachable!("instruction has no destination")
        }
    }
}
