//! Control-flow and dominator analysis shared by the SSA passes.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
//! over reverse postorder, plus dominance frontiers and a dominator tree
//! with preorder/postorder numbering for O(1) `dominates` queries. The
//! functions this runs on are tiny (tens of blocks), so the simple
//! iterative formulation beats Lengauer–Tarjan on both code size and
//! constant factors.

use crate::ir::Function;

/// Control-flow facts about one function: predecessor/successor lists
/// (deduplicated), reachability from the entry block, and the dominator
/// tree of the reachable subgraph.
pub(crate) struct Cfg {
    /// Deduplicated predecessors per block (indices into `blocks`).
    pub preds: Vec<Vec<usize>>,
    /// Deduplicated successors per block.
    pub succs: Vec<Vec<usize>>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<usize>,
    /// `rpo_pos[b]` = position of `b` in `rpo`, `usize::MAX` if
    /// unreachable.
    pub rpo_pos: Vec<usize>,
    /// Immediate dominator per block (entry's idom is itself;
    /// `usize::MAX` for unreachable blocks).
    pub idom: Vec<usize>,
    /// Dominator-tree children per block, in rpo order.
    pub children: Vec<Vec<usize>>,
    /// Dominator-tree preorder entry/exit numbering for `dominates`.
    pre: Vec<usize>,
    post: Vec<usize>,
}

impl Cfg {
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, block) in func.blocks.iter().enumerate() {
            for s in block.term.successors() {
                let s = s.index();
                if !succs[b].contains(&s) {
                    succs[b].push(s);
                    preds[s].push(b);
                }
            }
        }

        // Postorder DFS from the entry, reversed.
        let mut rpo = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // (block, next-successor-index) explicit DFS stack.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        seen[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let s = succs[b][*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                rpo.push(b);
                stack.pop();
            }
        }
        rpo.reverse();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }

        // Iterative idom computation (Cooper–Harvey–Kennedy).
        let mut idom = vec![usize::MAX; n];
        idom[0] = 0;
        let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a];
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &preds[b] {
                    if idom[p] == usize::MAX {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_pos, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        // Dominator-tree children and preorder numbering.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &b in rpo.iter().skip(1) {
            children[idom[b]].push(b);
        }
        let mut pre = vec![0usize; n];
        let mut post = vec![0usize; n];
        let mut clock = 0usize;
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        pre[0] = {
            clock += 1;
            clock
        };
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < children[b].len() {
                let c = children[b][*i];
                *i += 1;
                clock += 1;
                pre[c] = clock;
                stack.push((c, 0));
            } else {
                clock += 1;
                post[b] = clock;
                stack.pop();
            }
        }

        Cfg { preds, succs, rpo, rpo_pos, idom, children, pre, post }
    }

    /// Is block `b` reachable from the entry?
    pub fn reachable(&self, b: usize) -> bool {
        self.rpo_pos[b] != usize::MAX
    }

    /// Does block `a` dominate block `b`? (Reflexive; false if either is
    /// unreachable.)
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.reachable(a)
            && self.reachable(b)
            && self.pre[a] <= self.pre[b]
            && self.post[b] <= self.post[a]
    }

    /// Does program point `a` dominate program point `b`? A point is
    /// `(block, index)` where `index` ranges over `0..=insts.len()`
    /// (the terminator sits at `insts.len()`). Strict within a block:
    /// a point does not dominate itself's earlier uses.
    pub fn dominates_site(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if a.0 == b.0 {
            a.1 < b.1
        } else {
            self.dominates(a.0, b.0)
        }
    }

    /// Dominance frontier per block (reachable blocks only).
    pub fn dominance_frontiers(&self) -> Vec<Vec<usize>> {
        let n = self.preds.len();
        let mut df: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &b in &self.rpo {
            if self.preds[b].len() < 2 {
                continue;
            }
            for &p in &self.preds[b] {
                if !self.reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != self.idom[b] {
                    if !df[runner].contains(&b) {
                        df[runner].push(b);
                    }
                    runner = self.idom[runner];
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::CmpOp;
    use crate::types::{AddressSpace, ScalarType, Type};

    /// Diamond: b0 -> {b1, b2} -> b3.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        let v = b.load(slot, ScalarType::F64);
        let c = b.cmp(CmpOp::Gt, ScalarType::F64, v, v);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret();
        b.finish().expect("valid")
    }

    #[test]
    fn diamond_dominators_and_frontiers() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.idom[1], 0);
        assert_eq!(cfg.idom[2], 0);
        assert_eq!(cfg.idom[3], 0, "join is dominated by the fork, not an arm");
        assert!(cfg.dominates(0, 3));
        assert!(!cfg.dominates(1, 3));
        assert!(cfg.dominates(2, 2));
        let df = cfg.dominance_frontiers();
        assert_eq!(df[1], vec![3]);
        assert_eq!(df[2], vec![3]);
        assert!(df[0].is_empty());
    }

    #[test]
    fn site_dominance_is_strict_within_a_block() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert!(cfg.dominates_site((0, 0), (0, 1)));
        assert!(!cfg.dominates_site((0, 1), (0, 1)));
        assert!(cfg.dominates_site((0, 5), (3, 0)));
        assert!(!cfg.dominates_site((1, 0), (3, 0)));
    }
}
