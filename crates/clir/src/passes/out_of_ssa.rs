//! Lowering from phi-bearing SSA back to executable (phi-free) IR.
//!
//! Each block's phis describe one *parallel copy* per incoming edge:
//! entering `s` from `p`, every phi destination simultaneously receives
//! its argument for `p`. Lowering materialises that copy set as `Mov`
//! instructions:
//!
//! - on a non-critical edge (the predecessor has a single successor) the
//!   copies go at the end of the predecessor;
//! - a critical edge (predecessor branches to several targets) is split
//!   with a fresh block holding the copies and a jump to `s`, so the
//!   other targets never observe them;
//! - the parallel copy is sequenced with the standard worklist
//!   algorithm, breaking swap/rotation cycles by parking one overwritten
//!   destination in a fresh temporary register.
//!
//! The result contains no [`Inst::Phi`] and is what the verifier hands
//! to devices and engines.

use crate::ir::{Block, BlockId, Function, Inst, Module, RegId, Terminator};
use std::collections::HashMap;

/// Run [`out_of_ssa_in`] over every function of the module.
pub fn out_of_ssa(mut m: Module) -> Module {
    for f in &mut m.functions {
        out_of_ssa_in(f);
    }
    m
}

/// Replace every phi with explicit copies on the incoming edges.
pub fn out_of_ssa_in(func: &mut Function) {
    // Strip phis first, recording (destination, per-edge source) sets.
    type PhiCopies = Vec<(RegId, Vec<(usize, RegId)>)>;
    let mut work: Vec<(usize, PhiCopies)> = Vec::new();
    for s in 0..func.blocks.len() {
        let nphis =
            func.blocks[s].insts.iter().take_while(|i| matches!(i, Inst::Phi { .. })).count();
        if nphis == 0 {
            continue;
        }
        let phis = func.blocks[s]
            .insts
            .drain(..nphis)
            .map(|i| match i {
                Inst::Phi { dst, args, .. } => {
                    (dst, args.into_iter().map(|(p, r)| (p.index(), r)).collect())
                }
                _ => unreachable!("head zone is all phis"),
            })
            .collect();
        work.push((s, phis));
    }

    for (s, phis) in work {
        let mut per_pred: HashMap<usize, Vec<(RegId, RegId)>> = HashMap::new();
        for (dst, args) in &phis {
            for &(p, src) in args {
                per_pred.entry(p).or_default().push((*dst, src));
            }
        }
        let mut preds: Vec<usize> = per_pred.keys().copied().collect();
        preds.sort_unstable();
        for p in preds {
            let copies = sequence(per_pred.remove(&p).expect("keyed above"), func);
            if copies.is_empty() {
                continue;
            }
            let succs = func.blocks[p].term.successors();
            let distinct: Vec<_> = {
                let mut d: Vec<usize> = succs.iter().map(|b| b.index()).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            if distinct.len() <= 1 {
                func.blocks[p].insts.extend(copies);
            } else {
                // Critical edge: split it so the other successor never
                // executes the copies.
                let e = BlockId(func.blocks.len() as u32);
                func.blocks
                    .push(Block { insts: copies, term: Terminator::Jump(BlockId(s as u32)) });
                match &mut func.blocks[p].term {
                    Terminator::Jump(t) => {
                        if t.index() == s {
                            *t = e;
                        }
                    }
                    Terminator::Branch { then_bb, else_bb, .. } => {
                        if then_bb.index() == s {
                            *then_bb = e;
                        }
                        if else_bb.index() == s {
                            *else_bb = e;
                        }
                    }
                    Terminator::Return => {}
                }
            }
        }
    }
}

/// Sequence one parallel copy into `Mov`s, allocating temporaries to
/// break cycles. Self-copies vanish.
fn sequence(copies: Vec<(RegId, RegId)>, func: &mut Function) -> Vec<Inst> {
    let mut pending: Vec<(RegId, RegId)> = copies.into_iter().filter(|(d, s)| d != s).collect();
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        if let Some(pos) = pending.iter().position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d))
        {
            let (dst, src) = pending.swap_remove(pos);
            out.push(Inst::Mov { dst, src });
        } else {
            // Every destination is still needed as a source: a cycle.
            // Park the first destination's current value in a temp.
            let (d, _) = pending[0];
            let t = RegId(func.reg_types.len() as u32);
            func.reg_types.push(func.reg_types[d.index()]);
            out.push(Inst::Mov { dst: t, src: d });
            for (_, s) in pending.iter_mut() {
                if *s == d {
                    *s = t;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
    use crate::ir::{BinOp, CmpOp};
    use crate::mathlib::ExactMath;
    use crate::passes::mem2reg_in;
    use crate::types::{AddressSpace, ScalarType, Type};
    use crate::verify::verify_module;

    fn run_one(func: &Function) -> f64 {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut wg =
            WorkGroupRun::new(func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        wg.run(&mut mem, &ExactMath).expect("runs");
        mem.read_f64(buf, 0)
    }

    /// A loop that *swaps* two registers each iteration — the canonical
    /// parallel-copy cycle — plus an accumulator.
    fn swap_loop() -> Function {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let x = b.fresh(Type::Scalar(ScalarType::F64));
        let y = b.fresh(Type::Scalar(ScalarType::F64));
        let i = b.fresh(Type::Scalar(ScalarType::I64));
        let one_f = b.const_f64(1.0);
        let two_f = b.const_f64(2.0);
        let zero = b.const_i64(0);
        b.mov_into(x, one_f);
        b.mov_into(y, two_f);
        b.mov_into(i, zero);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(head);
        b.switch_to(head);
        let three = b.const_i64(3);
        let done = b.cmp(CmpOp::Ge, ScalarType::I64, i, three);
        b.branch(done, exit, body);
        b.switch_to(body);
        // (x, y) = (y, x) — a genuine swap, needs a temp after lowering.
        let tx = b.fresh(Type::Scalar(ScalarType::F64));
        b.mov_into(tx, x);
        b.mov_into(x, y);
        b.mov_into(y, tx);
        let one = b.const_i64(1);
        let i2 = b.bin(BinOp::Add, ScalarType::I64, i, one);
        b.mov_into(i, i2);
        b.jump(head);
        b.switch_to(exit);
        // out[0] = x + 2*y: distinguishes (1,2)/(2,1) orderings.
        let twoc = b.const_f64(2.0);
        let y2 = b.fmul(twoc, y, ScalarType::F64);
        let sum = b.fadd(x, y2, ScalarType::F64);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, sum, ScalarType::F64);
        b.ret();
        b.finish().expect("valid")
    }

    #[test]
    fn roundtrip_through_ssa_preserves_swap_loop_semantics() {
        let f = swap_loop();
        let expected = run_one(&f);
        // 3 swaps: (1,2)->(2,1)->(1,2)->(2,1); 2 + 2*1 = 4.
        assert_eq!(expected, 4.0);

        let mut g = f.clone();
        mem2reg_in(&mut g);
        let m = Module::from_functions("t", vec![g]);
        verify_module(&m).expect("ssa form verifies");
        let mut g = m.functions.into_iter().next().unwrap();
        out_of_ssa_in(&mut g);
        let m = Module::from_functions("t", vec![g]);
        verify_module(&m).expect("lowered form verifies");
        let g = &m.functions[0];
        assert!(
            g.blocks.iter().flat_map(|b| &b.insts).all(|i| !matches!(i, Inst::Phi { .. })),
            "no phis survive lowering"
        );
        assert_eq!(run_one(g), expected, "bit-identical result after the round trip");
    }
}
