//! On-chip FIFO channels (OpenCL `pipe` objects).
//!
//! A [`PipeHub`] owns every pipe visible to one execution context and is
//! threaded through the engines' resumable entry points. The engines
//! never block: a pipe op that cannot make progress (read from empty,
//! write to full) suspends the work-item and surfaces as
//! [`RunOutcome::Stalled`](crate::interp::RunOutcome::Stalled) from the
//! engine, leaving the scheduler (a launch-graph co-scheduler in
//! `bop-ocl`, or the paired kernel in a test harness) to resume it once
//! the peer has made progress. The successful-op counter lets that
//! scheduler detect deadlock deterministically: a full resume round with
//! no new successful op can never unblock.
//!
//! Element values are stored bit-packed in 64-bit cells (the same
//! encoding as the bytecode engines), so FIFO contents are engine
//! independent by construction.

use std::collections::VecDeque;

use crate::types::ScalarType;
use crate::value::Value;

/// Pack a scalar [`Value`] into a 64-bit FIFO cell. The encoding is the
/// same one the bytecode engines use for register cells, so a value
/// written by any engine reads back identically in every other.
pub fn encode_value(v: Value) -> u64 {
    match v {
        Value::Bool(b) => b as u64,
        Value::I32(x) => x as u32 as u64,
        Value::I64(x) => x as u64,
        Value::F32(x) => x.to_bits() as u64,
        Value::F64(x) => x.to_bits(),
        Value::Ptr(_) => unreachable!("pointers cannot travel through pipes"),
    }
}

/// Unpack a 64-bit FIFO cell back into a typed scalar [`Value`].
pub fn decode_value(ty: ScalarType, bits: u64) -> Value {
    match ty {
        ScalarType::Bool => Value::Bool(bits != 0),
        ScalarType::I32 => Value::I32(bits as u32 as i32),
        ScalarType::I64 => Value::I64(bits as i64),
        ScalarType::F32 => Value::F32(f32::from_bits(bits as u32)),
        ScalarType::F64 => Value::F64(f64::from_bits(bits)),
    }
}

/// One FIFO channel: fixed element type, bounded depth, bit-packed data.
#[derive(Debug, Clone)]
pub struct PipeState {
    /// Element type every read/write must match.
    pub elem: ScalarType,
    /// Capacity in elements; writes past it stall.
    pub depth: usize,
    /// Queued element bit patterns, oldest first.
    data: VecDeque<u64>,
}

impl PipeState {
    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// All pipes of one execution context, keyed by pipe id.
///
/// Ids are dense and allocated by the creator (the `bop-ocl` context, or
/// a test harness); the hub itself only validates that an id exists and
/// that the element type matches.
#[derive(Debug, Default)]
pub struct PipeHub {
    pipes: Vec<PipeState>,
    total_ops: u64,
}

impl PipeHub {
    /// Create a pipe with the given element type and capacity, returning
    /// its id. Depth 0 is clamped to 1 (a zero-capacity blocking FIFO
    /// could never transfer anything).
    pub fn create(&mut self, elem: ScalarType, depth: usize) -> u32 {
        let id = self.pipes.len() as u32;
        self.pipes.push(PipeState { elem, depth: depth.max(1), data: VecDeque::new() });
        id
    }

    /// The pipe with id `id`, if it exists.
    pub fn get(&self, id: u32) -> Option<&PipeState> {
        self.pipes.get(id as usize)
    }

    /// Total successful reads + writes since creation. A co-scheduler
    /// round that leaves this unchanged made no pipe progress.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Validate that pipe `id` exists and carries `elem` elements; the
    /// error strings are the deterministic trap payloads shared by all
    /// engines.
    fn check(&self, id: u32, elem: ScalarType) -> Result<(), String> {
        match self.pipes.get(id as usize) {
            None => Err(format!("unknown pipe #{id}")),
            Some(p) if p.elem != elem => {
                Err(format!("pipe #{id} carries {}, accessed as {}", p.elem, elem))
            }
            Some(_) => Ok(()),
        }
    }

    /// Attempt to pop the oldest element of pipe `id`. `Ok(None)` means
    /// the FIFO is empty (the caller stalls); `Err` is a trap payload.
    pub fn try_read(&mut self, id: u32, elem: ScalarType) -> Result<Option<u64>, String> {
        self.check(id, elem)?;
        let bits = self.pipes[id as usize].data.pop_front();
        if bits.is_some() {
            self.total_ops += 1;
        }
        Ok(bits)
    }

    /// Attempt to push `bits` onto pipe `id`. `Ok(false)` means the FIFO
    /// is full (the caller stalls); `Err` is a trap payload.
    pub fn try_write(&mut self, id: u32, elem: ScalarType, bits: u64) -> Result<bool, String> {
        self.check(id, elem)?;
        let p = &mut self.pipes[id as usize];
        if p.data.len() >= p.depth {
            return Ok(false);
        }
        p.data.push_back(bits);
        self.total_ops += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_depth() {
        let mut hub = PipeHub::default();
        let p = hub.create(ScalarType::F64, 2);
        assert!(hub.try_write(p, ScalarType::F64, 1).unwrap());
        assert!(hub.try_write(p, ScalarType::F64, 2).unwrap());
        assert!(!hub.try_write(p, ScalarType::F64, 3).unwrap(), "depth 2 is full");
        assert_eq!(hub.try_read(p, ScalarType::F64).unwrap(), Some(1));
        assert!(hub.try_write(p, ScalarType::F64, 3).unwrap(), "space freed");
        assert_eq!(hub.try_read(p, ScalarType::F64).unwrap(), Some(2));
        assert_eq!(hub.try_read(p, ScalarType::F64).unwrap(), Some(3));
        assert_eq!(hub.try_read(p, ScalarType::F64).unwrap(), None, "empty stalls");
        assert_eq!(hub.total_ops(), 6, "stalled attempts are not progress");
    }

    #[test]
    fn zero_depth_clamps_to_one() {
        let mut hub = PipeHub::default();
        let p = hub.create(ScalarType::I32, 0);
        assert_eq!(hub.get(p).unwrap().depth, 1);
        assert!(hub.try_write(p, ScalarType::I32, 7).unwrap());
        assert!(!hub.try_write(p, ScalarType::I32, 8).unwrap());
    }

    #[test]
    fn misuse_traps_deterministically() {
        let mut hub = PipeHub::default();
        let p = hub.create(ScalarType::F64, 4);
        assert_eq!(hub.try_read(99, ScalarType::F64).unwrap_err(), "unknown pipe #99");
        assert_eq!(
            hub.try_write(p, ScalarType::I64, 0).unwrap_err(),
            "pipe #0 carries double, accessed as long"
        );
    }
}
