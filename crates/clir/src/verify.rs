//! IR verifier: structural and type checks on [`Function`]s.
//!
//! Verification is run by [`crate::builder::FunctionBuilder::finish`] and by
//! the `bop-clc` lowering, so devices and the interpreter can assume the
//! invariants checked here (register indices in range, operand types
//! consistent, branch targets valid).

use crate::ir::{Block, BlockId, Function, Inst, RegId, Terminator};
use crate::types::{ScalarType, Type};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields (func/block/reg/target/detail) are self-describing
pub enum VerifyError {
    /// A register index exceeds `reg_types.len()`.
    RegOutOfRange { func: String, block: BlockId, reg: RegId },
    /// A branch or jump targets a non-existent block.
    BadBlockTarget { func: String, block: BlockId, target: BlockId },
    /// Operand or destination type does not match the instruction type.
    TypeMismatch { func: String, block: BlockId, detail: String },
    /// A function has no blocks.
    Empty { func: String },
    /// A kernel parameter has an invalid type (e.g. pointer without
    /// address space is unrepresentable, but `Bool` params are rejected).
    BadParam { func: String, param: String },
    /// A malformed phi: not at the block head, an argument set that does
    /// not match the block's predecessors, or a type mismatch.
    BadPhi { func: String, block: BlockId, detail: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::RegOutOfRange { func, block, reg } => {
                write!(f, "{func}: b{}: register r{} out of range", block.0, reg.0)
            }
            VerifyError::BadBlockTarget { func, block, target } => {
                write!(f, "{func}: b{}: branch to non-existent block b{}", block.0, target.0)
            }
            VerifyError::TypeMismatch { func, block, detail } => {
                write!(f, "{func}: b{}: type mismatch: {detail}", block.0)
            }
            VerifyError::Empty { func } => write!(f, "{func}: function has no blocks"),
            VerifyError::BadParam { func, param } => {
                write!(f, "{func}: parameter `{param}` has an unsupported type")
            }
            VerifyError::BadPhi { func, block, detail } => {
                write!(f, "{func}: b{}: malformed phi: {detail}", block.0)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'f> {
    func: &'f Function,
    block: BlockId,
}

impl<'f> Checker<'f> {
    fn reg(&self, reg: RegId) -> Result<Type, VerifyError> {
        self.func.reg_types.get(reg.index()).copied().ok_or(VerifyError::RegOutOfRange {
            func: self.func.name.clone(),
            block: self.block,
            reg,
        })
    }

    fn expect_scalar(&self, reg: RegId, want: ScalarType, ctx: &str) -> Result<(), VerifyError> {
        let ty = self.reg(reg)?;
        if ty != Type::Scalar(want) {
            return Err(self.mismatch(format!("{ctx}: r{} is {ty}, expected {want}", reg.0)));
        }
        Ok(())
    }

    fn mismatch(&self, detail: String) -> VerifyError {
        VerifyError::TypeMismatch { func: self.func.name.clone(), block: self.block, detail }
    }

    fn bad_phi(&self, detail: String) -> VerifyError {
        VerifyError::BadPhi { func: self.func.name.clone(), block: self.block, detail }
    }
}

/// Verify one function.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    if func.blocks.is_empty() {
        return Err(VerifyError::Empty { func: func.name.clone() });
    }
    for p in &func.params {
        if p.ty == Type::Scalar(ScalarType::Bool) {
            return Err(VerifyError::BadParam { func: func.name.clone(), param: p.name.clone() });
        }
    }
    if func.params.len() > func.reg_types.len() {
        return Err(VerifyError::Empty { func: func.name.clone() });
    }
    // Predecessor sets, for phi-argument checks.
    let mut preds: Vec<Vec<BlockId>> = vec![vec![]; func.blocks.len()];
    for (bi, block) in func.blocks.iter().enumerate() {
        for succ in block.term.successors() {
            if let Some(p) = preds.get_mut(succ.index()) {
                let from = BlockId(bi as u32);
                if !p.contains(&from) {
                    p.push(from);
                }
            }
        }
    }
    for (bi, block) in func.blocks.iter().enumerate() {
        let c = Checker { func, block: BlockId(bi as u32) };
        verify_block(&c, block, &preds[bi])?;
    }
    Ok(())
}

fn verify_block(c: &Checker<'_>, block: &Block, preds: &[BlockId]) -> Result<(), VerifyError> {
    let head = block.insts.iter().take_while(|i| matches!(i, Inst::Phi { .. })).count();
    for (ii, inst) in block.insts.iter().enumerate() {
        // All referenced registers must exist.
        for r in inst.sources() {
            c.reg(r)?;
        }
        if let Some(d) = inst.dst() {
            c.reg(d)?;
        }
        if let Inst::Phi { ty, dst, args } = inst {
            if ii >= head {
                return Err(c.bad_phi("phi after a non-phi instruction".into()));
            }
            if c.reg(*dst)? != *ty {
                return Err(c.bad_phi(format!("r{} is not of the phi's type {ty}", dst.0)));
            }
            let mut seen: Vec<BlockId> = Vec::with_capacity(args.len());
            for (bb, r) in args {
                if !preds.contains(bb) {
                    return Err(c.bad_phi(format!("argument from non-predecessor b{}", bb.0)));
                }
                if seen.contains(bb) {
                    return Err(c.bad_phi(format!("duplicate argument for predecessor b{}", bb.0)));
                }
                seen.push(*bb);
                if c.reg(*r)? != *ty {
                    return Err(c.bad_phi(format!("argument r{} is not of type {ty}", r.0)));
                }
            }
            if seen.len() != preds.len() {
                return Err(c.bad_phi(format!(
                    "{} argument(s) for {} predecessor(s)",
                    seen.len(),
                    preds.len()
                )));
            }
        }
        verify_inst(c, inst)?;
    }
    match &block.term {
        Terminator::Jump(t) => check_target(c, *t)?,
        Terminator::Branch { cond, then_bb, else_bb } => {
            c.expect_scalar(*cond, ScalarType::Bool, "branch condition")?;
            check_target(c, *then_bb)?;
            check_target(c, *else_bb)?;
        }
        Terminator::Return => {}
    }
    Ok(())
}

fn check_target(c: &Checker<'_>, target: BlockId) -> Result<(), VerifyError> {
    if target.index() >= c.func.blocks.len() {
        return Err(VerifyError::BadBlockTarget {
            func: c.func.name.clone(),
            block: c.block,
            target,
        });
    }
    Ok(())
}

fn verify_inst(c: &Checker<'_>, inst: &Inst) -> Result<(), VerifyError> {
    match inst {
        Inst::Const { dst, val } => {
            let dst_ty = c.reg(*dst)?;
            let ok = match (dst_ty, val) {
                (Type::Scalar(s), v) => v.scalar_type() == Some(s),
                (Type::Ptr(space, _), crate::value::Value::Ptr(p)) => p.space == space,
                _ => false,
            };
            if !ok {
                return Err(c.mismatch(format!("const {val} into register of type {dst_ty}")));
            }
        }
        Inst::Mov { dst, src } => {
            if c.reg(*dst)? != c.reg(*src)? {
                return Err(
                    c.mismatch(format!("mov r{} <- r{} with differing types", dst.0, src.0))
                );
            }
        }
        Inst::Bin { ty, dst, a, b, .. } => {
            c.expect_scalar(*a, *ty, "bin lhs")?;
            c.expect_scalar(*b, *ty, "bin rhs")?;
            c.expect_scalar(*dst, *ty, "bin dst")?;
        }
        Inst::Un { ty, dst, a, .. } => {
            c.expect_scalar(*a, *ty, "un operand")?;
            c.expect_scalar(*dst, *ty, "un dst")?;
        }
        Inst::Cmp { ty, dst, a, b, .. } => {
            c.expect_scalar(*a, *ty, "cmp lhs")?;
            c.expect_scalar(*b, *ty, "cmp rhs")?;
            c.expect_scalar(*dst, ScalarType::Bool, "cmp dst")?;
        }
        Inst::Select { ty, dst, cond, a, b } => {
            c.expect_scalar(*cond, ScalarType::Bool, "select cond")?;
            c.expect_scalar(*a, *ty, "select lhs")?;
            c.expect_scalar(*b, *ty, "select rhs")?;
            c.expect_scalar(*dst, *ty, "select dst")?;
        }
        Inst::Cast { dst, a, from, to } => {
            c.expect_scalar(*a, *from, "cast source")?;
            c.expect_scalar(*dst, *to, "cast dst")?;
        }
        Inst::Call { func, ty, dst, args } => {
            if !ty.is_float() {
                return Err(c.mismatch(format!("{} at non-float type {ty}", func.name())));
            }
            if args.len() != func.arity() {
                return Err(c.mismatch(format!(
                    "{} expects {} args, got {}",
                    func.name(),
                    func.arity(),
                    args.len()
                )));
            }
            for a in args {
                c.expect_scalar(*a, *ty, "builtin arg")?;
            }
            c.expect_scalar(*dst, *ty, "builtin dst")?;
        }
        Inst::WorkItem { dst, .. } => {
            c.expect_scalar(*dst, ScalarType::I64, "work-item query dst")?;
        }
        Inst::Gep { dst, base, index, elem } => {
            let base_ty = c.reg(*base)?;
            let idx_ty = c.reg(*index)?;
            let Type::Ptr(space, _) = base_ty else {
                return Err(c.mismatch(format!("gep base r{} is not a pointer", base.0)));
            };
            if space == crate::types::AddressSpace::Pipe {
                return Err(c.mismatch(format!("gep through pipe handle r{}", base.0)));
            }
            if !matches!(idx_ty, Type::Scalar(ScalarType::I32 | ScalarType::I64)) {
                return Err(c.mismatch(format!("gep index r{} is not an integer", index.0)));
            }
            if c.reg(*dst)? != Type::Ptr(space, *elem) {
                return Err(c.mismatch("gep dst type does not match".into()));
            }
        }
        Inst::Load { dst, ptr, ty } => {
            let ptr_ty = c.reg(*ptr)?;
            let Type::Ptr(space, elem) = ptr_ty else {
                return Err(c.mismatch(format!("load through non-pointer r{}", ptr.0)));
            };
            if space == crate::types::AddressSpace::Pipe {
                return Err(c.mismatch(format!("load through pipe handle r{}", ptr.0)));
            }
            if elem != *ty {
                return Err(c.mismatch(format!("load of {ty} through pointer to {elem}")));
            }
            c.expect_scalar(*dst, *ty, "load dst")?;
        }
        Inst::Store { ptr, val, ty } => {
            let ptr_ty = c.reg(*ptr)?;
            let Type::Ptr(space, elem) = ptr_ty else {
                return Err(c.mismatch(format!("store through non-pointer r{}", ptr.0)));
            };
            if elem != *ty {
                return Err(c.mismatch(format!("store of {ty} through pointer to {elem}")));
            }
            if space == crate::types::AddressSpace::Constant {
                return Err(c.mismatch("store to __constant memory".into()));
            }
            if space == crate::types::AddressSpace::Pipe {
                return Err(c.mismatch(format!("store through pipe handle r{}", ptr.0)));
            }
            c.expect_scalar(*val, *ty, "store value")?;
        }
        Inst::Barrier => {}
        Inst::PipeRead { dst, pipe, ty } => {
            let pipe_ty = c.reg(*pipe)?;
            if pipe_ty != Type::Ptr(crate::types::AddressSpace::Pipe, *ty) {
                return Err(
                    c.mismatch(format!("pipe_read of {ty} through r{} of type {pipe_ty}", pipe.0))
                );
            }
            c.expect_scalar(*dst, *ty, "pipe_read dst")?;
        }
        Inst::PipeWrite { pipe, val, ty } => {
            let pipe_ty = c.reg(*pipe)?;
            if pipe_ty != Type::Ptr(crate::types::AddressSpace::Pipe, *ty) {
                return Err(c.mismatch(format!(
                    "pipe_write of {ty} through r{} of type {pipe_ty}",
                    pipe.0
                )));
            }
            c.expect_scalar(*val, *ty, "pipe_write value")?;
        }
        // Checked against the predecessor list in `verify_block`.
        Inst::Phi { .. } => {}
    }
    Ok(())
}

/// Verify every function in a module.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &crate::ir::Module) -> Result<(), VerifyError> {
    for f in &module.functions {
        verify_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Module};
    use crate::types::AddressSpace;
    use crate::value::Value;

    fn f64_reg_function(insts: Vec<Inst>, reg_types: Vec<Type>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            is_kernel: true,
            reg_types,
            blocks: vec![Block { insts, term: Terminator::Return }],
            private_bytes: 0,
        }
    }

    #[test]
    fn detects_reg_out_of_range() {
        let f = f64_reg_function(
            vec![Inst::Mov { dst: RegId(0), src: RegId(9) }],
            vec![Type::Scalar(ScalarType::F64)],
        );
        match verify_function(&f) {
            Err(VerifyError::RegOutOfRange { reg: RegId(9), .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn detects_type_mismatch_in_bin() {
        let f = f64_reg_function(
            vec![
                Inst::Const { dst: RegId(0), val: Value::F64(1.0) },
                Inst::Const { dst: RegId(1), val: Value::I32(1) },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: ScalarType::F64,
                    dst: RegId(2),
                    a: RegId(0),
                    b: RegId(1),
                },
            ],
            vec![
                Type::Scalar(ScalarType::F64),
                Type::Scalar(ScalarType::I32),
                Type::Scalar(ScalarType::F64),
            ],
        );
        assert!(matches!(verify_function(&f), Err(VerifyError::TypeMismatch { .. })));
    }

    #[test]
    fn detects_bad_branch_target() {
        let f = Function {
            name: "t".into(),
            params: vec![],
            is_kernel: true,
            reg_types: vec![],
            blocks: vec![Block { insts: vec![], term: Terminator::Jump(BlockId(5)) }],
            private_bytes: 0,
        };
        assert!(matches!(verify_function(&f), Err(VerifyError::BadBlockTarget { .. })));
    }

    #[test]
    fn detects_store_to_constant() {
        let f = f64_reg_function(
            vec![
                Inst::Const {
                    dst: RegId(0),
                    val: Value::Ptr(crate::value::PtrValue::new(AddressSpace::Constant, 0)),
                },
                Inst::Const { dst: RegId(1), val: Value::F64(1.0) },
                Inst::Store { ptr: RegId(0), val: RegId(1), ty: ScalarType::F64 },
            ],
            vec![Type::Ptr(AddressSpace::Constant, ScalarType::F64), Type::Scalar(ScalarType::F64)],
        );
        assert!(matches!(verify_function(&f), Err(VerifyError::TypeMismatch { .. })));
    }

    #[test]
    fn empty_function_rejected() {
        let f = Function {
            name: "t".into(),
            params: vec![],
            is_kernel: false,
            reg_types: vec![],
            blocks: vec![],
            private_bytes: 0,
        };
        assert!(matches!(verify_function(&f), Err(VerifyError::Empty { .. })));
    }

    #[test]
    fn verify_module_covers_all_functions() {
        let good = f64_reg_function(vec![], vec![]);
        let bad = Function { blocks: vec![], ..good.clone() };
        let m = Module::from_functions("t", vec![good, bad]);
        assert!(verify_module(&m).is_err());
    }
}
