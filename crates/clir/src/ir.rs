//! The IR itself: instructions, blocks, functions and modules.
//!
//! The IR is a typed register machine (not SSA): every virtual register has
//! a fixed type recorded in [`Function::reg_types`], and instructions may
//! overwrite registers, which keeps lowering from a C-like AST trivial.
//! Control flow is expressed with basic blocks terminated by jumps,
//! conditional branches or returns. Work-group synchronisation appears as
//! an explicit [`Inst::Barrier`] instruction, which the interpreter turns
//! into a suspension point.

use crate::types::{ScalarType, Type};
use crate::value::Value;

/// Index of a virtual register within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl RegId {
    /// The register index as a `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The block index as a `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Two-operand arithmetic and logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float or truncating integer).
    Div,
    /// Remainder (integer only).
    Rem,
    /// Bitwise/logical AND.
    And,
    /// Bitwise/logical OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Minimum (`fmin`/`min`).
    Min,
    /// Maximum (`fmax`/`max`).
    Max,
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical/bitwise NOT.
    Not,
    /// Absolute value (`fabs`/`abs`).
    Abs,
    /// Round towards negative infinity.
    Floor,
}

/// Comparison predicates; the result is always `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Math builtins dispatched through a [`crate::mathlib::MathLib`].
///
/// These are exactly the operators whose hardware implementation matters in
/// the paper: the `pow` used by kernel IV.B's leaf initialisation is the
/// source of the reported ~1e-3 RMSE on the FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `exp(x)`.
    Exp,
    /// `log(x)` (natural).
    Log,
    /// `pow(x, y)`.
    Pow,
    /// `sqrt(x)`.
    Sqrt,
}

impl Builtin {
    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Pow => 2,
            _ => 1,
        }
    }

    /// The OpenCL C spelling.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Pow => "pow",
            Builtin::Sqrt => "sqrt",
        }
    }
}

/// Work-item geometry queries (`get_global_id` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WiQuery {
    /// `get_global_id(dim)`.
    GlobalId,
    /// `get_local_id(dim)`.
    LocalId,
    /// `get_group_id(dim)`.
    GroupId,
    /// `get_global_size(dim)`.
    GlobalSize,
    /// `get_local_size(dim)`.
    LocalSize,
    /// `get_num_groups(dim)`.
    NumGroups,
}

impl WiQuery {
    /// The OpenCL C spelling.
    pub fn name(self) -> &'static str {
        match self {
            WiQuery::GlobalId => "get_global_id",
            WiQuery::LocalId => "get_local_id",
            WiQuery::GroupId => "get_group_id",
            WiQuery::GlobalSize => "get_global_size",
            WiQuery::LocalSize => "get_local_size",
            WiQuery::NumGroups => "get_num_groups",
        }
    }
}

/// A single (non-terminator) instruction.
///
/// Field meanings are given per variant; `dst` is always the defined
/// register, `ty` the operation's scalar type.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // fields are described in the variant docs
pub enum Inst {
    /// `dst = val`.
    Const { dst: RegId, val: Value },
    /// `dst = src` (register copy).
    Mov { dst: RegId, src: RegId },
    /// `dst = a <op> b` at scalar type `ty`.
    Bin { op: BinOp, ty: ScalarType, dst: RegId, a: RegId, b: RegId },
    /// `dst = <op> a` at scalar type `ty`.
    Un { op: UnOp, ty: ScalarType, dst: RegId, a: RegId },
    /// `dst = a <cmp> b` at operand type `ty`; `dst` is `Bool`.
    Cmp { op: CmpOp, ty: ScalarType, dst: RegId, a: RegId, b: RegId },
    /// `dst = cond ? a : b` at scalar type `ty`.
    Select { ty: ScalarType, dst: RegId, cond: RegId, a: RegId, b: RegId },
    /// `dst = (to) a`, a scalar conversion.
    Cast { dst: RegId, a: RegId, from: ScalarType, to: ScalarType },
    /// `dst = builtin(args...)` at float type `ty`.
    Call { func: Builtin, ty: ScalarType, dst: RegId, args: Vec<RegId> },
    /// `dst = get_*(dim)`; result is `I64`.
    WorkItem { query: WiQuery, dim: u8, dst: RegId },
    /// `dst = &base[index]` — pointer displacement by `index` elements of
    /// `elem`.
    Gep { dst: RegId, base: RegId, index: RegId, elem: ScalarType },
    /// `dst = *ptr` at type `ty`.
    Load { dst: RegId, ptr: RegId, ty: ScalarType },
    /// `*ptr = val` at type `ty`.
    Store { ptr: RegId, val: RegId, ty: ScalarType },
    /// `barrier(...)` — work-group synchronisation point.
    Barrier,
    /// `dst = read_pipe(pipe)` — blocking FIFO read of one `ty` element.
    /// `pipe` must be a `Ptr(Pipe, ty)` handle. An empty FIFO suspends
    /// the work-item (a stall) until a writer makes progress.
    PipeRead { dst: RegId, pipe: RegId, ty: ScalarType },
    /// `write_pipe(pipe, val)` — blocking FIFO write of one `ty` element.
    /// A full FIFO suspends the work-item (a stall) until a reader makes
    /// progress.
    PipeWrite { pipe: RegId, val: RegId, ty: ScalarType },
    /// `dst = phi [b_i: r_i, ...]` — SSA merge: on entry from predecessor
    /// `b_i`, `dst` takes the value of `r_i`. Phis exist only between the
    /// `mem2reg` and `out-of-ssa` passes; all phis of a block sit
    /// contiguously at its head and conceptually execute in parallel.
    /// Executable IR (what the verifier hands to devices and engines) is
    /// phi-free.
    Phi { ty: Type, dst: RegId, args: Vec<(BlockId, RegId)> },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn dst(&self) -> Option<RegId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Call { dst, .. }
            | Inst::WorkItem { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::PipeRead { dst, .. }
            | Inst::Phi { dst, .. } => Some(*dst),
            Inst::Store { .. } | Inst::Barrier | Inst::PipeWrite { .. } => None,
        }
    }

    /// The registers this instruction reads.
    pub fn sources(&self) -> Vec<RegId> {
        match self {
            Inst::Const { .. } | Inst::WorkItem { .. } | Inst::Barrier => vec![],
            Inst::Mov { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } => vec![*a],
            Inst::Select { cond, a, b, .. } => vec![*cond, *a, *b],
            Inst::Cast { a, .. } => vec![*a],
            Inst::Call { args, .. } => args.clone(),
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { ptr, val, .. } => vec![*ptr, *val],
            Inst::PipeRead { pipe, .. } => vec![*pipe],
            Inst::PipeWrite { pipe, val, .. } => vec![*pipe, *val],
            Inst::Phi { args, .. } => args.iter().map(|&(_, r)| r).collect(),
        }
    }
}

/// Basic-block terminators.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // fields are described in the variant docs
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a `Bool` register.
    Branch { cond: RegId, then_bb: BlockId, else_bb: BlockId },
    /// Return from the kernel (work-item retires).
    Return,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions executed in order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Source-level name (for diagnostics and arg-binding by name).
    pub name: String,
    /// Parameter type. Pointer parameters must carry an address space.
    pub ty: Type,
}

/// A compiled function. Parameters occupy registers `0..params.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (kernels are looked up by this name).
    pub name: String,
    /// Parameters, bound to the first registers.
    pub params: Vec<Param>,
    /// Whether this is an entry-point kernel (`__kernel`).
    pub is_kernel: bool,
    /// Types of all virtual registers (indexed by [`RegId`]).
    pub reg_types: Vec<Type>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Bytes of per-work-item private array storage (stack-like arena).
    pub private_bytes: usize,
}

impl Function {
    /// Total number of instructions across all blocks (excluding
    /// terminators); a convenient size metric for reports.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Whether any block contains a [`Inst::Barrier`].
    pub fn has_barrier(&self) -> bool {
        self.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Barrier)))
    }

    /// The type of a register.
    ///
    /// # Panics
    /// Panics if `reg` is out of range; verified IR never does this.
    pub fn reg_type(&self, reg: RegId) -> Type {
        self.reg_types[reg.index()]
    }
}

/// A compilation unit: the kernels produced from one source string.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Name of the source (for diagnostics).
    pub source_name: String,
    /// All functions; kernels are the entry points.
    pub functions: Vec<Function>,
}

impl Module {
    /// Assemble a module from already-built functions.
    pub fn from_functions(source_name: &str, functions: Vec<Function>) -> Module {
        Module { source_name: source_name.to_owned(), functions }
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.is_kernel && f.name == name)
    }

    /// Iterate over all kernels.
    pub fn kernels(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.is_kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_arity() {
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::Exp.arity(), 1);
        assert_eq!(Builtin::Sqrt.name(), "sqrt");
    }

    #[test]
    fn inst_dst_and_sources() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: ScalarType::F64,
            dst: RegId(3),
            a: RegId(1),
            b: RegId(2),
        };
        assert_eq!(i.dst(), Some(RegId(3)));
        assert_eq!(i.sources(), vec![RegId(1), RegId(2)]);
        let s = Inst::Store { ptr: RegId(0), val: RegId(1), ty: ScalarType::F64 };
        assert_eq!(s.dst(), None);
        assert_eq!(s.sources(), vec![RegId(0), RegId(1)]);
        assert_eq!(Inst::Barrier.sources(), vec![]);
        let p = Inst::Phi {
            ty: Type::Scalar(ScalarType::F64),
            dst: RegId(5),
            args: vec![(BlockId(0), RegId(1)), (BlockId(2), RegId(3))],
        };
        assert_eq!(p.dst(), Some(RegId(5)));
        assert_eq!(p.sources(), vec![RegId(1), RegId(3)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(4)).successors(), vec![BlockId(4)]);
        assert_eq!(Terminator::Return.successors(), vec![]);
        let br = Terminator::Branch { cond: RegId(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn module_kernel_lookup() {
        let f = Function {
            name: "k".into(),
            params: vec![],
            is_kernel: true,
            reg_types: vec![],
            blocks: vec![Block { insts: vec![], term: Terminator::Return }],
            private_bytes: 0,
        };
        let helper = Function { name: "h".into(), is_kernel: false, ..f.clone() };
        let m = Module::from_functions("t", vec![helper, f]);
        assert!(m.kernel("k").is_some());
        assert!(m.kernel("h").is_none());
        assert_eq!(m.kernels().count(), 1);
    }
}
