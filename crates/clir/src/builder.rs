//! A convenience builder for constructing IR functions directly.
//!
//! The OpenCL-C front-end (`bop-clc`) uses this builder for lowering; tests
//! and benchmarks use it to create kernels without going through source
//! text.

use crate::ir::{
    BinOp, Block, BlockId, Builtin, CmpOp, Function, Inst, Param, RegId, Terminator, UnOp, WiQuery,
};
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{PtrValue, Value};
use crate::verify::{self, VerifyError};
use std::fmt;

/// Error returned by [`FunctionBuilder::finish`].
#[derive(Debug)]
pub enum BuildError {
    /// A block was left without a terminator.
    UnterminatedBlock(BlockId),
    /// The finished function failed IR verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnterminatedBlock(b) => write!(f, "block b{} has no terminator", b.0),
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> BuildError {
        BuildError::Verify(e)
    }
}

struct PendingBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

/// Builds one [`Function`] instruction by instruction.
pub struct FunctionBuilder {
    name: String,
    is_kernel: bool,
    params: Vec<Param>,
    reg_types: Vec<Type>,
    blocks: Vec<PendingBlock>,
    current: BlockId,
    private_bytes: usize,
}

impl FunctionBuilder {
    /// Start building a function; block 0 (the entry) is created and made
    /// current.
    pub fn new(name: &str, is_kernel: bool) -> FunctionBuilder {
        FunctionBuilder {
            name: name.to_owned(),
            is_kernel,
            params: Vec::new(),
            reg_types: Vec::new(),
            blocks: vec![PendingBlock { insts: Vec::new(), term: None }],
            current: BlockId(0),
            private_bytes: 0,
        }
    }

    /// Declare a parameter (must be called before emitting instructions
    /// that allocate registers, so parameters get the first register ids).
    pub fn param(&mut self, name: &str, ty: Type) -> RegId {
        debug_assert_eq!(
            self.params.len(),
            self.reg_types.len(),
            "declare all parameters before emitting instructions"
        );
        let reg = self.fresh(ty);
        self.params.push(Param { name: name.to_owned(), ty });
        reg
    }

    /// Allocate a fresh register of type `ty` without defining it.
    pub fn fresh(&mut self, ty: Type) -> RegId {
        let id = RegId(self.reg_types.len() as u32);
        self.reg_types.push(ty);
        id
    }

    /// Reserve `bytes` of per-work-item private storage, returning a
    /// register holding a pointer to its start.
    pub fn alloc_private(&mut self, bytes: usize, elem: ScalarType) -> RegId {
        let offset = self.private_bytes as i64;
        self.private_bytes += bytes;
        let dst = self.fresh(Type::ptr(AddressSpace::Private, elem));
        self.push(Inst::Const {
            dst,
            val: Value::Ptr(PtrValue { space: AddressSpace::Private, buffer: 0, offset }),
        });
        dst
    }

    /// Create a new, empty block (does not switch to it).
    pub fn create_block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock { insts: Vec::new(), term: None });
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Make `bb` the block that subsequently emitted instructions go to.
    ///
    /// # Panics
    /// Panics if `bb` is already terminated.
    pub fn switch_to(&mut self, bb: BlockId) {
        assert!(self.blocks[bb.index()].term.is_none(), "switching to terminated block b{}", bb.0);
        self.current = bb;
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// True if the current block already has a terminator.
    pub fn current_terminated(&self) -> bool {
        self.blocks[self.current.index()].term.is_some()
    }

    fn push(&mut self, inst: Inst) {
        let blk = &mut self.blocks[self.current.index()];
        assert!(blk.term.is_none(), "emitting into terminated block b{}", self.current.0);
        blk.insts.push(inst);
    }

    fn def(&mut self, ty: Type, make: impl FnOnce(RegId) -> Inst) -> RegId {
        let dst = self.fresh(ty);
        let inst = make(dst);
        self.push(inst);
        dst
    }

    // ---- constants -------------------------------------------------------

    /// Emit an `f64` constant.
    pub fn const_f64(&mut self, x: f64) -> RegId {
        self.def(ScalarType::F64.into(), |dst| Inst::Const { dst, val: Value::F64(x) })
    }

    /// Emit an `f32` constant.
    pub fn const_f32(&mut self, x: f32) -> RegId {
        self.def(ScalarType::F32.into(), |dst| Inst::Const { dst, val: Value::F32(x) })
    }

    /// Emit an `i32` constant.
    pub fn const_i32(&mut self, x: i32) -> RegId {
        self.def(ScalarType::I32.into(), |dst| Inst::Const { dst, val: Value::I32(x) })
    }

    /// Emit an `i64` constant.
    pub fn const_i64(&mut self, x: i64) -> RegId {
        self.def(ScalarType::I64.into(), |dst| Inst::Const { dst, val: Value::I64(x) })
    }

    /// Emit a `bool` constant.
    pub fn const_bool(&mut self, x: bool) -> RegId {
        self.def(ScalarType::Bool.into(), |dst| Inst::Const { dst, val: Value::Bool(x) })
    }

    /// Emit an arbitrary constant value.
    pub fn constant(&mut self, val: Value) -> RegId {
        let ty = match val {
            Value::Ptr(p) => Type::Ptr(p.space, ScalarType::F64),
            other => Type::Scalar(other.scalar_type().expect("scalar")),
        };
        self.def(ty, |dst| Inst::Const { dst, val })
    }

    // ---- arithmetic ------------------------------------------------------

    /// Emit a binary operation at type `ty`.
    pub fn bin(&mut self, op: BinOp, ty: ScalarType, a: RegId, b: RegId) -> RegId {
        self.def(ty.into(), |dst| Inst::Bin { op, ty, dst, a, b })
    }

    /// `a + b` at float type `ty`.
    pub fn fadd(&mut self, a: RegId, b: RegId, ty: ScalarType) -> RegId {
        self.bin(BinOp::Add, ty, a, b)
    }

    /// `a - b` at float type `ty`.
    pub fn fsub(&mut self, a: RegId, b: RegId, ty: ScalarType) -> RegId {
        self.bin(BinOp::Sub, ty, a, b)
    }

    /// `a * b` at float type `ty`.
    pub fn fmul(&mut self, a: RegId, b: RegId, ty: ScalarType) -> RegId {
        self.bin(BinOp::Mul, ty, a, b)
    }

    /// `a / b` at float type `ty`.
    pub fn fdiv(&mut self, a: RegId, b: RegId, ty: ScalarType) -> RegId {
        self.bin(BinOp::Div, ty, a, b)
    }

    /// `fmax(a, b)` at float type `ty`.
    pub fn fmax(&mut self, a: RegId, b: RegId, ty: ScalarType) -> RegId {
        self.bin(BinOp::Max, ty, a, b)
    }

    /// Emit a unary operation at type `ty`.
    pub fn un(&mut self, op: UnOp, ty: ScalarType, a: RegId) -> RegId {
        self.def(ty.into(), |dst| Inst::Un { op, ty, dst, a })
    }

    /// Emit a comparison; the result register is `Bool`.
    pub fn cmp(&mut self, op: CmpOp, ty: ScalarType, a: RegId, b: RegId) -> RegId {
        self.def(ScalarType::Bool.into(), |dst| Inst::Cmp { op, ty, dst, a, b })
    }

    /// Emit a select (`cond ? a : b`).
    pub fn select(&mut self, ty: ScalarType, cond: RegId, a: RegId, b: RegId) -> RegId {
        self.def(ty.into(), |dst| Inst::Select { ty, dst, cond, a, b })
    }

    /// Emit a scalar conversion.
    pub fn cast(&mut self, a: RegId, from: ScalarType, to: ScalarType) -> RegId {
        self.def(to.into(), |dst| Inst::Cast { dst, a, from, to })
    }

    /// Emit a math builtin call at float type `ty`.
    pub fn call(&mut self, func: Builtin, ty: ScalarType, args: &[RegId]) -> RegId {
        assert_eq!(args.len(), func.arity(), "{} takes {} args", func.name(), func.arity());
        let args = args.to_vec();
        self.def(ty.into(), |dst| Inst::Call { func, ty, dst, args })
    }

    /// Copy `src` into pre-allocated register `dst`.
    pub fn mov_into(&mut self, dst: RegId, src: RegId) {
        self.push(Inst::Mov { dst, src });
    }

    // ---- work-item queries ----------------------------------------------

    /// Emit a work-item geometry query.
    pub fn wi_query(&mut self, query: WiQuery, dim: u8) -> RegId {
        self.def(ScalarType::I64.into(), |dst| Inst::WorkItem { query, dim, dst })
    }

    /// `get_global_id(dim)`.
    pub fn global_id(&mut self, dim: u8) -> RegId {
        self.wi_query(WiQuery::GlobalId, dim)
    }

    /// `get_local_id(dim)`.
    pub fn local_id(&mut self, dim: u8) -> RegId {
        self.wi_query(WiQuery::LocalId, dim)
    }

    /// `get_group_id(dim)`.
    pub fn group_id(&mut self, dim: u8) -> RegId {
        self.wi_query(WiQuery::GroupId, dim)
    }

    // ---- memory ----------------------------------------------------------

    /// Pointer displacement: `&base[index]`.
    pub fn gep(&mut self, base: RegId, index: RegId, elem: ScalarType) -> RegId {
        let base_ty = self.reg_types[base.index()];
        let space = match base_ty {
            Type::Ptr(space, _) => space,
            Type::Scalar(_) => panic!("gep base must be a pointer"),
        };
        self.def(Type::ptr(space, elem), |dst| Inst::Gep { dst, base, index, elem })
    }

    /// Load a scalar of type `ty` through `ptr`.
    pub fn load(&mut self, ptr: RegId, ty: ScalarType) -> RegId {
        self.def(ty.into(), |dst| Inst::Load { dst, ptr, ty })
    }

    /// Store `val` (of type `ty`) through `ptr`.
    pub fn store(&mut self, ptr: RegId, val: RegId, ty: ScalarType) {
        self.push(Inst::Store { ptr, val, ty });
    }

    /// Emit a work-group barrier.
    pub fn barrier(&mut self) {
        self.push(Inst::Barrier);
    }

    /// Blocking read of one `ty` element from the pipe handle in `pipe`.
    pub fn pipe_read(&mut self, pipe: RegId, ty: ScalarType) -> RegId {
        self.def(ty.into(), |dst| Inst::PipeRead { dst, pipe, ty })
    }

    /// Blocking write of `val` (of type `ty`) into the pipe handle in
    /// `pipe`.
    pub fn pipe_write(&mut self, pipe: RegId, val: RegId, ty: ScalarType) {
        self.push(Inst::PipeWrite { pipe, val, ty });
    }

    // ---- control flow ----------------------------------------------------

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: RegId, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch { cond, then_bb, else_bb });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    fn terminate(&mut self, term: Terminator) {
        let blk = &mut self.blocks[self.current.index()];
        assert!(blk.term.is_none(), "block b{} terminated twice", self.current.0);
        blk.term = Some(term);
    }

    /// Finish and verify the function.
    ///
    /// # Errors
    /// Returns [`BuildError::UnterminatedBlock`] if any block lacks a
    /// terminator, or [`BuildError::Verify`] if the IR is malformed.
    pub fn finish(self) -> Result<Function, BuildError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            let term = b.term.ok_or(BuildError::UnterminatedBlock(BlockId(i as u32)))?;
            blocks.push(Block { insts: b.insts, term });
        }
        let func = Function {
            name: self.name,
            params: self.params,
            is_kernel: self.is_kernel,
            reg_types: self.reg_types,
            blocks,
            private_bytes: self.private_bytes,
        };
        verify::verify_function(&func)?;
        Ok(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_function() {
        let mut b = FunctionBuilder::new("f", true);
        let p = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let one = b.const_f64(1.0);
        let two = b.const_f64(2.0);
        let three = b.fadd(one, two, ScalarType::F64);
        let zero = b.const_i64(0);
        let slot = b.gep(p, zero, ScalarType::F64);
        b.store(slot, three, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid function");
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.params.len(), 1);
        assert!(f.is_kernel);
        assert_eq!(f.inst_count(), 6);
    }

    #[test]
    fn unterminated_block_is_an_error() {
        let b = FunctionBuilder::new("f", false);
        match b.finish() {
            Err(BuildError::UnterminatedBlock(BlockId(0))) => {}
            other => panic!("expected unterminated-block error, got {other:?}"),
        }
    }

    #[test]
    fn control_flow_diamond() {
        let mut b = FunctionBuilder::new("f", true);
        let cond = b.const_bool(true);
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.branch(cond, t, e);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(e);
        b.jump(join);
        b.switch_to(join);
        b.ret();
        let f = b.finish().expect("valid function");
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", false);
        b.ret();
        b.ret();
    }

    #[test]
    fn private_allocation_accumulates() {
        let mut b = FunctionBuilder::new("f", true);
        let p0 = b.alloc_private(32, ScalarType::F64);
        let p1 = b.alloc_private(16, ScalarType::F64);
        b.ret();
        let f = b.finish().expect("valid");
        assert_eq!(f.private_bytes, 48);
        assert_ne!(p0, p1);
    }
}
