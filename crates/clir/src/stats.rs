//! Dynamic execution statistics.
//!
//! The device performance models in `bop-fpga`, `bop-gpu` and `bop-cpu`
//! are driven by these counters rather than by hand-written formulas per
//! kernel: the interpreter counts what actually executed, and the models
//! convert counts into cycles. `block_execs` is the FPGA-relevant metric
//! (each basic-block execution of a work-item occupies one slot of the
//! synthesized pipeline), while the op counters drive the GPU/CPU
//! throughput models.

use crate::ir::{BinOp, Builtin};
use crate::types::{AddressSpace, ScalarType};

/// Counts of executed operations by class and width.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpCounts {
    /// f32 additions/subtractions.
    pub add32: u64,
    /// f64 additions/subtractions.
    pub add64: u64,
    /// f32 multiplications.
    pub mul32: u64,
    /// f64 multiplications.
    pub mul64: u64,
    /// f32 divisions / remainders.
    pub div32: u64,
    /// f64 divisions / remainders.
    pub div64: u64,
    /// f32 min/max.
    pub minmax32: u64,
    /// f64 min/max.
    pub minmax64: u64,
    /// f32 `exp`/`log` evaluations.
    pub transc32: u64,
    /// f64 `exp`/`log` evaluations.
    pub transc64: u64,
    /// f32 `pow` evaluations.
    pub pow32: u64,
    /// f64 `pow` evaluations.
    pub pow64: u64,
    /// f32 `sqrt` evaluations.
    pub sqrt32: u64,
    /// f64 `sqrt` evaluations.
    pub sqrt64: u64,
    /// Comparisons (any type).
    pub cmp: u64,
    /// Selects.
    pub select: u64,
    /// Integer/boolean ALU operations (including address arithmetic).
    pub int_alu: u64,
    /// Scalar conversions.
    pub cast: u64,
    /// Register copies.
    pub mov: u64,
    /// Work-item geometry queries.
    pub wi_query: u64,
}

impl OpCounts {
    pub(crate) fn count_bin(&mut self, op: BinOp, ty: ScalarType) {
        self.count_bins(op, ty, 1);
    }

    /// Bulk form of [`Self::count_bin`]: charge `n` executions at once
    /// (used by the lane engine to charge a whole SIMT group).
    pub(crate) fn count_bins(&mut self, op: BinOp, ty: ScalarType, n: u64) {
        let f32w = ty == ScalarType::F32;
        if ty.is_float() {
            match op {
                BinOp::Add | BinOp::Sub => *pick(f32w, &mut self.add32, &mut self.add64) += n,
                BinOp::Mul => *pick(f32w, &mut self.mul32, &mut self.mul64) += n,
                BinOp::Div | BinOp::Rem => *pick(f32w, &mut self.div32, &mut self.div64) += n,
                BinOp::Min | BinOp::Max => *pick(f32w, &mut self.minmax32, &mut self.minmax64) += n,
                _ => self.int_alu += n,
            }
        } else {
            self.int_alu += n;
        }
    }

    pub(crate) fn count_builtin(&mut self, func: Builtin, ty: ScalarType) {
        let f32w = ty == ScalarType::F32;
        match func {
            Builtin::Exp | Builtin::Log => *pick(f32w, &mut self.transc32, &mut self.transc64) += 1,
            Builtin::Pow => *pick(f32w, &mut self.pow32, &mut self.pow64) += 1,
            Builtin::Sqrt => *pick(f32w, &mut self.sqrt32, &mut self.sqrt64) += 1,
        }
    }

    /// Simple floating-point operations (add/sub/mul/min/max/cmp-adjacent)
    /// at the given width, the unit the GPU ALU model charges 1 slot for.
    pub fn simple_flops(&self, f64_width: bool) -> u64 {
        if f64_width {
            self.add64 + self.mul64 + self.minmax64
        } else {
            self.add32 + self.mul32 + self.minmax32
        }
    }

    /// Expensive floating-point operations (div/transcendental/pow/sqrt) at
    /// the given width.
    pub fn hard_flops(&self, f64_width: bool) -> u64 {
        if f64_width {
            self.div64 + self.transc64 + self.pow64 + self.sqrt64
        } else {
            self.div32 + self.transc32 + self.pow32 + self.sqrt32
        }
    }

    /// Total counted operations of any class.
    pub fn total(&self) -> u64 {
        self.add32
            + self.add64
            + self.mul32
            + self.mul64
            + self.div32
            + self.div64
            + self.minmax32
            + self.minmax64
            + self.transc32
            + self.transc64
            + self.pow32
            + self.pow64
            + self.sqrt32
            + self.sqrt64
            + self.cmp
            + self.select
            + self.int_alu
            + self.cast
            + self.mov
            + self.wi_query
    }

    fn merge(&mut self, other: &OpCounts) {
        self.add32 += other.add32;
        self.add64 += other.add64;
        self.mul32 += other.mul32;
        self.mul64 += other.mul64;
        self.div32 += other.div32;
        self.div64 += other.div64;
        self.minmax32 += other.minmax32;
        self.minmax64 += other.minmax64;
        self.transc32 += other.transc32;
        self.transc64 += other.transc64;
        self.pow32 += other.pow32;
        self.pow64 += other.pow64;
        self.sqrt32 += other.sqrt32;
        self.sqrt64 += other.sqrt64;
        self.cmp += other.cmp;
        self.select += other.select;
        self.int_alu += other.int_alu;
        self.cast += other.cast;
        self.mov += other.mov;
        self.wi_query += other.wi_query;
    }
}

fn pick<'a>(f32w: bool, a: &'a mut u64, b: &'a mut u64) -> &'a mut u64 {
    if f32w {
        a
    } else {
        b
    }
}

/// Counts and byte volumes of memory accesses by address space.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemCounts {
    /// Number of loads from global/constant memory.
    pub global_loads: u64,
    /// Bytes loaded from global/constant memory.
    pub global_load_bytes: u64,
    /// Number of stores to global memory.
    pub global_stores: u64,
    /// Bytes stored to global memory.
    pub global_store_bytes: u64,
    /// Number of local-memory loads.
    pub local_loads: u64,
    /// Bytes loaded from local memory.
    pub local_load_bytes: u64,
    /// Number of local-memory stores.
    pub local_stores: u64,
    /// Bytes stored to local memory.
    pub local_store_bytes: u64,
    /// Number of private-memory accesses (either direction).
    pub private_accesses: u64,
}

impl MemCounts {
    pub(crate) fn count_load(&mut self, space: AddressSpace, bytes: usize) {
        match space {
            AddressSpace::Global | AddressSpace::Constant => {
                self.global_loads += 1;
                self.global_load_bytes += bytes as u64;
            }
            AddressSpace::Local => {
                self.local_loads += 1;
                self.local_load_bytes += bytes as u64;
            }
            AddressSpace::Private => self.private_accesses += 1,
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    /// Charge `n` loads of `bytes` bytes each in one call (the
    /// lane-vectorized engine charges a whole SIMT group at once).
    pub(crate) fn count_loads(&mut self, space: AddressSpace, bytes: usize, n: u64) {
        match space {
            AddressSpace::Global | AddressSpace::Constant => {
                self.global_loads += n;
                self.global_load_bytes += bytes as u64 * n;
            }
            AddressSpace::Local => {
                self.local_loads += n;
                self.local_load_bytes += bytes as u64 * n;
            }
            AddressSpace::Private => self.private_accesses += n,
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    /// Charge `n` stores of `bytes` bytes each in one call.
    pub(crate) fn count_stores(&mut self, space: AddressSpace, bytes: usize, n: u64) {
        match space {
            AddressSpace::Global | AddressSpace::Constant => {
                self.global_stores += n;
                self.global_store_bytes += bytes as u64 * n;
            }
            AddressSpace::Local => {
                self.local_stores += n;
                self.local_store_bytes += bytes as u64 * n;
            }
            AddressSpace::Private => self.private_accesses += n,
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    pub(crate) fn count_store(&mut self, space: AddressSpace, bytes: usize) {
        match space {
            AddressSpace::Global | AddressSpace::Constant => {
                self.global_stores += 1;
                self.global_store_bytes += bytes as u64;
            }
            AddressSpace::Local => {
                self.local_stores += 1;
                self.local_store_bytes += bytes as u64;
            }
            AddressSpace::Private => self.private_accesses += 1,
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    /// Total bytes moved to/from global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    fn merge(&mut self, other: &MemCounts) {
        self.global_loads += other.global_loads;
        self.global_load_bytes += other.global_load_bytes;
        self.global_stores += other.global_stores;
        self.global_store_bytes += other.global_store_bytes;
        self.local_loads += other.local_loads;
        self.local_load_bytes += other.local_load_bytes;
        self.local_stores += other.local_stores;
        self.local_store_bytes += other.local_store_bytes;
        self.private_accesses += other.private_accesses;
    }
}

/// All statistics produced by one (or several, merged) work-group runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Executions of each basic block, summed over work-items. A block
    /// execution corresponds to one occupancy slot of the FPGA pipeline.
    pub block_execs: Vec<u64>,
    /// Work-group barrier releases.
    pub barriers: u64,
    /// Work-item execution phases (segments between suspensions).
    pub item_phases: u64,
    /// Successful pipe reads.
    pub pipe_reads: u64,
    /// Successful pipe writes.
    pub pipe_writes: u64,
    /// Read attempts that stalled on an empty FIFO.
    pub pipe_read_stalls: u64,
    /// Write attempts that stalled on a full FIFO.
    pub pipe_write_stalls: u64,
    /// Operation counts by class.
    pub ops: OpCounts,
    /// Memory access counts by space.
    pub mem: MemCounts,
}

impl ExecStats {
    /// Statistics for a function with `blocks` basic blocks, all counters
    /// zero.
    pub fn with_blocks(blocks: usize) -> ExecStats {
        ExecStats { block_execs: vec![0; blocks], ..ExecStats::default() }
    }

    /// Total basic-block executions (pipeline slots).
    pub fn total_block_execs(&self) -> u64 {
        self.block_execs.iter().sum()
    }

    /// Accumulate `other` into `self`.
    ///
    /// # Panics
    /// Panics if the block counts refer to functions with different block
    /// counts (merging stats of unrelated kernels is a bug).
    pub fn merge(&mut self, other: &ExecStats) {
        if self.block_execs.is_empty() {
            self.block_execs = vec![0; other.block_execs.len()];
        }
        assert_eq!(
            self.block_execs.len(),
            other.block_execs.len(),
            "merging stats of different kernels"
        );
        for (a, b) in self.block_execs.iter_mut().zip(&other.block_execs) {
            *a += b;
        }
        self.barriers += other.barriers;
        self.item_phases += other.item_phases;
        self.pipe_reads += other.pipe_reads;
        self.pipe_writes += other.pipe_writes;
        self.pipe_read_stalls += other.pipe_read_stalls;
        self.pipe_write_stalls += other.pipe_write_stalls;
        self.ops.merge(&other.ops);
        self.mem.merge(&other.mem);
    }

    /// Scale every counter by `k` (used when extrapolating a measured
    /// per-option profile to a batch of `k` options).
    pub fn scaled(&self, k: u64) -> ExecStats {
        let mut out = self.clone();
        for b in &mut out.block_execs {
            *b *= k;
        }
        out.barriers *= k;
        out.item_phases *= k;
        out.pipe_reads *= k;
        out.pipe_writes *= k;
        out.pipe_read_stalls *= k;
        out.pipe_write_stalls *= k;
        let o = &mut out.ops;
        for f in [
            &mut o.add32,
            &mut o.add64,
            &mut o.mul32,
            &mut o.mul64,
            &mut o.div32,
            &mut o.div64,
            &mut o.minmax32,
            &mut o.minmax64,
            &mut o.transc32,
            &mut o.transc64,
            &mut o.pow32,
            &mut o.pow64,
            &mut o.sqrt32,
            &mut o.sqrt64,
            &mut o.cmp,
            &mut o.select,
            &mut o.int_alu,
            &mut o.cast,
            &mut o.mov,
            &mut o.wi_query,
        ] {
            *f *= k;
        }
        let m = &mut out.mem;
        for f in [
            &mut m.global_loads,
            &mut m.global_load_bytes,
            &mut m.global_stores,
            &mut m.global_store_bytes,
            &mut m.local_loads,
            &mut m.local_load_bytes,
            &mut m.local_stores,
            &mut m.local_store_bytes,
            &mut m.private_accesses,
        ] {
            *f *= k;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_op_classification() {
        let mut c = OpCounts::default();
        c.count_bin(BinOp::Add, ScalarType::F64);
        c.count_bin(BinOp::Sub, ScalarType::F64);
        c.count_bin(BinOp::Mul, ScalarType::F32);
        c.count_bin(BinOp::Max, ScalarType::F64);
        c.count_bin(BinOp::Add, ScalarType::I64);
        assert_eq!(c.add64, 2);
        assert_eq!(c.mul32, 1);
        assert_eq!(c.minmax64, 1);
        assert_eq!(c.int_alu, 1);
        assert_eq!(c.simple_flops(true), 3);
        assert_eq!(c.simple_flops(false), 1);
    }

    #[test]
    fn builtin_classification() {
        let mut c = OpCounts::default();
        c.count_builtin(Builtin::Pow, ScalarType::F64);
        c.count_builtin(Builtin::Exp, ScalarType::F32);
        c.count_builtin(Builtin::Sqrt, ScalarType::F64);
        assert_eq!(c.pow64, 1);
        assert_eq!(c.transc32, 1);
        assert_eq!(c.hard_flops(true), 2);
        assert_eq!(c.hard_flops(false), 1);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = ExecStats::with_blocks(2);
        a.block_execs[0] = 3;
        a.ops.add64 = 5;
        a.mem.count_load(AddressSpace::Global, 8);
        let mut b = ExecStats::with_blocks(2);
        b.block_execs[1] = 4;
        b.barriers = 2;
        a.merge(&b);
        assert_eq!(a.total_block_execs(), 7);
        assert_eq!(a.barriers, 2);
        let s = a.scaled(3);
        assert_eq!(s.total_block_execs(), 21);
        assert_eq!(s.ops.add64, 15);
        assert_eq!(s.mem.global_load_bytes, 24);
        assert_eq!(s.barriers, 6);
    }

    #[test]
    #[should_panic(expected = "different kernels")]
    fn merging_mismatched_blocks_panics() {
        let mut a = ExecStats::with_blocks(2);
        let b = ExecStats::with_blocks(3);
        a.merge(&b);
    }
}
