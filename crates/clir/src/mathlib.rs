//! Pluggable device math libraries.
//!
//! Every device model executes kernels through a [`MathLib`]:
//!
//! * [`ExactMath`] — the host libm; used for the CPU reference and the GPU
//!   (whose `pow` showed no accuracy issue in the paper).
//! * [`DeviceMath`] — the from-scratch [`crate::softmath`] routines with a
//!   configurable internal datapath width. [`DeviceMath::altera_13_0`]
//!   reproduces the reduced-precision `pow` core of Altera's OpenCL
//!   compiler 13.0, the source of the ~1e-3 RMSE reported for kernel IV.B
//!   on the FPGA (paper Section V.C).

use crate::softmath;

/// Elementary-function provider used by the interpreter.
pub trait MathLib: Send + Sync {
    /// Short identifying name (for reports).
    fn name(&self) -> &str;

    /// `e^x` in binary64.
    fn exp64(&self, x: f64) -> f64;
    /// `ln x` in binary64.
    fn log64(&self, x: f64) -> f64;
    /// `x^y` in binary64.
    fn pow64(&self, x: f64, y: f64) -> f64;
    /// `sqrt x` in binary64.
    fn sqrt64(&self, x: f64) -> f64 {
        x.sqrt()
    }

    /// `e^x` in binary32 (default: via the binary64 path).
    fn exp32(&self, x: f32) -> f32 {
        self.exp64(x as f64) as f32
    }
    /// `ln x` in binary32 (default: via the binary64 path).
    fn log32(&self, x: f32) -> f32 {
        self.log64(x as f64) as f32
    }
    /// `x^y` in binary32 (default: via the binary64 path).
    fn pow32(&self, x: f32, y: f32) -> f32 {
        self.pow64(x as f64, y as f64) as f32
    }
    /// `sqrt x` in binary32.
    fn sqrt32(&self, x: f32) -> f32 {
        x.sqrt()
    }
}

/// Host libm — bit-exact reference semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMath;

impl MathLib for ExactMath {
    fn name(&self) -> &str {
        "exact"
    }

    fn exp64(&self, x: f64) -> f64 {
        x.exp()
    }

    fn log64(&self, x: f64) -> f64 {
        x.ln()
    }

    fn pow64(&self, x: f64, y: f64) -> f64 {
        x.powf(y)
    }
}

/// Device math built on [`crate::softmath`], with an optional reduced
/// internal datapath for the `pow` core.
///
/// `exp` and `log` always run at full softmath precision (no accuracy issue
/// was reported for them); `pow_quant_bits`, when set, truncates the
/// intermediate logarithm, product and exponential of the composite
/// `pow = exp(y·log x)` to that many mantissa bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMath {
    /// Internal datapath width of the `pow` core, in mantissa bits.
    /// `None` means full precision.
    pub pow_quant_bits: Option<u32>,
}

impl DeviceMath {
    /// A full-precision device library.
    pub fn full() -> DeviceMath {
        DeviceMath { pow_quant_bits: None }
    }

    /// The Altera OpenCL 13.0 model: a `pow` core whose internal datapath
    /// carries 16 mantissa bits. Calibrated so the paper's use case
    /// (double precision, 1024-step trees) shows a price RMSE of ~1e-3
    /// against the exact reference, as reported in Section V.C.
    pub fn altera_13_0() -> DeviceMath {
        DeviceMath { pow_quant_bits: Some(16) }
    }

    /// The Altera OpenCL 13.0 SP1 model: the paper anticipated the
    /// service-pack fixing the `pow` operator; this library has no
    /// quantisation.
    pub fn altera_13_0_sp1() -> DeviceMath {
        DeviceMath::full()
    }
}

impl Default for DeviceMath {
    fn default() -> DeviceMath {
        DeviceMath::full()
    }
}

impl MathLib for DeviceMath {
    fn name(&self) -> &str {
        match self.pow_quant_bits {
            Some(_) => "device(reduced-pow)",
            None => "device(full)",
        }
    }

    fn exp64(&self, x: f64) -> f64 {
        softmath::exp(x)
    }

    fn log64(&self, x: f64) -> f64 {
        softmath::log(x)
    }

    fn pow64(&self, x: f64, y: f64) -> f64 {
        softmath::pow(x, y, self.pow_quant_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_math_is_libm() {
        let m = ExactMath;
        assert_eq!(m.exp64(1.0), 1f64.exp());
        assert_eq!(m.log64(2.0), 2f64.ln());
        assert_eq!(m.pow64(2.0, 10.0), 1024.0);
        assert_eq!(m.sqrt64(9.0), 3.0);
        assert_eq!(m.exp32(0.0), 1.0);
    }

    #[test]
    fn device_full_is_close_to_libm() {
        let m = DeviceMath::full();
        for &x in &[0.1, 0.9, 1.5, 20.0] {
            assert!((m.exp64(x) - x.exp()).abs() / x.exp() < 1e-13);
            assert!((m.log64(x) - x.ln()).abs() <= 1e-13 * x.ln().abs().max(1.0));
        }
        assert!((m.pow64(1.01, 512.0) - 1.01f64.powf(512.0)).abs() / 1.01f64.powf(512.0) < 1e-12);
    }

    #[test]
    fn altera_pow_is_visibly_inexact() {
        let bad = DeviceMath::altera_13_0();
        let good = DeviceMath::full();
        let u: f64 = 1.0065; // up factor for sigma=0.2, T=1, N=1024 scale
        let exact = u.powf(-1024.0);
        let e_bad = ((bad.pow64(u, -1024.0) - exact) / exact).abs();
        let e_good = ((good.pow64(u, -1024.0) - exact) / exact).abs();
        assert!(e_bad > 1e-6, "reduced pow should be visibly wrong: {e_bad}");
        assert!(e_good < 1e-12, "full pow should be accurate: {e_good}");
        // exp/log are NOT degraded by the pow bug.
        assert!((bad.exp64(1.0) - 1f64.exp()).abs() < 1e-13);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(ExactMath.name(), DeviceMath::altera_13_0().name());
        assert_ne!(DeviceMath::full().name(), DeviceMath::altera_13_0().name());
    }

    #[test]
    fn f32_defaults_round_through_f64() {
        let m = DeviceMath::full();
        let x = 1.7f32;
        assert!((m.exp32(x) - x.exp()).abs() < 1e-5);
        assert!((m.pow32(1.01, 100.0) - 1.01f32.powf(100.0)).abs() < 1e-3);
    }
}
