//! Textual dump of the IR, for diagnostics, tests and documentation.

use crate::ir::{BinOp, Block, CmpOp, Function, Inst, Module, Terminator, UnOp};
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_kernel { "kernel" } else { "func" };
        write!(f, "{kind} @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} %{}", p.ty, p.name)?;
        }
        writeln!(f, ") [regs={}, private={}B]", self.reg_types.len(), self.private_bytes)?;
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "b{bi}:")?;
            write_block(f, block)?;
        }
        Ok(())
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, block: &Block) -> fmt::Result {
    for inst in &block.insts {
        writeln!(f, "  {}", InstDisplay(inst))?;
    }
    match &block.term {
        Terminator::Jump(t) => writeln!(f, "  jump b{}", t.0),
        Terminator::Branch { cond, then_bb, else_bb } => {
            writeln!(f, "  br r{}, b{}, b{}", cond.0, then_bb.0, else_bb.0)
        }
        Terminator::Return => writeln!(f, "  ret"),
    }
}

struct InstDisplay<'a>(&'a Inst);

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Inst::Const { dst, val } => write!(f, "r{} = const {val}", dst.0),
            Inst::Mov { dst, src } => write!(f, "r{} = r{}", dst.0, src.0),
            Inst::Bin { op, ty, dst, a, b } => {
                write!(f, "r{} = {}.{ty} r{}, r{}", dst.0, bin_name(*op), a.0, b.0)
            }
            Inst::Un { op, ty, dst, a } => {
                write!(f, "r{} = {}.{ty} r{}", dst.0, un_name(*op), a.0)
            }
            Inst::Cmp { op, ty, dst, a, b } => {
                write!(f, "r{} = cmp.{}.{ty} r{}, r{}", dst.0, cmp_name(*op), a.0, b.0)
            }
            Inst::Select { ty, dst, cond, a, b } => {
                write!(f, "r{} = select.{ty} r{}, r{}, r{}", dst.0, cond.0, a.0, b.0)
            }
            Inst::Cast { dst, a, from, to } => {
                write!(f, "r{} = cast r{} : {from} -> {to}", dst.0, a.0)
            }
            Inst::Call { func, ty, dst, args } => {
                write!(f, "r{} = {}.{ty}(", dst.0, func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "r{}", a.0)?;
                }
                write!(f, ")")
            }
            Inst::WorkItem { query, dim, dst } => {
                write!(f, "r{} = {}({dim})", dst.0, query.name())
            }
            Inst::Gep { dst, base, index, elem } => {
                write!(f, "r{} = gep.{elem} r{}, r{}", dst.0, base.0, index.0)
            }
            Inst::Load { dst, ptr, ty } => write!(f, "r{} = load.{ty} r{}", dst.0, ptr.0),
            Inst::Store { ptr, val, ty } => write!(f, "store.{ty} r{}, r{}", ptr.0, val.0),
            Inst::Barrier => write!(f, "barrier"),
            Inst::PipeRead { dst, pipe, ty } => {
                write!(f, "r{} = pipe_read.{ty} r{}", dst.0, pipe.0)
            }
            Inst::PipeWrite { pipe, val, ty } => {
                write!(f, "pipe_write.{ty} r{}, r{}", pipe.0, val.0)
            }
            Inst::Phi { ty, dst, args } => {
                write!(f, "r{} = phi.{ty} [", dst.0)?;
                for (i, (bb, r)) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "b{}: r{}", bb.0, r.0)?;
                }
                write!(f, "]")
            }
        }
    }
}

pub(crate) fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

pub(crate) fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::Abs => "abs",
        UnOp::Floor => "floor",
    }
}

pub(crate) fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module {}", self.source_name)?;
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::types::{AddressSpace, ScalarType, Type};

    #[test]
    fn function_dump_is_nonempty_and_structured() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let gid = b.global_id(0);
        let x = b.cast(gid, ScalarType::I64, ScalarType::F64);
        let two = b.const_f64(2.0);
        let y = b.fmul(two, x, ScalarType::F64);
        let slot = b.gep(out, gid, ScalarType::F64);
        b.store(slot, y, ScalarType::F64);
        b.barrier();
        b.ret();
        let f = b.finish().expect("valid");
        let dump = f.to_string();
        assert!(dump.contains("kernel @k"));
        assert!(dump.contains("get_global_id(0)"));
        assert!(dump.contains("mul.double"));
        assert!(dump.contains("store.double"));
        assert!(dump.contains("barrier"));
        assert!(dump.contains("ret"));
    }
}
