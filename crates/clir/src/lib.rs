//! # bop-clir — dataflow IR and interpreter for the bop OpenCL/FPGA stack
//!
//! This crate is the common substrate of the DATE 2014 reproduction: a small,
//! register-based intermediate representation (IR) for OpenCL-C kernels,
//! together with
//!
//! * a work-group **interpreter** with faithful barrier suspension semantics
//!   ([`interp`]), and a compiled **bytecode engine** ([`bytecode`]) that is
//!   bit-identical to it but replaces tree-walking with a linear dispatch
//!   loop,
//! * an optimizing **pass pipeline** ([`passes`]: constant folding, DCE,
//!   local CSE, branch simplification) standing in for the scalar cleanups
//!   of the offline `aoc` compiler,
//! * pluggable **device math libraries** ([`mathlib`]) including a
//!   reduced-precision library that reproduces the paper's FPGA `pow`
//!   operator inaccuracy (Section V.C of the paper),
//! * **dynamic execution statistics** ([`stats`]) consumed by the FPGA, GPU
//!   and CPU performance models, and
//! * an IR [`verify`]er and a [`builder`] for constructing functions in
//!   tests without the front-end.
//!
//! The front-end that produces this IR from OpenCL C sources lives in the
//! `bop-clc` crate; devices that consume it live in `bop-fpga`, `bop-gpu`
//! and `bop-cpu`.
//!
//! ## Example
//!
//! Build a tiny kernel by hand and run one work-group of four items:
//!
//! ```
//! use bop_clir::builder::FunctionBuilder;
//! use bop_clir::ir::Module;
//! use bop_clir::interp::{GroupShape, KernelArgValue, VecMemory, WorkGroupRun};
//! use bop_clir::mathlib::ExactMath;
//! use bop_clir::types::{AddressSpace, ScalarType, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // __kernel void twice(__global double* out) { out[gid] = 2.0 * gid; }
//! let mut b = FunctionBuilder::new("twice", true);
//! let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
//! let gid = b.global_id(0);
//! let gid_f = b.cast(gid, ScalarType::I64, ScalarType::F64);
//! let two = b.const_f64(2.0);
//! let v = b.fmul(two, gid_f, ScalarType::F64);
//! let slot = b.gep(out, gid, ScalarType::F64);
//! b.store(slot, v, ScalarType::F64);
//! b.ret();
//! let func = b.finish()?;
//! let module = Module::from_functions("example", vec![func]);
//!
//! let mut mem = VecMemory::new();
//! let buf = mem.alloc_global(4 * 8);
//! let shape = GroupShape::linear(4, 4, 0);
//! let mut run = WorkGroupRun::new(module.kernel("twice").unwrap(), shape,
//!                                 &[KernelArgValue::GlobalBuffer(buf)], 0)?;
//! run.run(&mut mem, &ExactMath)?;
//! assert_eq!(mem.read_f64(buf, 3), 6.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod bytecode;
pub mod display;
pub mod eval;
pub mod interp;
pub mod ir;
pub mod mathlib;
pub mod passes;
pub mod pipes;
pub mod softmath;
pub mod stats;
pub mod types;
pub mod value;
pub mod verify;

pub use ir::{
    BinOp, Block, BlockId, Builtin, CmpOp, Function, Inst, Module, Param, RegId, Terminator, UnOp,
    WiQuery,
};
pub use types::{AddressSpace, ScalarType, Type};
pub use value::{PtrValue, Value};
