//! Work-group interpreter with barrier suspension.
//!
//! One [`WorkGroupRun`] executes all work-items of a single work-group.
//! Items run one at a time until they either retire ([`Inst::Barrier`]-free
//! kernels run to completion immediately) or reach a barrier, at which point
//! they suspend. When every *live* item has suspended at the same barrier,
//! the group is released and execution continues — this reproduces the
//! hardware barrier behaviour of the Altera OpenCL flow, where work-items
//! that have retired no longer participate in synchronisation (the paper's
//! kernel IV.B relies on this: the work-item for tree row `k` exits its loop
//! after time step `t = k`, while rows below keep iterating).
//!
//! Items that suspend at *different* barriers raise
//! [`ExecError::BarrierDivergence`], turning an OpenCL undefined behaviour
//! into a deterministic diagnostic.

use crate::eval::{eval_bin, eval_cast, eval_cmp, eval_un};
use crate::ir::{Builtin, Function, Inst, Terminator, WiQuery};
use crate::mathlib::MathLib;
use crate::pipes::{decode_value, encode_value, PipeHub};
use crate::stats::ExecStats;
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{PtrValue, Value};
use std::fmt;

/// Default per-run instruction budget; guards against runaway loops in
/// tests. Roughly enough for a 256-step binomial tree work-group.
pub const DEFAULT_STEP_LIMIT: u64 = 2_000_000_000;

/// Error raised by a memory implementation on an invalid access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccessError {
    /// Address space of the failing access.
    pub space: AddressSpace,
    /// Buffer handle.
    pub buffer: u32,
    /// Byte offset of the access.
    pub offset: i64,
    /// Access width in bytes.
    pub len: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for MemAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} access: buffer #{} offset {} len {}: {}",
            self.space, self.buffer, self.offset, self.len, self.reason
        )
    }
}

impl std::error::Error for MemAccessError {}

/// Execution error.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Work-items suspended at different barriers (undefined behaviour in
    /// OpenCL; reported deterministically here).
    BarrierDivergence {
        /// (block, instruction) positions of two conflicting barriers.
        a: (usize, usize),
        /// Second position.
        b: (usize, usize),
    },
    /// Invalid memory access.
    Mem(MemAccessError),
    /// Arithmetic trap (e.g. integer division by zero).
    Trap(String),
    /// The instruction budget was exhausted (likely an infinite loop).
    StepLimitExceeded,
    /// Kernel arguments did not match the kernel signature.
    BadArgs(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BarrierDivergence { a, b } => {
                write!(f, "work-items diverged: barriers at b{}:{} and b{}:{}", a.0, a.1, b.0, b.1)
            }
            ExecError::Mem(e) => write!(f, "{e}"),
            ExecError::Trap(msg) => write!(f, "trap: {msg}"),
            ExecError::StepLimitExceeded => write!(f, "instruction budget exhausted"),
            ExecError::BadArgs(msg) => write!(f, "bad kernel arguments: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Message prefix marking traps that were *injected* by the simulator's
/// fault layer rather than raised by executing kernel code. Both engines
/// report genuine traps without this prefix, so the runtime can tell a
/// deterministic arithmetic trap (never worth retrying) from a spurious
/// injected one.
pub const INJECTED_TRAP_PREFIX: &str = "injected:";

impl ExecError {
    /// A spurious trap injected by a fault plan, marked with
    /// [`INJECTED_TRAP_PREFIX`] so it is distinguishable from traps the
    /// kernel actually raised.
    pub fn injected_trap(detail: &str) -> ExecError {
        ExecError::Trap(format!("{INJECTED_TRAP_PREFIX} {detail}"))
    }

    /// True when this error is a trap injected via [`ExecError::injected_trap`].
    pub fn is_injected(&self) -> bool {
        matches!(self, ExecError::Trap(msg) if msg.starts_with(INJECTED_TRAP_PREFIX))
    }
}

impl From<MemAccessError> for ExecError {
    fn from(e: MemAccessError) -> ExecError {
        ExecError::Mem(e)
    }
}

/// Global/local memory provider used by the interpreter.
///
/// Private memory is handled inside the interpreter itself; implementations
/// only see `Global`, `Constant` and `Local` accesses.
pub trait Memory {
    /// Load a scalar of type `ty` at `ptr`.
    ///
    /// # Errors
    /// Returns [`MemAccessError`] for out-of-bounds or unknown buffers.
    fn load(&mut self, ptr: PtrValue, ty: ScalarType) -> Result<Value, MemAccessError>;

    /// Store `val` at `ptr`.
    ///
    /// # Errors
    /// Returns [`MemAccessError`] for out-of-bounds, unknown or read-only
    /// buffers.
    fn store(&mut self, ptr: PtrValue, val: Value) -> Result<(), MemAccessError>;

    /// A raw view (base pointer, length in bytes) of the buffer behind
    /// `(space, buffer)`, if the implementation can expose one.
    ///
    /// The lane-vectorized engine uses this to resolve a buffer once per
    /// SIMT group and then perform per-lane bounds-checked copies,
    /// instead of paying a full [`Memory::load`]/[`Memory::store`] per
    /// lane. Returning `None` (the default) is always correct — callers
    /// must fall back to the per-access methods, which also keeps the
    /// error reporting for unknown buffers in one place.
    ///
    /// # Safety contract for callers
    /// The pointer is valid for `len` bytes only until the next call to
    /// any `&mut self` method of the same memory (allocation may move
    /// buffers). Accesses must stay in bounds, and concurrent use from
    /// other work-groups is governed by the same race-freedom contract
    /// as [`SharedGlobals`].
    fn raw_region(&mut self, space: AddressSpace, buffer: u32) -> Option<(*mut u8, usize)> {
        let _ = (space, buffer);
        None
    }
}

/// The global-memory arena of one context: the buffers that outlive a
/// kernel launch and are visible to every work-group.
///
/// Splitting globals from the local-memory arenas (see [`LocalArena`])
/// is what makes parallel work-group execution possible: one
/// `GlobalArena` is shared across the worker threads of a dispatch
/// through a [`SharedGlobals`] view while every worker owns its private
/// local allocator.
#[derive(Debug, Default)]
pub struct GlobalArena {
    bufs: Vec<Vec<u8>>,
}

impl GlobalArena {
    /// An empty arena with no buffers.
    pub fn new() -> GlobalArena {
        GlobalArena::default()
    }

    /// Allocate a zeroed buffer of `bytes` bytes, returning its handle.
    pub fn alloc(&mut self, bytes: usize) -> u32 {
        self.bufs.push(vec![0; bytes]);
        self.bufs.len() as u32 - 1
    }

    /// Raw bytes of a buffer.
    ///
    /// # Panics
    /// Panics if `buf` is not a valid handle.
    pub fn bytes(&self, buf: u32) -> &[u8] {
        &self.bufs[buf as usize]
    }

    /// Mutable raw bytes of a buffer.
    ///
    /// # Panics
    /// Panics if `buf` is not a valid handle.
    pub fn bytes_mut(&mut self, buf: u32) -> &mut [u8] {
        &mut self.bufs[buf as usize]
    }

    /// A thread-shareable view over every buffer of the arena, for the
    /// duration of one kernel dispatch. The exclusive borrow guarantees
    /// no other safe access to the arena while the view is alive.
    pub fn shared(&mut self) -> SharedGlobals<'_> {
        SharedGlobals {
            bufs: self
                .bufs
                .iter_mut()
                .map(|b| BufView { ptr: b.as_mut_ptr(), len: b.len() })
                .collect(),
            _arena: std::marker::PhantomData,
        }
    }
}

/// The local-memory arena of one worker: `__local` scratch buffers that
/// live for a single work-group and are re-allocated between groups.
#[derive(Debug, Default)]
pub struct LocalArena {
    bufs: Vec<Vec<u8>>,
}

impl LocalArena {
    /// An empty arena with no buffers.
    pub fn new() -> LocalArena {
        LocalArena::default()
    }

    /// Allocate a zeroed buffer of `bytes` bytes, returning its slot.
    pub fn alloc(&mut self, bytes: usize) -> u32 {
        self.bufs.push(vec![0; bytes]);
        self.bufs.len() as u32 - 1
    }

    /// Drop all allocations (called between work-groups).
    pub fn clear(&mut self) {
        self.bufs.clear();
    }
}

#[derive(Debug, Clone, Copy)]
struct BufView {
    ptr: *mut u8,
    len: usize,
}

/// A view of a [`GlobalArena`] that can be shared across the worker
/// threads of one parallel dispatch.
///
/// # Safety contract
///
/// The view is created from `&mut GlobalArena`, so for its whole
/// lifetime the borrow checker keeps every other (safe) access to the
/// arena out. Within the dispatch, loads and stores go through raw
/// pointers with explicit bounds checks; concurrent accesses from
/// different work-groups are sound as long as no two groups touch the
/// same bytes with at least one of them writing. OpenCL gives
/// work-groups no inter-group memory-consistency guarantees, so a
/// kernel that races across groups is undefined behaviour on real
/// hardware too — the simulator inherits exactly that contract (and the
/// sequential-vs-parallel equivalence tests in `tests/parallel_exec.rs`
/// pin it down for the kernels this repository ships).
pub struct SharedGlobals<'a> {
    bufs: Vec<BufView>,
    _arena: std::marker::PhantomData<&'a mut GlobalArena>,
}

// SAFETY: the view owns no data; it aliases a GlobalArena that is
// exclusively borrowed for the view's lifetime. Cross-thread use is
// restricted to race-free kernels per the contract documented above.
unsafe impl Send for SharedGlobals<'_> {}
unsafe impl Sync for SharedGlobals<'_> {}

impl SharedGlobals<'_> {
    /// Checked byte offset of an access, with the same error text as the
    /// slice-backed path so parallel and sequential runs fail identically.
    fn checked_off(
        &self,
        view: BufView,
        ptr: PtrValue,
        len: usize,
    ) -> Result<usize, MemAccessError> {
        usize::try_from(ptr.offset).ok().filter(|o| o + len <= view.len).ok_or_else(|| {
            MemAccessError {
                space: ptr.space,
                buffer: ptr.buffer,
                offset: ptr.offset,
                len,
                reason: format!("out of bounds (size {})", view.len),
            }
        })
    }

    fn view(&self, ptr: PtrValue, len: usize) -> Result<BufView, MemAccessError> {
        self.bufs.get(ptr.buffer as usize).copied().ok_or_else(|| MemAccessError {
            space: ptr.space,
            buffer: ptr.buffer,
            offset: ptr.offset,
            len,
            reason: "unknown buffer".into(),
        })
    }

    /// Load a scalar of type `ty` at `ptr`.
    ///
    /// # Errors
    /// Returns [`MemAccessError`] for out-of-bounds or unknown buffers.
    pub fn load(&self, ptr: PtrValue, ty: ScalarType) -> Result<Value, MemAccessError> {
        let len = ty.size_bytes();
        let view = self.view(ptr, len)?;
        let off = self.checked_off(view, ptr, len)?;
        let mut raw = [0u8; 8];
        // SAFETY: `off + len <= view.len` was just checked; reads of
        // bytes another group concurrently writes are excluded by the
        // race-freedom contract of the type.
        unsafe { std::ptr::copy_nonoverlapping(view.ptr.add(off), raw.as_mut_ptr(), len) };
        Ok(Value::from_le_bytes(ty, &raw[..len]))
    }

    /// Store `val` at `ptr`.
    ///
    /// # Errors
    /// Returns [`MemAccessError`] for out-of-bounds, unknown or
    /// read-only buffers.
    pub fn store(&self, ptr: PtrValue, val: Value) -> Result<(), MemAccessError> {
        let ty = val.scalar_type().expect("store of scalar");
        let len = ty.size_bytes();
        if ptr.space == AddressSpace::Constant {
            return Err(MemAccessError {
                space: ptr.space,
                buffer: ptr.buffer,
                offset: ptr.offset,
                len,
                reason: "store to __constant memory".into(),
            });
        }
        let view = self.view(ptr, len)?;
        let off = self.checked_off(view, ptr, len)?;
        let raw = val.to_le_bytes();
        // SAFETY: bounds checked above; disjointness across groups per
        // the race-freedom contract of the type.
        unsafe { std::ptr::copy_nonoverlapping(raw.as_ptr(), view.ptr.add(off), len) };
        Ok(())
    }
}

/// The [`Memory`] of one worker thread of a parallel dispatch: global
/// and `__constant` accesses go to the dispatch-wide [`SharedGlobals`]
/// view, local accesses to the worker's private [`LocalArena`].
pub struct WorkerMemory<'g, 'a> {
    globals: &'g SharedGlobals<'a>,
    locals: LocalArena,
}

impl<'g, 'a> WorkerMemory<'g, 'a> {
    /// A worker memory with an empty local arena.
    pub fn new(globals: &'g SharedGlobals<'a>) -> WorkerMemory<'g, 'a> {
        WorkerMemory { globals, locals: LocalArena::new() }
    }

    /// Allocate a zeroed local buffer of `bytes` bytes, returning its
    /// slot.
    pub fn alloc_local(&mut self, bytes: usize) -> u32 {
        self.locals.alloc(bytes)
    }

    /// Drop all local allocations (called between work-groups).
    pub fn clear_locals(&mut self) {
        self.locals.clear();
    }
}

impl Memory for WorkerMemory<'_, '_> {
    fn load(&mut self, ptr: PtrValue, ty: ScalarType) -> Result<Value, MemAccessError> {
        match ptr.space {
            AddressSpace::Global | AddressSpace::Constant => self.globals.load(ptr, ty),
            AddressSpace::Local | AddressSpace::Private => {
                let len = ty.size_bytes();
                let region = region_of(&mut self.locals.bufs, ptr, len)?;
                let off = slice_off(region, ptr, len)?;
                Ok(Value::from_le_bytes(ty, &region[off..off + len]))
            }
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    fn store(&mut self, ptr: PtrValue, val: Value) -> Result<(), MemAccessError> {
        match ptr.space {
            AddressSpace::Global | AddressSpace::Constant => self.globals.store(ptr, val),
            AddressSpace::Local | AddressSpace::Private => {
                let ty = val.scalar_type().expect("store of scalar");
                let len = ty.size_bytes();
                let region = region_of(&mut self.locals.bufs, ptr, len)?;
                let off = slice_off(region, ptr, len)?;
                region[off..off + len].copy_from_slice(&val.to_le_bytes());
                Ok(())
            }
            AddressSpace::Pipe => unreachable!("pipes are not load/store addressable"),
        }
    }

    fn raw_region(&mut self, space: AddressSpace, buffer: u32) -> Option<(*mut u8, usize)> {
        match space {
            AddressSpace::Global | AddressSpace::Constant => {
                self.globals.bufs.get(buffer as usize).map(|v| (v.ptr, v.len))
            }
            AddressSpace::Local => {
                self.locals.bufs.get_mut(buffer as usize).map(|b| (b.as_mut_ptr(), b.len()))
            }
            AddressSpace::Private | AddressSpace::Pipe => None,
        }
    }
}

/// Look a buffer up in a slice-backed arena (`Private` never reaches a
/// [`Memory`] implementation, so any unmatched space reports an unknown
/// buffer).
fn region_of(
    bufs: &mut [Vec<u8>],
    ptr: PtrValue,
    len: usize,
) -> Result<&mut Vec<u8>, MemAccessError> {
    let buffer =
        if ptr.space == AddressSpace::Private { None } else { bufs.get_mut(ptr.buffer as usize) };
    buffer.ok_or_else(|| MemAccessError {
        space: ptr.space,
        buffer: ptr.buffer,
        offset: ptr.offset,
        len,
        reason: "unknown buffer".into(),
    })
}

/// Checked byte offset of an access into a slice-backed buffer.
fn slice_off(region: &[u8], ptr: PtrValue, len: usize) -> Result<usize, MemAccessError> {
    usize::try_from(ptr.offset).ok().filter(|o| o + len <= region.len()).ok_or_else(|| {
        MemAccessError {
            space: ptr.space,
            buffer: ptr.buffer,
            offset: ptr.offset,
            len,
            reason: format!("out of bounds (size {})", region.len()),
        }
    })
}

/// Simple vector-backed [`Memory`] holding both arenas in one value,
/// used by tests, examples and single-threaded callers.
#[derive(Debug, Default)]
pub struct VecMemory {
    globals: Vec<Vec<u8>>,
    locals: Vec<Vec<u8>>,
}

impl VecMemory {
    /// An empty memory with no buffers.
    pub fn new() -> VecMemory {
        VecMemory::default()
    }

    /// Allocate a zeroed global buffer of `bytes` bytes, returning its
    /// handle.
    pub fn alloc_global(&mut self, bytes: usize) -> u32 {
        self.globals.push(vec![0; bytes]);
        self.globals.len() as u32 - 1
    }

    /// Allocate a zeroed local buffer of `bytes` bytes, returning its slot.
    pub fn alloc_local(&mut self, bytes: usize) -> u32 {
        self.locals.push(vec![0; bytes]);
        self.locals.len() as u32 - 1
    }

    /// Drop all local allocations (called between work-groups).
    pub fn clear_locals(&mut self) {
        self.locals.clear();
    }

    /// Raw bytes of a global buffer.
    ///
    /// # Panics
    /// Panics if `buf` is not a valid handle.
    pub fn global_bytes(&self, buf: u32) -> &[u8] {
        &self.globals[buf as usize]
    }

    /// Mutable raw bytes of a global buffer.
    ///
    /// # Panics
    /// Panics if `buf` is not a valid handle.
    pub fn global_bytes_mut(&mut self, buf: u32) -> &mut [u8] {
        &mut self.globals[buf as usize]
    }

    /// Write an `f64` at element index `idx` of global buffer `buf`.
    ///
    /// # Panics
    /// Panics on out-of-range access.
    pub fn write_f64(&mut self, buf: u32, idx: usize, val: f64) {
        let off = idx * 8;
        self.globals[buf as usize][off..off + 8].copy_from_slice(&val.to_le_bytes());
    }

    /// Read an `f64` at element index `idx` of global buffer `buf`.
    ///
    /// # Panics
    /// Panics on out-of-range access.
    pub fn read_f64(&self, buf: u32, idx: usize) -> f64 {
        let off = idx * 8;
        f64::from_le_bytes(self.globals[buf as usize][off..off + 8].try_into().expect("f64"))
    }

    fn region(
        &mut self,
        space: AddressSpace,
        ptr: PtrValue,
        len: usize,
    ) -> Result<&mut Vec<u8>, MemAccessError> {
        match space {
            AddressSpace::Global | AddressSpace::Constant => region_of(&mut self.globals, ptr, len),
            _ => region_of(&mut self.locals, ptr, len),
        }
    }
}

impl Memory for VecMemory {
    fn load(&mut self, ptr: PtrValue, ty: ScalarType) -> Result<Value, MemAccessError> {
        let len = ty.size_bytes();
        let region = self.region(ptr.space, ptr, len)?;
        let off = slice_off(region, ptr, len)?;
        Ok(Value::from_le_bytes(ty, &region[off..off + len]))
    }

    fn store(&mut self, ptr: PtrValue, val: Value) -> Result<(), MemAccessError> {
        let ty = val.scalar_type().expect("store of scalar");
        let len = ty.size_bytes();
        if ptr.space == AddressSpace::Constant {
            return Err(MemAccessError {
                space: ptr.space,
                buffer: ptr.buffer,
                offset: ptr.offset,
                len,
                reason: "store to __constant memory".into(),
            });
        }
        let region = self.region(ptr.space, ptr, len)?;
        let off = slice_off(region, ptr, len)?;
        region[off..off + len].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    fn raw_region(&mut self, space: AddressSpace, buffer: u32) -> Option<(*mut u8, usize)> {
        let arena = match space {
            AddressSpace::Global | AddressSpace::Constant => &mut self.globals,
            AddressSpace::Local => &mut self.locals,
            AddressSpace::Private | AddressSpace::Pipe => return None,
        };
        arena.get_mut(buffer as usize).map(|b| (b.as_mut_ptr(), b.len()))
    }
}

/// Geometry of one work-group within an NDRange (three dimensions, as in
/// OpenCL; the paper's kernels are one-dimensional).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupShape {
    /// Global NDRange size per dimension.
    pub global_size: [usize; 3],
    /// Work-group size per dimension.
    pub local_size: [usize; 3],
    /// This group's id per dimension.
    pub group_id: [usize; 3],
}

impl GroupShape {
    /// A one-dimensional shape: `global` total items, groups of `local`,
    /// this run covering group `group`.
    ///
    /// # Panics
    /// Panics if `local` is zero or `global` is not a multiple of `local`.
    pub fn linear(global: usize, local: usize, group: usize) -> GroupShape {
        assert!(local > 0, "work-group size must be positive");
        assert_eq!(global % local, 0, "global size must be a multiple of the work-group size");
        GroupShape {
            global_size: [global, 1, 1],
            local_size: [local, 1, 1],
            group_id: [group, 0, 0],
        }
    }

    /// Number of work-items in one work-group.
    pub fn items_per_group(&self) -> usize {
        self.local_size.iter().product()
    }

    /// Number of work-groups per dimension.
    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global_size[0] / self.local_size[0],
            self.global_size[1] / self.local_size[1],
            self.global_size[2] / self.local_size[2],
        ]
    }

    /// Decompose a linear item index into a 3-D local id.
    pub fn local_id(&self, item: usize) -> [usize; 3] {
        let l = self.local_size;
        [item % l[0], (item / l[0]) % l[1], item / (l[0] * l[1])]
    }
}

/// A kernel argument value bound by the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArgValue {
    /// A scalar argument.
    Scalar(Value),
    /// A global (or `__constant`) buffer handle.
    GlobalBuffer(u32),
    /// A local-memory slot handle (allocated per work-group by the caller).
    LocalBuffer(u32),
    /// A pipe handle (created on the owning [`PipeHub`]).
    Pipe(u32),
}

/// Result of one resumable engine pass (see `run_resumable` on each
/// engine): either every work-item retired, or at least one is suspended
/// at a pipe operation that could not make progress and the caller must
/// run the peer kernel before resuming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All work-items retired; statistics are final.
    Complete,
    /// At least one work-item is suspended at a full/empty pipe.
    Stalled,
}

/// The deterministic trap raised when pipe progress is impossible: a
/// single kernel stalling with no peer, or a co-scheduled launch graph
/// completing a full resume round without one successful pipe op. One
/// message for every engine and scheduler.
pub fn pipe_deadlock_trap() -> ExecError {
    ExecError::Trap("pipe deadlock: no progress possible".into())
}

/// Kernels with pipe parameters model Altera single-work-item tasks: the
/// FIFO order of pipe traffic is only deterministic with exactly one
/// work-item in exactly one group. Every engine constructor applies this
/// check so the trap text is engine independent.
pub(crate) fn check_pipe_shape(
    name: &str,
    params: &[crate::ir::Param],
    shape: &GroupShape,
) -> Result<(), ExecError> {
    let has_pipe = params.iter().any(|p| matches!(p.ty, Type::Ptr(AddressSpace::Pipe, _)));
    if has_pipe && (shape.items_per_group() != 1 || shape.num_groups() != [1, 1, 1]) {
        return Err(ExecError::Trap(format!(
            "pipe kernels are single-work-item tasks: kernel `{name}` launched with {} \
             work-items per group and {:?} groups",
            shape.items_per_group(),
            shape.num_groups()
        )));
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemStatus {
    Running,
    AtBarrier,
    AtPipe,
    Done,
}

struct ItemState {
    block: usize,
    inst: usize,
    regs: Vec<Value>,
    private: Vec<u8>,
    status: ItemStatus,
}

/// Executes the work-items of one work-group.
pub struct WorkGroupRun<'f> {
    func: &'f Function,
    shape: GroupShape,
    items: Vec<ItemState>,
    stats: ExecStats,
    steps: u64,
    step_limit: u64,
}

impl<'f> WorkGroupRun<'f> {
    /// Prepare a run of `func` for the group described by `shape`, with
    /// kernel arguments `args`. `step_limit` of 0 selects
    /// [`DEFAULT_STEP_LIMIT`].
    ///
    /// # Errors
    /// Returns [`ExecError::BadArgs`] if `args` does not match the kernel
    /// signature.
    pub fn new(
        func: &'f Function,
        shape: GroupShape,
        args: &[KernelArgValue],
        step_limit: u64,
    ) -> Result<WorkGroupRun<'f>, ExecError> {
        check_pipe_shape(&func.name, &func.params, &shape)?;
        if args.len() != func.params.len() {
            return Err(ExecError::BadArgs(format!(
                "kernel `{}` takes {} arguments, {} supplied",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut bound = Vec::with_capacity(args.len());
        for (i, (arg, param)) in args.iter().zip(&func.params).enumerate() {
            let v = match (*arg, param.ty) {
                (KernelArgValue::Scalar(v), Type::Scalar(want)) => {
                    if v.scalar_type() != Some(want) {
                        return Err(ExecError::BadArgs(format!(
                            "argument {i} (`{}`): expected {want}, got {v:?}",
                            param.name
                        )));
                    }
                    v
                }
                (KernelArgValue::GlobalBuffer(b), Type::Ptr(space, _))
                    if matches!(space, AddressSpace::Global | AddressSpace::Constant) =>
                {
                    Value::Ptr(PtrValue::new(space, b))
                }
                (KernelArgValue::LocalBuffer(slot), Type::Ptr(AddressSpace::Local, _)) => {
                    Value::Ptr(PtrValue::new(AddressSpace::Local, slot))
                }
                (KernelArgValue::Pipe(id), Type::Ptr(AddressSpace::Pipe, _)) => {
                    Value::Ptr(PtrValue::new(AddressSpace::Pipe, id))
                }
                _ => {
                    return Err(ExecError::BadArgs(format!(
                        "argument {i} (`{}`): {arg:?} does not match parameter type {}",
                        param.name, param.ty
                    )))
                }
            };
            bound.push(v);
        }

        let n = shape.items_per_group();
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let mut regs: Vec<Value> = func
                .reg_types
                .iter()
                .map(|ty| match ty {
                    Type::Scalar(ScalarType::Bool) => Value::Bool(false),
                    Type::Scalar(ScalarType::I32) => Value::I32(0),
                    Type::Scalar(ScalarType::I64) => Value::I64(0),
                    Type::Scalar(ScalarType::F32) => Value::F32(0.0),
                    Type::Scalar(ScalarType::F64) => Value::F64(0.0),
                    Type::Ptr(space, _) => Value::Ptr(PtrValue::new(*space, u32::MAX)),
                })
                .collect();
            regs[..bound.len()].copy_from_slice(&bound);
            items.push(ItemState {
                block: 0,
                inst: 0,
                regs,
                private: vec![0; func.private_bytes],
                status: ItemStatus::Running,
            });
        }
        let mut stats = ExecStats::with_blocks(func.blocks.len());
        // Every live item enters block 0.
        stats.block_execs[0] += n as u64;
        Ok(WorkGroupRun {
            func,
            shape,
            items,
            stats,
            steps: 0,
            step_limit: if step_limit == 0 { DEFAULT_STEP_LIMIT } else { step_limit },
        })
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Consume the run and return its statistics.
    pub fn into_stats(self) -> ExecStats {
        self.stats
    }

    /// Run the whole group to completion with no pipes attached.
    ///
    /// A kernel that touches a pipe under this entry point can never be
    /// unblocked, so a stall is reported as the deterministic
    /// [`pipe_deadlock_trap`]. Callers co-scheduling pipe kernels use
    /// [`WorkGroupRun::run_resumable`] instead.
    ///
    /// # Errors
    /// Propagates memory errors, traps, barrier divergence and step-limit
    /// exhaustion.
    pub fn run(&mut self, mem: &mut dyn Memory, math: &dyn MathLib) -> Result<(), ExecError> {
        let mut pipes = PipeHub::default();
        match self.run_resumable(mem, math, &mut pipes)? {
            RunOutcome::Complete => Ok(()),
            RunOutcome::Stalled => Err(pipe_deadlock_trap()),
        }
    }

    /// Run until every work-item retires ([`RunOutcome::Complete`]) or
    /// the group can make no further progress because a pipe op stalled
    /// ([`RunOutcome::Stalled`]). A stalled run may be resumed by calling
    /// this again once the peer kernel has moved the FIFO; every failed
    /// resume attempt costs one step and one stall count, identically in
    /// all engines.
    ///
    /// # Errors
    /// Propagates memory errors, traps, barrier divergence and step-limit
    /// exhaustion.
    pub fn run_resumable(
        &mut self,
        mem: &mut dyn Memory,
        math: &dyn MathLib,
        pipes: &mut PipeHub,
    ) -> Result<RunOutcome, ExecError> {
        loop {
            let mut any_running = false;
            for item in 0..self.items.len() {
                if matches!(self.items[item].status, ItemStatus::Running | ItemStatus::AtPipe) {
                    any_running = true;
                    self.run_item(item, mem, math, pipes)?;
                }
            }
            let live: Vec<usize> = (0..self.items.len())
                .filter(|&i| self.items[i].status != ItemStatus::Done)
                .collect();
            if live.is_empty() {
                return Ok(RunOutcome::Complete);
            }
            if live.iter().any(|&i| self.items[i].status == ItemStatus::AtPipe) {
                // A stalled pipe op cannot be released locally; hand
                // control back to the co-scheduler.
                return Ok(RunOutcome::Stalled);
            }
            // All live items are now suspended at barriers (run_item only
            // returns on retire, barrier or pipe stall).
            let first = &self.items[live[0]];
            let pos = (first.block, first.inst);
            for &i in &live[1..] {
                let it = &self.items[i];
                if (it.block, it.inst) != pos {
                    return Err(ExecError::BarrierDivergence { a: pos, b: (it.block, it.inst) });
                }
            }
            if !any_running {
                // Defensive: should be unreachable, barrier release below
                // always makes progress.
                return Err(ExecError::Trap("scheduler made no progress".into()));
            }
            // Release the barrier: step every live item past it.
            self.stats.barriers += 1;
            for &i in &live {
                let it = &mut self.items[i];
                it.inst += 1;
                it.status = ItemStatus::Running;
            }
        }
    }

    /// Execute `item` until it retires, reaches a barrier or stalls on a
    /// pipe.
    fn run_item(
        &mut self,
        item: usize,
        mem: &mut dyn Memory,
        math: &dyn MathLib,
        pipes: &mut PipeHub,
    ) -> Result<(), ExecError> {
        self.stats.item_phases += 1;
        loop {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(ExecError::StepLimitExceeded);
            }
            let it = &self.items[item];
            let block = &self.func.blocks[it.block];
            if it.inst < block.insts.len() {
                let inst = &block.insts[it.inst];
                if matches!(inst, Inst::Barrier) {
                    self.items[item].status = ItemStatus::AtBarrier;
                    return Ok(());
                }
                // Pipe ops are handled here rather than in `exec_inst`
                // because, like barriers, they may suspend the item.
                if let Inst::PipeRead { dst, pipe, ty } = inst {
                    let p = it.regs[pipe.index()].as_ptr();
                    match pipes.try_read(p.buffer, *ty).map_err(ExecError::Trap)? {
                        None => {
                            self.stats.pipe_read_stalls += 1;
                            self.items[item].status = ItemStatus::AtPipe;
                            return Ok(());
                        }
                        Some(bits) => {
                            self.stats.pipe_reads += 1;
                            let (dst, ty) = (*dst, *ty);
                            self.items[item].regs[dst.index()] = decode_value(ty, bits);
                        }
                    }
                    self.items[item].status = ItemStatus::Running;
                    self.items[item].inst += 1;
                    continue;
                }
                if let Inst::PipeWrite { pipe, val, ty } = inst {
                    let p = it.regs[pipe.index()].as_ptr();
                    let bits = encode_value(it.regs[val.index()]);
                    if !pipes.try_write(p.buffer, *ty, bits).map_err(ExecError::Trap)? {
                        self.stats.pipe_write_stalls += 1;
                        self.items[item].status = ItemStatus::AtPipe;
                        return Ok(());
                    }
                    self.stats.pipe_writes += 1;
                    self.items[item].status = ItemStatus::Running;
                    self.items[item].inst += 1;
                    continue;
                }
                self.exec_inst(item, inst, mem, math)?;
                self.items[item].inst += 1;
            } else {
                match &block.term {
                    Terminator::Jump(target) => {
                        self.enter_block(item, target.index());
                    }
                    Terminator::Branch { cond, then_bb, else_bb } => {
                        let taken = self.items[item].regs[cond.index()].as_bool();
                        let target = if taken { then_bb } else { else_bb };
                        self.enter_block(item, target.index());
                    }
                    Terminator::Return => {
                        self.items[item].status = ItemStatus::Done;
                        return Ok(());
                    }
                }
            }
        }
    }

    fn enter_block(&mut self, item: usize, block: usize) {
        self.stats.block_execs[block] += 1;
        let it = &mut self.items[item];
        it.block = block;
        it.inst = 0;
    }

    fn exec_inst(
        &mut self,
        item: usize,
        inst: &Inst,
        mem: &mut dyn Memory,
        math: &dyn MathLib,
    ) -> Result<(), ExecError> {
        match inst {
            Inst::Const { dst, val } => {
                self.items[item].regs[dst.index()] = *val;
            }
            Inst::Mov { dst, src } => {
                self.stats.ops.mov += 1;
                self.items[item].regs[dst.index()] = self.items[item].regs[src.index()];
            }
            Inst::Bin { op, ty, dst, a, b } => {
                let regs = &self.items[item].regs;
                let (va, vb) = (regs[a.index()], regs[b.index()]);
                let out = eval_bin(*op, *ty, va, vb).map_err(ExecError::Trap)?;
                self.stats.ops.count_bin(*op, *ty);
                self.items[item].regs[dst.index()] = out;
            }
            Inst::Un { op, ty, dst, a } => {
                let va = self.items[item].regs[a.index()];
                let out = eval_un(*op, *ty, va);
                self.stats.ops.int_alu += 1;
                self.items[item].regs[dst.index()] = out;
            }
            Inst::Cmp { op, ty, dst, a, b } => {
                let regs = &self.items[item].regs;
                let out = eval_cmp(*op, *ty, regs[a.index()], regs[b.index()]);
                self.stats.ops.cmp += 1;
                self.items[item].regs[dst.index()] = Value::Bool(out);
            }
            Inst::Select { ty, dst, cond, a, b } => {
                let regs = &self.items[item].regs;
                let out =
                    if regs[cond.index()].as_bool() { regs[a.index()] } else { regs[b.index()] };
                debug_assert_eq!(out.scalar_type(), Some(*ty));
                self.stats.ops.select += 1;
                self.items[item].regs[dst.index()] = out;
            }
            Inst::Cast { dst, a, from, to } => {
                let va = self.items[item].regs[a.index()];
                self.stats.ops.cast += 1;
                self.items[item].regs[dst.index()] = eval_cast(va, *from, *to);
            }
            Inst::Call { func, ty, dst, args } => {
                let regs = &self.items[item].regs;
                let x = regs[args[0].index()].as_f64();
                let y = args.get(1).map(|r| regs[r.index()].as_f64());
                let out = match func {
                    Builtin::Exp => math.exp64(x),
                    Builtin::Log => math.log64(x),
                    Builtin::Pow => math.pow64(x, y.expect("pow has two args")),
                    Builtin::Sqrt => math.sqrt64(x),
                };
                let out = if *ty == ScalarType::F32 {
                    // Re-run at f32 precision through the library's f32 path.
                    let x32 = x as f32;
                    let v = match func {
                        Builtin::Exp => math.exp32(x32),
                        Builtin::Log => math.log32(x32),
                        Builtin::Pow => math.pow32(x32, y.expect("pow has two args") as f32),
                        Builtin::Sqrt => math.sqrt32(x32),
                    };
                    Value::F32(v)
                } else {
                    Value::F64(out)
                };
                self.stats.ops.count_builtin(*func, *ty);
                self.items[item].regs[dst.index()] = out;
            }
            Inst::WorkItem { query, dim, dst } => {
                let out = self.query(item, *query, *dim as usize);
                self.stats.ops.wi_query += 1;
                self.items[item].regs[dst.index()] = Value::I64(out as i64);
            }
            Inst::Gep { dst, base, index, elem } => {
                let regs = &self.items[item].regs;
                let p = regs[base.index()].as_ptr();
                let idx = regs[index.index()].as_i64();
                self.stats.ops.int_alu += 1;
                self.items[item].regs[dst.index()] = Value::Ptr(p.offset_by(idx, *elem));
            }
            Inst::Load { dst, ptr, ty } => {
                let p = self.items[item].regs[ptr.index()].as_ptr();
                let v = if p.space == AddressSpace::Private {
                    self.private_load(item, p, *ty)?
                } else {
                    mem.load(p, *ty)?
                };
                self.stats.mem.count_load(p.space, ty.size_bytes());
                self.items[item].regs[dst.index()] = v;
            }
            Inst::Store { ptr, val, ty } => {
                let regs = &self.items[item].regs;
                let p = regs[ptr.index()].as_ptr();
                let v = regs[val.index()];
                debug_assert_eq!(v.scalar_type(), Some(*ty));
                if p.space == AddressSpace::Private {
                    self.private_store(item, p, v)?;
                } else {
                    mem.store(p, v)?;
                }
                self.stats.mem.count_store(p.space, ty.size_bytes());
            }
            Inst::Barrier => unreachable!("barrier handled by run_item"),
            Inst::PipeRead { .. } | Inst::PipeWrite { .. } => {
                unreachable!("pipe ops handled by run_item")
            }
            Inst::Phi { .. } => unreachable!("phis are eliminated before execution"),
        }
        Ok(())
    }

    fn private_load(&self, item: usize, p: PtrValue, ty: ScalarType) -> Result<Value, ExecError> {
        let len = ty.size_bytes();
        let arena = &self.items[item].private;
        let off = usize::try_from(p.offset)
            .ok()
            .filter(|o| o + len <= arena.len())
            .ok_or_else(|| private_oob(p, len, arena.len()))?;
        Ok(Value::from_le_bytes(ty, &arena[off..off + len]))
    }

    fn private_store(&mut self, item: usize, p: PtrValue, v: Value) -> Result<(), ExecError> {
        let len = v.scalar_type().expect("scalar").size_bytes();
        let arena = &mut self.items[item].private;
        let alen = arena.len();
        let off = usize::try_from(p.offset)
            .ok()
            .filter(|o| o + len <= alen)
            .ok_or_else(|| private_oob(p, len, alen))?;
        arena[off..off + len].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn query(&self, item: usize, query: WiQuery, dim: usize) -> usize {
        let lid = self.shape.local_id(item);
        let s = &self.shape;
        match query {
            WiQuery::GlobalId => s.group_id[dim] * s.local_size[dim] + lid[dim],
            WiQuery::LocalId => lid[dim],
            WiQuery::GroupId => s.group_id[dim],
            WiQuery::GlobalSize => s.global_size[dim],
            WiQuery::LocalSize => s.local_size[dim],
            WiQuery::NumGroups => s.num_groups()[dim],
        }
    }
}

pub(crate) fn private_oob(p: PtrValue, len: usize, size: usize) -> ExecError {
    ExecError::Mem(MemAccessError {
        space: AddressSpace::Private,
        buffer: 0,
        offset: p.offset,
        len,
        reason: format!("out of bounds (private arena size {size})"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, CmpOp};
    use crate::mathlib::ExactMath;

    fn run_kernel(
        func: &Function,
        global: usize,
        local: usize,
        mem: &mut VecMemory,
        args: &[KernelArgValue],
    ) -> ExecStats {
        let mut total = ExecStats::with_blocks(func.blocks.len());
        for group in 0..global / local {
            let shape = GroupShape::linear(global, local, group);
            let mut run = WorkGroupRun::new(func, shape, args, 0).expect("args");
            run.run(mem, &ExactMath).expect("run");
            total.merge(run.stats());
        }
        total
    }

    #[test]
    fn global_ids_cover_ndrange() {
        // out[gid] = (double)gid
        let mut b = FunctionBuilder::new("ids", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let gid = b.global_id(0);
        let f = b.cast(gid, ScalarType::I64, ScalarType::F64);
        let slot = b.gep(out, gid, ScalarType::F64);
        b.store(slot, f, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16 * 8);
        run_kernel(&func, 16, 4, &mut mem, &[KernelArgValue::GlobalBuffer(buf)]);
        for i in 0..16 {
            assert_eq!(mem.read_f64(buf, i), i as f64);
        }
    }

    #[test]
    fn barrier_synchronises_local_exchange() {
        // Neighbour exchange: l[lid] = lid; barrier; out[gid] = l[(lid+1)%n]
        let mut b = FunctionBuilder::new("xchg", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let loc = b.param("l", Type::ptr(AddressSpace::Local, ScalarType::F64));
        let lid = b.local_id(0);
        let lid_f = b.cast(lid, ScalarType::I64, ScalarType::F64);
        let slot = b.gep(loc, lid, ScalarType::F64);
        b.store(slot, lid_f, ScalarType::F64);
        b.barrier();
        let one = b.const_i64(1);
        let n = b.wi_query(WiQuery::LocalSize, 0);
        let lp1 = b.bin(BinOp::Add, ScalarType::I64, lid, one);
        let idx = b.bin(BinOp::Rem, ScalarType::I64, lp1, n);
        let nslot = b.gep(loc, idx, ScalarType::F64);
        let v = b.load(nslot, ScalarType::F64);
        let gid = b.global_id(0);
        let oslot = b.gep(out, gid, ScalarType::F64);
        b.store(oslot, v, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8 * 8);
        let l = mem.alloc_local(4 * 8);
        let stats = run_kernel(
            &func,
            8,
            4,
            &mut mem,
            &[KernelArgValue::GlobalBuffer(buf), KernelArgValue::LocalBuffer(l)],
        );
        for i in 0..8 {
            assert_eq!(mem.read_f64(buf, i), ((i + 1) % 4) as f64, "item {i}");
        }
        assert_eq!(stats.barriers, 2, "one release per group");
    }

    #[test]
    fn loop_executes_expected_trip_count() {
        // out[0] = sum_{i=0}^{9} i  (single work-item)
        let mut b = FunctionBuilder::new("sum", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let acc = b.fresh(Type::Scalar(ScalarType::F64));
        let zero_f = b.const_f64(0.0);
        b.mov_into(acc, zero_f);
        let i = b.fresh(Type::Scalar(ScalarType::I64));
        let zero = b.const_i64(0);
        b.mov_into(i, zero);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let ten = b.const_i64(10);
        let cond = b.cmp(CmpOp::Lt, ScalarType::I64, i, ten);
        b.branch(cond, body, exit);
        b.switch_to(body);
        let i_f = b.cast(i, ScalarType::I64, ScalarType::F64);
        let newacc = b.fadd(acc, i_f, ScalarType::F64);
        b.mov_into(acc, newacc);
        let one = b.const_i64(1);
        let newi = b.bin(BinOp::Add, ScalarType::I64, i, one);
        b.mov_into(i, newi);
        b.jump(header);
        b.switch_to(exit);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, acc, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let stats = run_kernel(&func, 1, 1, &mut mem, &[KernelArgValue::GlobalBuffer(buf)]);
        assert_eq!(mem.read_f64(buf, 0), 45.0);
        // header executes 11 times, body 10 times.
        assert_eq!(stats.block_execs[1], 11);
        assert_eq!(stats.block_execs[2], 10);
        assert_eq!(stats.ops.add64, 10);
    }

    #[test]
    fn early_exit_items_skip_barriers() {
        // Items with lid >= 2 return before the barrier; the rest sync.
        let mut b = FunctionBuilder::new("early", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let lid = b.local_id(0);
        let two = b.const_i64(2);
        let cond = b.cmp(CmpOp::Ge, ScalarType::I64, lid, two);
        let quit = b.create_block();
        let work = b.create_block();
        b.branch(cond, quit, work);
        b.switch_to(quit);
        b.ret();
        b.switch_to(work);
        b.barrier();
        let gid = b.global_id(0);
        let slot = b.gep(out, gid, ScalarType::F64);
        let one_f = b.const_f64(1.0);
        b.store(slot, one_f, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(4 * 8);
        run_kernel(&func, 4, 4, &mut mem, &[KernelArgValue::GlobalBuffer(buf)]);
        assert_eq!(mem.read_f64(buf, 0), 1.0);
        assert_eq!(mem.read_f64(buf, 1), 1.0);
        assert_eq!(mem.read_f64(buf, 2), 0.0);
        assert_eq!(mem.read_f64(buf, 3), 0.0);
    }

    #[test]
    fn divergent_barriers_detected() {
        // if (lid == 0) { barrier@A } else { barrier@B } — UB, must error.
        let mut b = FunctionBuilder::new("div", true);
        let _out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let lid = b.local_id(0);
        let zero = b.const_i64(0);
        let cond = b.cmp(CmpOp::Eq, ScalarType::I64, lid, zero);
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.branch(cond, t, e);
        b.switch_to(t);
        b.barrier();
        b.jump(join);
        b.switch_to(e);
        b.barrier();
        b.jump(join);
        b.switch_to(join);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let shape = GroupShape::linear(2, 2, 0);
        let mut run =
            WorkGroupRun::new(&func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        match run.run(&mut mem, &ExactMath) {
            Err(ExecError::BarrierDivergence { .. }) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn out_of_bounds_load_reports_error() {
        let mut b = FunctionBuilder::new("oob", true);
        let buf = b.param("buf", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let idx = b.const_i64(100);
        let slot = b.gep(buf, idx, ScalarType::F64);
        let v = b.load(slot, ScalarType::F64);
        let zero = b.const_i64(0);
        let s0 = b.gep(buf, zero, ScalarType::F64);
        b.store(s0, v, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let g = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut run =
            WorkGroupRun::new(&func, shape, &[KernelArgValue::GlobalBuffer(g)], 0).expect("args");
        assert!(matches!(run.run(&mut mem, &ExactMath), Err(ExecError::Mem(_))));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut b = FunctionBuilder::new("spin", true);
        let _p = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let header = b.create_block();
        b.jump(header);
        b.switch_to(header);
        b.jump(header);
        let func = b.finish().expect("valid");
        let mut mem = VecMemory::new();
        let g = mem.alloc_global(8);
        let shape = GroupShape::linear(1, 1, 0);
        let mut run = WorkGroupRun::new(&func, shape, &[KernelArgValue::GlobalBuffer(g)], 1000)
            .expect("args");
        assert!(matches!(run.run(&mut mem, &ExactMath), Err(ExecError::StepLimitExceeded)));
    }

    #[test]
    fn bad_args_rejected() {
        let mut b = FunctionBuilder::new("k", true);
        let _p = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        b.ret();
        let func = b.finish().expect("valid");
        let shape = GroupShape::linear(1, 1, 0);
        assert!(matches!(WorkGroupRun::new(&func, shape, &[], 0), Err(ExecError::BadArgs(_))));
        assert!(matches!(
            WorkGroupRun::new(&func, shape, &[KernelArgValue::Scalar(Value::F64(1.0))], 0),
            Err(ExecError::BadArgs(_))
        ));
    }

    #[test]
    fn private_arrays_are_per_item() {
        // priv[0] = lid; out[gid] = priv[0]
        let mut b = FunctionBuilder::new("priv", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let arena = b.alloc_private(8, ScalarType::F64);
        let lid = b.local_id(0);
        let lf = b.cast(lid, ScalarType::I64, ScalarType::F64);
        b.store(arena, lf, ScalarType::F64);
        b.barrier();
        let v = b.load(arena, ScalarType::F64);
        let gid = b.global_id(0);
        let slot = b.gep(out, gid, ScalarType::F64);
        b.store(slot, v, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(4 * 8);
        run_kernel(&func, 4, 4, &mut mem, &[KernelArgValue::GlobalBuffer(buf)]);
        for i in 0..4 {
            assert_eq!(mem.read_f64(buf, i), i as f64);
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::mathlib::ExactMath;
    use crate::types::{AddressSpace, ScalarType, Type};

    #[test]
    fn three_dimensional_ids_decompose_correctly() {
        // out[gid0 + 4*gid1 + 8*gid2] = lid0 + 10*lid1 + 100*lid2
        let mut b = FunctionBuilder::new("k3d", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let g0 = b.global_id(0);
        let g1 = b.global_id(1);
        let g2 = b.global_id(2);
        let four = b.const_i64(4);
        let eight = b.const_i64(8);
        let t1 = b.bin(crate::ir::BinOp::Mul, ScalarType::I64, g1, four);
        let t2 = b.bin(crate::ir::BinOp::Mul, ScalarType::I64, g2, eight);
        let idx_a = b.bin(crate::ir::BinOp::Add, ScalarType::I64, g0, t1);
        let idx = b.bin(crate::ir::BinOp::Add, ScalarType::I64, idx_a, t2);
        let l0 = b.local_id(0);
        let l1 = b.local_id(1);
        let l2 = b.wi_query(WiQuery::LocalId, 2);
        let ten = b.const_i64(10);
        let hundred = b.const_i64(100);
        let p1 = b.bin(crate::ir::BinOp::Mul, ScalarType::I64, l1, ten);
        let p2 = b.bin(crate::ir::BinOp::Mul, ScalarType::I64, l2, hundred);
        let v_a = b.bin(crate::ir::BinOp::Add, ScalarType::I64, l0, p1);
        let v = b.bin(crate::ir::BinOp::Add, ScalarType::I64, v_a, p2);
        let vf = b.cast(v, ScalarType::I64, ScalarType::F64);
        let slot = b.gep(out, idx, ScalarType::F64);
        b.store(slot, vf, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");

        // One 4x2x2 work-group covering the whole 4x2x2 NDRange.
        let shape =
            GroupShape { global_size: [4, 2, 2], local_size: [4, 2, 2], group_id: [0, 0, 0] };
        assert_eq!(shape.items_per_group(), 16);
        assert_eq!(shape.num_groups(), [1, 1, 1]);
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16 * 8);
        let mut run =
            WorkGroupRun::new(&func, shape, &[KernelArgValue::GlobalBuffer(buf)], 0).expect("args");
        run.run(&mut mem, &ExactMath).expect("runs");
        for z in 0..2usize {
            for y in 0..2usize {
                for x in 0..4usize {
                    let got = mem.read_f64(buf, x + 4 * y + 8 * z);
                    let want = (x + 10 * y + 100 * z) as f64;
                    assert_eq!(got, want, "item ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn negative_pointer_offsets_are_rejected() {
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(16);
        let p = PtrValue { space: AddressSpace::Global, buffer: buf, offset: -8 };
        assert!(mem.load(p, ScalarType::F64).is_err());
        assert!(mem.store(p, Value::F64(1.0)).is_err());
    }
}
