//! Constant evaluation of IR operations.
//!
//! These routines define the arithmetic semantics of the IR in one place;
//! the interpreter executes through them, and the `bop-clc` constant-folding
//! pass calls them at compile time, so folding can never disagree with
//! execution.

use crate::ir::{BinOp, CmpOp, UnOp};
use crate::types::ScalarType;
use crate::value::Value;

/// Evaluate a binary operation at scalar type `ty`.
///
/// # Errors
/// Returns a message for traps (integer division by zero) and malformed
/// combinations (bit operations on floats) — verified IR only produces the
/// former.
pub fn eval_bin(op: BinOp, ty: ScalarType, a: Value, b: Value) -> Result<Value, String> {
    if ty.is_float() {
        if ty == ScalarType::F32 {
            let (x, y) = (a.as_f64() as f32, b.as_f64() as f32);
            let out = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                other => return Err(format!("{other:?} on float operands")),
            };
            return Ok(Value::F32(out));
        }
        let (x, y) = (a.as_f64(), b.as_f64());
        let out = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            other => return Err(format!("{other:?} on float operands")),
        };
        return Ok(Value::F64(out));
    }
    if ty == ScalarType::Bool {
        let (x, y) = (a.as_bool(), b.as_bool());
        let out = match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            BinOp::Xor => x ^ y,
            other => return Err(format!("{other:?} on bool operands")),
        };
        return Ok(Value::Bool(out));
    }
    let (x, y) = (a.as_i64(), b.as_i64());
    let out = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err("integer division by zero".into());
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err("integer remainder by zero".into());
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    };
    Ok(Value::int(ty, out))
}

/// Evaluate a unary operation at scalar type `ty`.
///
/// # Panics
/// Panics on combinations rejected by the verifier (e.g. logical not on a
/// float).
pub fn eval_un(op: UnOp, ty: ScalarType, a: Value) -> Value {
    if ty.is_float() {
        let x = a.as_f64();
        let out = match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Floor => x.floor(),
            UnOp::Not => panic!("logical not on float"),
        };
        return Value::float(ty, out);
    }
    if ty == ScalarType::Bool {
        return match op {
            UnOp::Not => Value::Bool(!a.as_bool()),
            other => panic!("{other:?} on bool"),
        };
    }
    let x = a.as_i64();
    let out = match op {
        UnOp::Neg => x.wrapping_neg(),
        UnOp::Not => !x,
        UnOp::Abs => x.wrapping_abs(),
        UnOp::Floor => x,
    };
    Value::int(ty, out)
}

/// Evaluate a comparison at operand type `ty`.
pub fn eval_cmp(op: CmpOp, ty: ScalarType, a: Value, b: Value) -> bool {
    if ty.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.as_i64(), b.as_i64());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
}

/// Evaluate a scalar conversion.
pub fn eval_cast(a: Value, from: ScalarType, to: ScalarType) -> Value {
    debug_assert_eq!(a.scalar_type(), Some(from));
    match (from.is_float(), to.is_float()) {
        (true, true) => Value::float(to, a.as_f64()),
        (true, false) => Value::int(to, a.as_f64() as i64),
        (false, true) => Value::float(to, a.as_i64() as f64),
        (false, false) => Value::int(to, a.as_i64()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops_round_at_f32() {
        let big = Value::F32(1e8);
        let one = Value::F32(1.0);
        // 1e8 + 1 is not representable in f32; f64 would keep it.
        let out = eval_bin(BinOp::Add, ScalarType::F32, big, one).expect("ok");
        assert_eq!(out, Value::F32(1e8));
        let out =
            eval_bin(BinOp::Add, ScalarType::F64, Value::F64(1e8), Value::F64(1.0)).expect("ok");
        assert_eq!(out, Value::F64(1e8 + 1.0));
    }

    #[test]
    fn int_wrapping_and_traps() {
        let out =
            eval_bin(BinOp::Add, ScalarType::I32, Value::I32(i32::MAX), Value::I32(1)).expect("ok");
        assert_eq!(out, Value::I32(i32::MIN));
        assert!(eval_bin(BinOp::Div, ScalarType::I32, Value::I32(1), Value::I32(0)).is_err());
        assert!(eval_bin(BinOp::Rem, ScalarType::I64, Value::I64(1), Value::I64(0)).is_err());
    }

    #[test]
    fn shift_amounts_masked() {
        let out = eval_bin(BinOp::Shl, ScalarType::I64, Value::I64(1), Value::I64(65)).expect("ok");
        assert_eq!(out, Value::I64(2)); // 65 & 63 == 1
    }

    #[test]
    fn casts() {
        assert_eq!(eval_cast(Value::F64(2.9), ScalarType::F64, ScalarType::I32), Value::I32(2));
        assert_eq!(eval_cast(Value::I32(-1), ScalarType::I32, ScalarType::F64), Value::F64(-1.0));
        assert_eq!(eval_cast(Value::I64(1 << 40), ScalarType::I64, ScalarType::I32), Value::I32(0));
        assert_eq!(eval_cast(Value::Bool(true), ScalarType::Bool, ScalarType::I32), Value::I32(1));
    }

    #[test]
    fn comparisons_with_nan() {
        let nan = Value::F64(f64::NAN);
        assert!(!eval_cmp(CmpOp::Eq, ScalarType::F64, nan, nan));
        assert!(eval_cmp(CmpOp::Ne, ScalarType::F64, nan, nan));
        assert!(!eval_cmp(CmpOp::Lt, ScalarType::F64, nan, Value::F64(1.0)));
    }
}
