//! Register bytecode: a compiled execution engine for kernels.
//!
//! The tree-walking interpreter in [`crate::interp`] re-fetches every
//! instruction through two levels of `Vec` indexing and re-resolves block
//! targets on every loop iteration — per-node overhead the real `aoc`
//! offline compiler would have compiled away. This module flattens a
//! verified [`Function`] once into a [`CompiledKernel`]: a linear stream
//! of register-machine ops with pre-resolved jump offsets, an interned
//! constant pool and specialized opcodes for the hot double-precision
//! arithmetic of the pricing kernels. [`BytecodeRun`] then executes it
//! with a compact dispatch loop.
//!
//! The engine is observationally identical to the tree-walker by
//! construction: same argument-binding errors, same [`ExecStats`]
//! counting (down to the order of count-vs-trap), same step-budget
//! accounting (one step per fetched position, terminators included), and
//! the same barrier-suspension protocol — divergence errors report
//! original `(block, instruction)` positions via a side table. The
//! differential suite in `tests/compile_pipeline.rs` and the proptests in
//! `crates/devtests` pin this contract down.

use crate::eval::{eval_bin, eval_cast, eval_cmp, eval_un};
use crate::interp::{
    private_oob, ExecError, GroupShape, KernelArgValue, Memory, DEFAULT_STEP_LIMIT,
};
use crate::ir::{BinOp, Builtin, CmpOp, Function, Inst, Param, Terminator, UnOp, WiQuery};
use crate::mathlib::MathLib;
use crate::stats::ExecStats;
use crate::types::{AddressSpace, ScalarType, Type};
use crate::value::{PtrValue, Value};
use std::collections::HashMap;
use std::fmt;

/// One flattened instruction. Register and constant-pool indices are
/// pre-resolved `u32`s; jump targets are program counters.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// `r[dst] = consts[idx]`.
    Const {
        dst: u32,
        idx: u32,
    },
    /// `r[dst] = r[src]`.
    Mov {
        dst: u32,
        src: u32,
    },
    /// Specialized `f64` arithmetic (the hot path of both paper kernels).
    AddF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    SubF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    MulF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    DivF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    MinF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    MaxF64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Specialized `i64` addition (loop counters, index arithmetic).
    AddI64 {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Generic two-operand op, evaluated through [`eval_bin`] so trap
    /// messages match the tree-walker exactly.
    Bin {
        op: BinOp,
        ty: ScalarType,
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        op: UnOp,
        ty: ScalarType,
        dst: u32,
        a: u32,
    },
    Cmp {
        op: CmpOp,
        ty: ScalarType,
        dst: u32,
        a: u32,
        b: u32,
    },
    Select {
        ty: ScalarType,
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
    },
    Cast {
        dst: u32,
        a: u32,
        from: ScalarType,
        to: ScalarType,
    },
    /// One-argument math builtin (`exp`, `log`, `sqrt`).
    Call1 {
        func: Builtin,
        ty: ScalarType,
        dst: u32,
        a: u32,
    },
    /// `pow(a, b)`.
    Pow {
        ty: ScalarType,
        dst: u32,
        a: u32,
        b: u32,
    },
    WorkItem {
        query: WiQuery,
        dim: u8,
        dst: u32,
    },
    Gep {
        dst: u32,
        base: u32,
        index: u32,
        elem: ScalarType,
    },
    Load {
        dst: u32,
        ptr: u32,
        ty: ScalarType,
    },
    Store {
        ptr: u32,
        val: u32,
        ty: ScalarType,
    },
    Barrier,
    /// Unconditional jump to `target` (pc); `block` is the destination
    /// block id, charged to `block_execs`.
    Jump {
        target: u32,
        block: u32,
    },
    /// Conditional branch; targets are pcs, blocks are the destination
    /// block ids.
    Branch {
        cond: u32,
        then_target: u32,
        then_block: u32,
        else_target: u32,
        else_block: u32,
    },
    Return,
}

/// Interning key for the constant pool. [`Value`] itself is not `Eq`
/// (floats), so constants are keyed on their bit patterns: `2.0` and
/// `2.0` share a slot, `0.0` and `-0.0` do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Bool(bool),
    I32(i32),
    I64(i64),
    F32(u32),
    F64(u64),
    Ptr(AddressSpace, u32, i64),
}

impl ConstKey {
    fn of(v: Value) -> ConstKey {
        match v {
            Value::Bool(b) => ConstKey::Bool(b),
            Value::I32(x) => ConstKey::I32(x),
            Value::I64(x) => ConstKey::I64(x),
            Value::F32(x) => ConstKey::F32(x.to_bits()),
            Value::F64(x) => ConstKey::F64(x.to_bits()),
            Value::Ptr(p) => ConstKey::Ptr(p.space, p.buffer, p.offset),
        }
    }
}

/// A kernel flattened to linear bytecode, ready for repeated dispatch.
///
/// Compilation is infallible on verified IR; build it once per kernel
/// (the OpenCL-style runtime caches it in the program object) and run it
/// many times via [`BytecodeRun`]. The `Display` impl renders a
/// disassembly listing (the `aoc` bench bin's `--dump-bytecode`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    name: String,
    params: Vec<Param>,
    reg_types: Vec<Type>,
    code: Vec<Op>,
    consts: Vec<Value>,
    block_starts: Vec<u32>,
    /// `(block, instruction)` source position of every pc, for error
    /// reports that must match the tree-walker.
    pos_of_pc: Vec<(u32, u32)>,
    private_bytes: usize,
}

impl CompiledKernel {
    /// Flatten `func` into bytecode. The function must be verified
    /// (see [`crate::verify::verify_function`]); compilation itself
    /// cannot fail.
    pub fn compile(func: &Function) -> CompiledKernel {
        let mut code: Vec<Op> = Vec::with_capacity(func.inst_count() + func.blocks.len());
        let mut pos_of_pc: Vec<(u32, u32)> = Vec::with_capacity(code.capacity());
        let mut consts: Vec<Value> = Vec::new();
        let mut intern: HashMap<ConstKey, u32> = HashMap::new();
        let mut block_starts: Vec<u32> = Vec::with_capacity(func.blocks.len());

        let mut intern_const = |val: Value| -> u32 {
            *intern.entry(ConstKey::of(val)).or_insert_with(|| {
                consts.push(val);
                consts.len() as u32 - 1
            })
        };

        for (bi, block) in func.blocks.iter().enumerate() {
            block_starts.push(code.len() as u32);
            for (ii, inst) in block.insts.iter().enumerate() {
                pos_of_pc.push((bi as u32, ii as u32));
                let r = |r: crate::ir::RegId| r.0;
                code.push(match inst {
                    Inst::Const { dst, val } => Op::Const { dst: r(*dst), idx: intern_const(*val) },
                    Inst::Mov { dst, src } => Op::Mov { dst: r(*dst), src: r(*src) },
                    Inst::Bin { op, ty, dst, a, b } => {
                        let (dst, a, b) = (r(*dst), r(*a), r(*b));
                        match (op, ty) {
                            (BinOp::Add, ScalarType::F64) => Op::AddF64 { dst, a, b },
                            (BinOp::Sub, ScalarType::F64) => Op::SubF64 { dst, a, b },
                            (BinOp::Mul, ScalarType::F64) => Op::MulF64 { dst, a, b },
                            (BinOp::Div, ScalarType::F64) => Op::DivF64 { dst, a, b },
                            (BinOp::Min, ScalarType::F64) => Op::MinF64 { dst, a, b },
                            (BinOp::Max, ScalarType::F64) => Op::MaxF64 { dst, a, b },
                            (BinOp::Add, ScalarType::I64) => Op::AddI64 { dst, a, b },
                            _ => Op::Bin { op: *op, ty: *ty, dst, a, b },
                        }
                    }
                    Inst::Un { op, ty, dst, a } => {
                        Op::Un { op: *op, ty: *ty, dst: r(*dst), a: r(*a) }
                    }
                    Inst::Cmp { op, ty, dst, a, b } => {
                        Op::Cmp { op: *op, ty: *ty, dst: r(*dst), a: r(*a), b: r(*b) }
                    }
                    Inst::Select { ty, dst, cond, a, b } => {
                        Op::Select { ty: *ty, dst: r(*dst), cond: r(*cond), a: r(*a), b: r(*b) }
                    }
                    Inst::Cast { dst, a, from, to } => {
                        Op::Cast { dst: r(*dst), a: r(*a), from: *from, to: *to }
                    }
                    Inst::Call { func: f, ty, dst, args } => match f {
                        Builtin::Pow => {
                            Op::Pow { ty: *ty, dst: r(*dst), a: r(args[0]), b: r(args[1]) }
                        }
                        _ => Op::Call1 { func: *f, ty: *ty, dst: r(*dst), a: r(args[0]) },
                    },
                    Inst::WorkItem { query, dim, dst } => {
                        Op::WorkItem { query: *query, dim: *dim, dst: r(*dst) }
                    }
                    Inst::Gep { dst, base, index, elem } => {
                        Op::Gep { dst: r(*dst), base: r(*base), index: r(*index), elem: *elem }
                    }
                    Inst::Load { dst, ptr, ty } => Op::Load { dst: r(*dst), ptr: r(*ptr), ty: *ty },
                    Inst::Store { ptr, val, ty } => {
                        Op::Store { ptr: r(*ptr), val: r(*val), ty: *ty }
                    }
                    Inst::Barrier => Op::Barrier,
                });
            }
            pos_of_pc.push((bi as u32, block.insts.len() as u32));
            code.push(match &block.term {
                Terminator::Jump(t) => Op::Jump { target: 0, block: t.0 },
                Terminator::Branch { cond, then_bb, else_bb } => Op::Branch {
                    cond: cond.0,
                    then_target: 0,
                    then_block: then_bb.0,
                    else_target: 0,
                    else_block: else_bb.0,
                },
                Terminator::Return => Op::Return,
            });
        }

        // Resolve block ids to program counters.
        for op in &mut code {
            match op {
                Op::Jump { target, block } => *target = block_starts[*block as usize],
                Op::Branch { then_target, then_block, else_target, else_block, .. } => {
                    *then_target = block_starts[*then_block as usize];
                    *else_target = block_starts[*else_block as usize];
                }
                _ => {}
            }
        }

        CompiledKernel {
            name: func.name.clone(),
            params: func.params.clone(),
            reg_types: func.reg_types.clone(),
            code,
            consts,
            block_starts,
            pos_of_pc,
            private_bytes: func.private_bytes,
        }
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of flattened ops (instructions plus terminators).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Number of interned constants in the pool.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Number of basic blocks in the source function.
    pub fn num_blocks(&self) -> usize {
        self.block_starts.len()
    }

    fn pos(&self, pc: usize) -> (usize, usize) {
        let (b, i) = self.pos_of_pc[pc];
        (b as usize, i as usize)
    }
}

fn reg_list(f: &mut fmt::Formatter<'_>, regs: &[u32]) -> fmt::Result {
    for (i, r) in regs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "r{r}")?;
    }
    Ok(())
}

impl fmt::Display for CompiledKernel {
    /// Disassembly listing: constant pool, then the op stream with pc
    /// labels and block markers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::display::{bin_name, cmp_name, un_name};
        write!(f, "bytecode @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} %{}", p.ty, p.name)?;
        }
        writeln!(
            f,
            ") [ops={}, regs={}, consts={}, private={}B]",
            self.code.len(),
            self.reg_types.len(),
            self.consts.len(),
            self.private_bytes
        )?;
        for (i, c) in self.consts.iter().enumerate() {
            writeln!(f, "  c{i} = {c}")?;
        }
        for (pc, op) in self.code.iter().enumerate() {
            if let Some(bi) = self.block_starts.iter().position(|&s| s as usize == pc) {
                writeln!(f, "b{bi}:")?;
            }
            write!(f, "  {pc:04}  ")?;
            match op {
                Op::Const { dst, idx } => {
                    write!(f, "r{dst} = const c{idx} ; {}", self.consts[*idx as usize])?
                }
                Op::Mov { dst, src } => write!(f, "r{dst} = r{src}")?,
                Op::AddF64 { dst, a, b } => write!(f, "r{dst} = add.double r{a}, r{b}")?,
                Op::SubF64 { dst, a, b } => write!(f, "r{dst} = sub.double r{a}, r{b}")?,
                Op::MulF64 { dst, a, b } => write!(f, "r{dst} = mul.double r{a}, r{b}")?,
                Op::DivF64 { dst, a, b } => write!(f, "r{dst} = div.double r{a}, r{b}")?,
                Op::MinF64 { dst, a, b } => write!(f, "r{dst} = min.double r{a}, r{b}")?,
                Op::MaxF64 { dst, a, b } => write!(f, "r{dst} = max.double r{a}, r{b}")?,
                Op::AddI64 { dst, a, b } => write!(f, "r{dst} = add.long r{a}, r{b}")?,
                Op::Bin { op, ty, dst, a, b } => {
                    write!(f, "r{dst} = {}.{ty} r{a}, r{b}", bin_name(*op))?
                }
                Op::Un { op, ty, dst, a } => write!(f, "r{dst} = {}.{ty} r{a}", un_name(*op))?,
                Op::Cmp { op, ty, dst, a, b } => {
                    write!(f, "r{dst} = cmp.{}.{ty} r{a}, r{b}", cmp_name(*op))?
                }
                Op::Select { ty, dst, cond, a, b } => {
                    write!(f, "r{dst} = select.{ty} r{cond}, r{a}, r{b}")?
                }
                Op::Cast { dst, a, from, to } => {
                    write!(f, "r{dst} = cast r{a} : {from} -> {to}")?
                }
                Op::Call1 { func, ty, dst, a } => {
                    write!(f, "r{dst} = {}.{ty}(", func.name())?;
                    reg_list(f, &[*a])?;
                    write!(f, ")")?
                }
                Op::Pow { ty, dst, a, b } => {
                    write!(f, "r{dst} = pow.{ty}(")?;
                    reg_list(f, &[*a, *b])?;
                    write!(f, ")")?
                }
                Op::WorkItem { query, dim, dst } => {
                    write!(f, "r{dst} = {}({dim})", query.name())?
                }
                Op::Gep { dst, base, index, elem } => {
                    write!(f, "r{dst} = gep.{elem} r{base}, r{index}")?
                }
                Op::Load { dst, ptr, ty } => write!(f, "r{dst} = load.{ty} r{ptr}")?,
                Op::Store { ptr, val, ty } => write!(f, "store.{ty} r{ptr}, r{val}")?,
                Op::Barrier => write!(f, "barrier")?,
                Op::Jump { target, block } => write!(f, "jump @{target:04} (b{block})")?,
                Op::Branch { cond, then_target, then_block, else_target, else_block } => write!(
                    f,
                    "br r{cond}, @{then_target:04} (b{then_block}), @{else_target:04} (b{else_block})"
                )?,
                Op::Return => write!(f, "ret")?,
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BcStatus {
    Running,
    AtBarrier,
    Done,
}

struct BcItem {
    pc: usize,
    regs: Vec<Value>,
    private: Vec<u8>,
    status: BcStatus,
    /// Precomputed 3-D local id (saves two divisions per geometry query).
    lid: [usize; 3],
}

/// Executes the work-items of one work-group over a [`CompiledKernel`].
///
/// Drop-in replacement for [`crate::interp::WorkGroupRun`]: same
/// constructor contract, same `run`/`stats`/`into_stats` API, and
/// bit-identical observable behaviour.
pub struct BytecodeRun<'k> {
    kernel: &'k CompiledKernel,
    shape: GroupShape,
    items: Vec<BcItem>,
    stats: ExecStats,
    steps: u64,
    step_limit: u64,
}

impl<'k> BytecodeRun<'k> {
    /// Prepare a run of `kernel` for the group described by `shape`, with
    /// kernel arguments `args`. `step_limit` of 0 selects
    /// [`DEFAULT_STEP_LIMIT`].
    ///
    /// # Errors
    /// Returns [`ExecError::BadArgs`] if `args` does not match the kernel
    /// signature (same messages as the tree-walker).
    pub fn new(
        kernel: &'k CompiledKernel,
        shape: GroupShape,
        args: &[KernelArgValue],
        step_limit: u64,
    ) -> Result<BytecodeRun<'k>, ExecError> {
        if args.len() != kernel.params.len() {
            return Err(ExecError::BadArgs(format!(
                "kernel `{}` takes {} arguments, {} supplied",
                kernel.name,
                kernel.params.len(),
                args.len()
            )));
        }
        let mut bound = Vec::with_capacity(args.len());
        for (i, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
            let v = match (*arg, param.ty) {
                (KernelArgValue::Scalar(v), Type::Scalar(want)) => {
                    if v.scalar_type() != Some(want) {
                        return Err(ExecError::BadArgs(format!(
                            "argument {i} (`{}`): expected {want}, got {v:?}",
                            param.name
                        )));
                    }
                    v
                }
                (KernelArgValue::GlobalBuffer(b), Type::Ptr(space, _))
                    if matches!(space, AddressSpace::Global | AddressSpace::Constant) =>
                {
                    Value::Ptr(PtrValue::new(space, b))
                }
                (KernelArgValue::LocalBuffer(slot), Type::Ptr(AddressSpace::Local, _)) => {
                    Value::Ptr(PtrValue::new(AddressSpace::Local, slot))
                }
                _ => {
                    return Err(ExecError::BadArgs(format!(
                        "argument {i} (`{}`): {arg:?} does not match parameter type {}",
                        param.name, param.ty
                    )))
                }
            };
            bound.push(v);
        }

        let n = shape.items_per_group();
        let mut items = Vec::with_capacity(n);
        for item in 0..n {
            let mut regs: Vec<Value> = kernel
                .reg_types
                .iter()
                .map(|ty| match ty {
                    Type::Scalar(ScalarType::Bool) => Value::Bool(false),
                    Type::Scalar(ScalarType::I32) => Value::I32(0),
                    Type::Scalar(ScalarType::I64) => Value::I64(0),
                    Type::Scalar(ScalarType::F32) => Value::F32(0.0),
                    Type::Scalar(ScalarType::F64) => Value::F64(0.0),
                    Type::Ptr(space, _) => Value::Ptr(PtrValue::new(*space, u32::MAX)),
                })
                .collect();
            regs[..bound.len()].copy_from_slice(&bound);
            items.push(BcItem {
                pc: 0,
                regs,
                private: vec![0; kernel.private_bytes],
                status: BcStatus::Running,
                lid: shape.local_id(item),
            });
        }
        let mut stats = ExecStats::with_blocks(kernel.block_starts.len());
        // Every live item enters block 0.
        stats.block_execs[0] += n as u64;
        Ok(BytecodeRun {
            kernel,
            shape,
            items,
            stats,
            steps: 0,
            step_limit: if step_limit == 0 { DEFAULT_STEP_LIMIT } else { step_limit },
        })
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Consume the run and return its statistics.
    pub fn into_stats(self) -> ExecStats {
        self.stats
    }

    /// Run the whole group to completion.
    ///
    /// # Errors
    /// Propagates memory errors, traps, barrier divergence and step-limit
    /// exhaustion, with the same payloads as the tree-walker.
    pub fn run(&mut self, mem: &mut dyn Memory, math: &dyn MathLib) -> Result<(), ExecError> {
        loop {
            let mut any_running = false;
            for item in 0..self.items.len() {
                if self.items[item].status == BcStatus::Running {
                    any_running = true;
                    self.run_item(item, mem, math)?;
                }
            }
            let live: Vec<usize> =
                (0..self.items.len()).filter(|&i| self.items[i].status != BcStatus::Done).collect();
            if live.is_empty() {
                return Ok(());
            }
            // All live items are now suspended at barriers.
            let pos = self.kernel.pos(self.items[live[0]].pc);
            for &i in &live[1..] {
                let p = self.kernel.pos(self.items[i].pc);
                if p != pos {
                    return Err(ExecError::BarrierDivergence { a: pos, b: p });
                }
            }
            if !any_running {
                // Defensive: should be unreachable, barrier release below
                // always makes progress.
                return Err(ExecError::Trap("scheduler made no progress".into()));
            }
            // Release the barrier: step every live item past it.
            self.stats.barriers += 1;
            for &i in &live {
                let it = &mut self.items[i];
                it.pc += 1;
                it.status = BcStatus::Running;
            }
        }
    }

    /// Execute `item` until it retires or reaches a barrier.
    fn run_item(
        &mut self,
        item: usize,
        mem: &mut dyn Memory,
        math: &dyn MathLib,
    ) -> Result<(), ExecError> {
        self.stats.item_phases += 1;
        let code = &self.kernel.code[..];
        let consts = &self.kernel.consts[..];
        let stats = &mut self.stats;
        let steps = &mut self.steps;
        let step_limit = self.step_limit;
        let shape = &self.shape;
        let it = &mut self.items[item];
        loop {
            *steps += 1;
            if *steps > step_limit {
                return Err(ExecError::StepLimitExceeded);
            }
            match &code[it.pc] {
                Op::Const { dst, idx } => {
                    it.regs[*dst as usize] = consts[*idx as usize];
                }
                Op::Mov { dst, src } => {
                    stats.ops.mov += 1;
                    it.regs[*dst as usize] = it.regs[*src as usize];
                }
                Op::AddF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64() + it.regs[*b as usize].as_f64();
                    stats.ops.add64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::SubF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64() - it.regs[*b as usize].as_f64();
                    stats.ops.add64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::MulF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64() * it.regs[*b as usize].as_f64();
                    stats.ops.mul64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::DivF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64() / it.regs[*b as usize].as_f64();
                    stats.ops.div64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::MinF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64().min(it.regs[*b as usize].as_f64());
                    stats.ops.minmax64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::MaxF64 { dst, a, b } => {
                    let out = it.regs[*a as usize].as_f64().max(it.regs[*b as usize].as_f64());
                    stats.ops.minmax64 += 1;
                    it.regs[*dst as usize] = Value::F64(out);
                }
                Op::AddI64 { dst, a, b } => {
                    let out =
                        it.regs[*a as usize].as_i64().wrapping_add(it.regs[*b as usize].as_i64());
                    stats.ops.int_alu += 1;
                    it.regs[*dst as usize] = Value::I64(out);
                }
                Op::Bin { op, ty, dst, a, b } => {
                    let (va, vb) = (it.regs[*a as usize], it.regs[*b as usize]);
                    let out = eval_bin(*op, *ty, va, vb).map_err(ExecError::Trap)?;
                    stats.ops.count_bin(*op, *ty);
                    it.regs[*dst as usize] = out;
                }
                Op::Un { op, ty, dst, a } => {
                    let out = eval_un(*op, *ty, it.regs[*a as usize]);
                    stats.ops.int_alu += 1;
                    it.regs[*dst as usize] = out;
                }
                Op::Cmp { op, ty, dst, a, b } => {
                    let out = eval_cmp(*op, *ty, it.regs[*a as usize], it.regs[*b as usize]);
                    stats.ops.cmp += 1;
                    it.regs[*dst as usize] = Value::Bool(out);
                }
                Op::Select { ty, dst, cond, a, b } => {
                    let out = if it.regs[*cond as usize].as_bool() {
                        it.regs[*a as usize]
                    } else {
                        it.regs[*b as usize]
                    };
                    debug_assert_eq!(out.scalar_type(), Some(*ty));
                    stats.ops.select += 1;
                    it.regs[*dst as usize] = out;
                }
                Op::Cast { dst, a, from, to } => {
                    stats.ops.cast += 1;
                    it.regs[*dst as usize] = eval_cast(it.regs[*a as usize], *from, *to);
                }
                Op::Call1 { func, ty, dst, a } => {
                    let x = it.regs[*a as usize].as_f64();
                    let out = match func {
                        Builtin::Exp => math.exp64(x),
                        Builtin::Log => math.log64(x),
                        Builtin::Sqrt => math.sqrt64(x),
                        Builtin::Pow => unreachable!("pow lowered to Op::Pow"),
                    };
                    let out = if *ty == ScalarType::F32 {
                        let x32 = x as f32;
                        Value::F32(match func {
                            Builtin::Exp => math.exp32(x32),
                            Builtin::Log => math.log32(x32),
                            Builtin::Sqrt => math.sqrt32(x32),
                            Builtin::Pow => unreachable!("pow lowered to Op::Pow"),
                        })
                    } else {
                        Value::F64(out)
                    };
                    stats.ops.count_builtin(*func, *ty);
                    it.regs[*dst as usize] = out;
                }
                Op::Pow { ty, dst, a, b } => {
                    let x = it.regs[*a as usize].as_f64();
                    let y = it.regs[*b as usize].as_f64();
                    let out = if *ty == ScalarType::F32 {
                        Value::F32(math.pow32(x as f32, y as f32))
                    } else {
                        Value::F64(math.pow64(x, y))
                    };
                    stats.ops.count_builtin(Builtin::Pow, *ty);
                    it.regs[*dst as usize] = out;
                }
                Op::WorkItem { query, dim, dst } => {
                    let dim = *dim as usize;
                    let out = match query {
                        WiQuery::GlobalId => {
                            shape.group_id[dim] * shape.local_size[dim] + it.lid[dim]
                        }
                        WiQuery::LocalId => it.lid[dim],
                        WiQuery::GroupId => shape.group_id[dim],
                        WiQuery::GlobalSize => shape.global_size[dim],
                        WiQuery::LocalSize => shape.local_size[dim],
                        WiQuery::NumGroups => shape.num_groups()[dim],
                    };
                    stats.ops.wi_query += 1;
                    it.regs[*dst as usize] = Value::I64(out as i64);
                }
                Op::Gep { dst, base, index, elem } => {
                    let p = it.regs[*base as usize].as_ptr();
                    let idx = it.regs[*index as usize].as_i64();
                    stats.ops.int_alu += 1;
                    it.regs[*dst as usize] = Value::Ptr(p.offset_by(idx, *elem));
                }
                Op::Load { dst, ptr, ty } => {
                    let p = it.regs[*ptr as usize].as_ptr();
                    let v = if p.space == AddressSpace::Private {
                        bc_private_load(&it.private, p, *ty)?
                    } else {
                        mem.load(p, *ty)?
                    };
                    stats.mem.count_load(p.space, ty.size_bytes());
                    it.regs[*dst as usize] = v;
                }
                Op::Store { ptr, val, ty } => {
                    let p = it.regs[*ptr as usize].as_ptr();
                    let v = it.regs[*val as usize];
                    debug_assert_eq!(v.scalar_type(), Some(*ty));
                    if p.space == AddressSpace::Private {
                        bc_private_store(&mut it.private, p, v)?;
                    } else {
                        mem.store(p, v)?;
                    }
                    stats.mem.count_store(p.space, ty.size_bytes());
                }
                Op::Barrier => {
                    it.status = BcStatus::AtBarrier;
                    return Ok(());
                }
                Op::Jump { target, block } => {
                    stats.block_execs[*block as usize] += 1;
                    it.pc = *target as usize;
                    continue;
                }
                Op::Branch { cond, then_target, then_block, else_target, else_block } => {
                    let (target, block) = if it.regs[*cond as usize].as_bool() {
                        (*then_target, *then_block)
                    } else {
                        (*else_target, *else_block)
                    };
                    stats.block_execs[block as usize] += 1;
                    it.pc = target as usize;
                    continue;
                }
                Op::Return => {
                    it.status = BcStatus::Done;
                    return Ok(());
                }
            }
            it.pc += 1;
        }
    }
}

fn bc_private_load(arena: &[u8], p: PtrValue, ty: ScalarType) -> Result<Value, ExecError> {
    let len = ty.size_bytes();
    let off = usize::try_from(p.offset)
        .ok()
        .filter(|o| o + len <= arena.len())
        .ok_or_else(|| private_oob(p, len, arena.len()))?;
    Ok(Value::from_le_bytes(ty, &arena[off..off + len]))
}

fn bc_private_store(arena: &mut [u8], p: PtrValue, v: Value) -> Result<(), ExecError> {
    let len = v.scalar_type().expect("scalar").size_bytes();
    let alen = arena.len();
    let off = usize::try_from(p.offset)
        .ok()
        .filter(|o| o + len <= alen)
        .ok_or_else(|| private_oob(p, len, alen))?;
    arena[off..off + len].copy_from_slice(&v.to_le_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{VecMemory, WorkGroupRun};
    use crate::mathlib::ExactMath;

    /// Run `func` under both engines over the same NDRange with
    /// identically initialised memories; return both memories and stats.
    fn run_both(
        func: &Function,
        global: usize,
        local: usize,
        init: impl Fn(&mut VecMemory) -> Vec<KernelArgValue>,
    ) -> ((VecMemory, ExecStats), (VecMemory, ExecStats)) {
        let compiled = CompiledKernel::compile(func);
        let mut walk_mem = VecMemory::new();
        let walk_args = init(&mut walk_mem);
        let mut walk_stats = ExecStats::with_blocks(func.blocks.len());
        let mut bc_mem = VecMemory::new();
        let bc_args = init(&mut bc_mem);
        let mut bc_stats = ExecStats::with_blocks(func.blocks.len());
        for group in 0..global / local {
            let shape = GroupShape::linear(global, local, group);
            let mut w = WorkGroupRun::new(func, shape, &walk_args, 0).expect("walk args");
            w.run(&mut walk_mem, &ExactMath).expect("walk runs");
            walk_stats.merge(w.stats());
            let mut b = BytecodeRun::new(&compiled, shape, &bc_args, 0).expect("bc args");
            b.run(&mut bc_mem, &ExactMath).expect("bc runs");
            bc_stats.merge(b.stats());
        }
        ((walk_mem, walk_stats), (bc_mem, bc_stats))
    }

    /// Looping kernel with barrier, local exchange, math call and private
    /// storage — exercises every structural feature at once.
    fn busy_kernel() -> Function {
        use crate::ir::BinOp;
        let mut b = FunctionBuilder::new("busy", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let loc = b.param("l", Type::ptr(AddressSpace::Local, ScalarType::F64));
        let priv_slot = b.alloc_private(8, ScalarType::F64);
        let lid = b.local_id(0);
        let lid_f = b.cast(lid, ScalarType::I64, ScalarType::F64);
        // priv[0] = exp(lid / 8.0)
        let eight = b.const_f64(8.0);
        let frac = b.fdiv(lid_f, eight, ScalarType::F64);
        let e = b.call(Builtin::Exp, ScalarType::F64, &[frac]);
        b.store(priv_slot, e, ScalarType::F64);
        // l[lid] = lid; barrier; v = l[(lid+1)%n]
        let slot = b.gep(loc, lid, ScalarType::F64);
        b.store(slot, lid_f, ScalarType::F64);
        b.barrier();
        let one = b.const_i64(1);
        let n = b.wi_query(WiQuery::LocalSize, 0);
        let lp1 = b.bin(BinOp::Add, ScalarType::I64, lid, one);
        let idx = b.bin(BinOp::Rem, ScalarType::I64, lp1, n);
        let nslot = b.gep(loc, idx, ScalarType::F64);
        let v = b.load(nslot, ScalarType::F64);
        // acc = sum_{i=0}^{lid} i  (data-dependent trip count)
        let acc = b.fresh(Type::Scalar(ScalarType::F64));
        let zf = b.const_f64(0.0);
        b.mov_into(acc, zf);
        let i = b.fresh(Type::Scalar(ScalarType::I64));
        let z = b.const_i64(0);
        b.mov_into(i, z);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let cond = b.cmp(CmpOp::Le, ScalarType::I64, i, lid);
        b.branch(cond, body, exit);
        b.switch_to(body);
        let i_f = b.cast(i, ScalarType::I64, ScalarType::F64);
        let newacc = b.fadd(acc, i_f, ScalarType::F64);
        b.mov_into(acc, newacc);
        let newi = b.bin(BinOp::Add, ScalarType::I64, i, one);
        b.mov_into(i, newi);
        b.jump(header);
        b.switch_to(exit);
        // out[gid] = acc + v + priv[0]
        let pv = b.load(priv_slot, ScalarType::F64);
        let s1 = b.fadd(acc, v, ScalarType::F64);
        let s2 = b.fadd(s1, pv, ScalarType::F64);
        let gid = b.global_id(0);
        let oslot = b.gep(out, gid, ScalarType::F64);
        b.store(oslot, s2, ScalarType::F64);
        b.ret();
        b.finish().expect("valid")
    }

    #[test]
    fn bytecode_matches_walker_bit_for_bit() {
        let func = busy_kernel();
        let ((wm, ws), (bm, bs)) = run_both(&func, 8, 4, |mem| {
            let buf = mem.alloc_global(8 * 8);
            let l = mem.alloc_local(4 * 8);
            vec![KernelArgValue::GlobalBuffer(buf), KernelArgValue::LocalBuffer(l)]
        });
        assert_eq!(wm.global_bytes(0), bm.global_bytes(0), "bit-identical output buffers");
        assert_eq!(ws, bs, "identical ExecStats (blocks, ops, mem, barriers, phases)");
        assert!(ws.barriers > 0 && ws.ops.transc64 > 0, "kernel actually exercised features");
    }

    #[test]
    fn trap_messages_match_walker() {
        // out[0] = 1 / 0 (integer) — both engines must trap identically.
        use crate::ir::BinOp;
        let mut b = FunctionBuilder::new("div0", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        let q = b.bin(BinOp::Div, ScalarType::I64, one, zero);
        let qf = b.cast(q, ScalarType::I64, ScalarType::F64);
        let z2 = b.const_i64(0);
        let slot = b.gep(out, z2, ScalarType::F64);
        b.store(slot, qf, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");
        let compiled = CompiledKernel::compile(&func);
        let shape = GroupShape::linear(1, 1, 0);

        let mut wm = VecMemory::new();
        let wbuf = wm.alloc_global(8);
        let mut w = WorkGroupRun::new(&func, shape, &[KernelArgValue::GlobalBuffer(wbuf)], 0)
            .expect("args");
        let werr = w.run(&mut wm, &ExactMath).expect_err("walker traps");

        let mut bm = VecMemory::new();
        let bbuf = bm.alloc_global(8);
        let mut bc = BytecodeRun::new(&compiled, shape, &[KernelArgValue::GlobalBuffer(bbuf)], 0)
            .expect("args");
        let berr = bc.run(&mut bm, &ExactMath).expect_err("bytecode traps");
        assert_eq!(werr.to_string(), berr.to_string());
        assert!(berr.to_string().contains("integer division by zero"));
    }

    #[test]
    fn divergence_positions_match_walker() {
        let mut b = FunctionBuilder::new("div", true);
        let _out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let lid = b.local_id(0);
        let zero = b.const_i64(0);
        let cond = b.cmp(CmpOp::Eq, ScalarType::I64, lid, zero);
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        b.branch(cond, t, e);
        b.switch_to(t);
        b.barrier();
        b.jump(join);
        b.switch_to(e);
        b.barrier();
        b.jump(join);
        b.switch_to(join);
        b.ret();
        let func = b.finish().expect("valid");
        let compiled = CompiledKernel::compile(&func);
        let shape = GroupShape::linear(2, 2, 0);

        let run_engine = |walk: bool| -> ExecError {
            let mut mem = VecMemory::new();
            let buf = mem.alloc_global(8);
            let args = [KernelArgValue::GlobalBuffer(buf)];
            if walk {
                let mut r = WorkGroupRun::new(&func, shape, &args, 0).expect("args");
                r.run(&mut mem, &ExactMath).expect_err("diverges")
            } else {
                let mut r = BytecodeRun::new(&compiled, shape, &args, 0).expect("args");
                r.run(&mut mem, &ExactMath).expect_err("diverges")
            }
        };
        let (we, be) = (run_engine(true), run_engine(false));
        assert_eq!(we.to_string(), be.to_string(), "same (block, inst) positions reported");
        assert!(matches!(be, ExecError::BarrierDivergence { .. }));
    }

    #[test]
    fn step_limit_applies_identically() {
        let mut b = FunctionBuilder::new("spin", true);
        let _p = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let header = b.create_block();
        b.jump(header);
        b.switch_to(header);
        b.jump(header);
        let func = b.finish().expect("valid");
        let compiled = CompiledKernel::compile(&func);
        let shape = GroupShape::linear(1, 1, 0);
        let mut mem = VecMemory::new();
        let buf = mem.alloc_global(8);
        let mut r = BytecodeRun::new(&compiled, shape, &[KernelArgValue::GlobalBuffer(buf)], 500)
            .expect("args");
        assert!(matches!(r.run(&mut mem, &ExactMath), Err(ExecError::StepLimitExceeded)));
    }

    #[test]
    fn bad_args_rejected_with_walker_messages() {
        let mut b = FunctionBuilder::new("k", true);
        let _p = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        b.ret();
        let func = b.finish().expect("valid");
        let compiled = CompiledKernel::compile(&func);
        let shape = GroupShape::linear(1, 1, 0);
        let walker_err = match WorkGroupRun::new(&func, shape, &[], 0) {
            Err(e) => e,
            Ok(_) => panic!("walker accepted bad args"),
        };
        let bc_err = match BytecodeRun::new(&compiled, shape, &[], 0) {
            Err(e) => e,
            Ok(_) => panic!("bytecode accepted bad args"),
        };
        assert_eq!(walker_err.to_string(), bc_err.to_string());
        assert!(matches!(
            BytecodeRun::new(&compiled, shape, &[KernelArgValue::Scalar(Value::F64(1.0))], 0),
            Err(ExecError::BadArgs(_))
        ));
    }

    #[test]
    fn constants_are_interned_by_bits() {
        let mut b = FunctionBuilder::new("k", true);
        let out = b.param("out", Type::ptr(AddressSpace::Global, ScalarType::F64));
        let a = b.const_f64(2.0);
        let c = b.const_f64(2.0); // same bits: shares a pool slot
        let d = b.const_f64(3.0);
        let s = b.fadd(a, c, ScalarType::F64);
        let s2 = b.fadd(s, d, ScalarType::F64);
        let z = b.const_i64(0);
        let slot = b.gep(out, z, ScalarType::F64);
        b.store(slot, s2, ScalarType::F64);
        b.ret();
        let func = b.finish().expect("valid");
        let compiled = CompiledKernel::compile(&func);
        // Pool: 2.0, 3.0, 0i64 — the duplicate 2.0 is interned away.
        assert_eq!(compiled.const_count(), 3);
        assert_eq!(compiled.num_blocks(), 1);
    }

    #[test]
    fn disassembly_lists_pool_blocks_and_jumps() {
        let func = busy_kernel();
        let compiled = CompiledKernel::compile(&func);
        let dump = compiled.to_string();
        assert!(dump.contains("bytecode @busy("));
        assert!(dump.contains("c0 ="), "constant pool listed");
        assert!(dump.contains("b0:"), "block labels present");
        assert!(dump.contains("jump @"), "resolved jump offsets shown");
        assert!(dump.contains("br r"), "branches shown");
        assert!(dump.contains("barrier"));
        assert!(dump.contains("exp.double("), "builtin call shown");
        assert!(dump.contains("ret"));
    }
}
